# Developer entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), matching the CI tier-1 invocation.

PY ?= python
export PYTHONPATH := src

.PHONY: test trace-tests chaos-tests perf coverage

## tier-1: the full default suite (perf benchmarks excluded via addopts)
test:
	$(PY) -m pytest -x -q

## just the causal-tracing / trace-oracle suites
trace-tests:
	$(PY) -m pytest -q -m trace

## just the fault-injection and outage drills
chaos-tests:
	$(PY) -m pytest -q -m "chaos or outage"

## wall-clock benchmarks (compare against BENCH_PR1.json with bench-perf)
perf:
	$(PY) -m pytest -q -m perf

## line coverage over src/repro; requires the dev extras (pytest-cov).
## Gated so environments without pytest-cov fail with a message instead
## of an unknown-option error from pytest.
coverage:
	@$(PY) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed; run: pip install -e .[dev]"; exit 1; }
	$(PY) -m pytest -q --cov=repro --cov-report=term-missing --cov-fail-under=60
