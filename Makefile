# Developer entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), matching the CI tier-1 invocation.

PY ?= python
export PYTHONPATH := src

.PHONY: test trace-tests chaos-tests scrub-tests hedge-tests lifecycle-tests tenant-tests autopilot-tests corruption-drill hedge-drill lifecycle-drill tenant-drill autopilot-drill drill-all perf bench-smoke coverage

## tier-1: the full default suite (perf benchmarks excluded via addopts)
test:
	$(PY) -m pytest -x -q

## just the causal-tracing / trace-oracle suites
trace-tests:
	$(PY) -m pytest -q -m trace

## just the fault-injection and outage drills
chaos-tests:
	$(PY) -m pytest -q -m "chaos or outage"

## just the silent-corruption / quarantine / deep-scrub suites
scrub-tests:
	$(PY) -m pytest -q -m scrub

## just the speculative straggler-cloning (hedging) suites
hedge-tests:
	$(PY) -m pytest -q -m hedge

## end-to-end data-integrity drill: corruption storm -> detect/quarantine
## -> deep scrub -> converge checker-clean (machine-readable)
corruption-drill:
	$(PY) -m repro.cli corruption-drill --seed 0 --json

## hedged straggler-cloning drill: chaotic busy hour with cloning on ->
## every hedge resolved, trace oracle + audit clean (machine-readable)
hedge-drill:
	$(PY) -m repro.cli hedge-drill --seed 0 --json

## just the planned-operations (evacuation / rolling restart / switchover)
## suites
lifecycle-tests:
	$(PY) -m pytest -q -m lifecycle

## planned-disruption drills: region evacuation, rolling engine restart,
## and orchestration switchover under live load, proved safe by the
## trace oracle, audit, and deep scrub (machine-readable)
lifecycle-drill:
	$(PY) -m repro.cli lifecycle-drill --scenario evacuate --seed 0 --json
	$(PY) -m repro.cli lifecycle-drill --scenario rolling --seed 0 --json
	$(PY) -m repro.cli lifecycle-drill --scenario switchover --seed 0 --json

## just the multi-tenant isolation / fair-share / sharding suites
tenant-tests:
	$(PY) -m pytest -q -m tenant

## multi-tenant control-plane drill: 1000 tenants across sharded engine
## workers, Zipf workload -> per-tenant convergence, budget admission,
## fair share, and cross-tenant isolation all verified (machine-readable)
tenant-drill:
	$(PY) -m repro.cli tenant-drill --seed 0 --json

## just the closed-loop SLO controller (autopilot) suites
autopilot-tests:
	$(PY) -m pytest -q -m autopilot

## SLO autopilot drill: busy hour with a mid-run load surge and a
## regional WAN brownout -> the controller engages on both, p99
## recovers within the settle bound, budgets hold, and audit + deep
## scrub + trace oracle (incl. autopilot discipline) stay clean
autopilot-drill:
	$(PY) -m repro.cli autopilot-drill --seed 0 --json

## every drill the CLI ships, one seed, one shared report schema;
## exits non-zero if any drill reports pass=false
drill-all:
	$(PY) -m repro.cli drill-all --seed 0

## wall-clock benchmarks (compare against BENCH_PR1.json with bench-perf)
perf:
	$(PY) -m pytest -q -m perf

## seconds-long perf smoke: tiny-scale bench-perf checked against the
## committed scale-0.05 reference.  Rates are not scale-invariant, so
## the full-scale BENCH_PR*.json files cannot be the bar here — the
## scale guard in bench-perf --check would (correctly) refuse them.
## Wider tolerance: tiny work sizes amplify machine noise.
bench-smoke:
	$(PY) -m repro.cli bench-perf --scale 0.05 --repeat 2 --check \
		--baseline tests/baselines/BENCH_SMOKE.json --tolerance 0.5

## line coverage over src/repro; requires the dev extras (pytest-cov).
## Gated so environments without pytest-cov fail with a message instead
## of an unknown-option error from pytest.
coverage:
	@$(PY) -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed; run: pip install -e .[dev]"; exit 1; }
	$(PY) -m pytest -q --cov=repro --cov-report=term-missing --cov-fail-under=60
