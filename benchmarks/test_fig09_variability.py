"""Figure 9: performance variability of function instances.

Paper reference: five identically-configured function instances
repeatedly transferring a 1 GB object from AWS us-east-1 to Azure
eastus differ in bandwidth by more than a factor of two, with no
pattern indicating which instance will be slow.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
SIZE = 1024 * MB
CHUNK = 64 * MB
INSTANCES = 5


def test_fig09_instance_variability(benchmark, save_result):
    repeats = scaled(6)

    def run():
        cloud = build_default_cloud(seed=9)
        faas = cloud.faas("azure:eastus")
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        src.put_object("big", Blob.fresh(SIZE), cloud.now, notify=False)
        series: dict[int, list[float]] = {i: [] for i in range(INSTANCES)}

        def handler(ctx, payload):
            # One warm instance transferring the object repeatedly: the
            # per-transfer bandwidth samples of Fig 9's time series.
            for _ in range(repeats):
                start = ctx.now
                for off in range(0, SIZE, CHUNK):
                    blob, _ = yield from ctx.get_object(src, "big", off, CHUNK)
                    yield from ctx.put_object(dst, f"o{payload['i']}", blob)
                series[payload["i"]].append(SIZE * 8 / ((ctx.now - start) * 1e6))

        faas.deploy("var", handler, timeout_s=10_000.0)

        def driver():
            invocations = []
            for i in range(INSTANCES):
                accepted, inv = faas.invoke("var", {"i": i})
                yield accepted
                invocations.append(inv)
            yield cloud.sim.all_of(invocations)

        cloud.sim.run_process(driver())
        return series

    series = run_once(benchmark, run)
    means = {i: float(np.mean(v)) for i, v in series.items()}

    lines = ["Figure 9: per-instance bandwidth, 1 GB AWS us-east-1 -> "
             "Azure eastus (Mbps)", ""]
    for i, values in series.items():
        lines.append(f"instance {i + 1}: " +
                     " ".join(f"{v:6.0f}" for v in values) +
                     f"   (mean {means[i]:.0f})")
    spread = max(means.values()) / min(means.values())
    lines.append("")
    lines.append(f"fastest/slowest instance mean ratio: {spread:.2f}x "
                 "(paper: > 2x)")
    save_result("fig09_variability", "\n".join(lines))

    assert spread > 1.35  # >2x at the default seed; robust floor across scales
    # Instances keep distinct characteristic speeds (persistent factor):
    # the between-instance variance dominates the within-instance one.
    within = np.mean([np.std(v) for v in series.values()])
    between = np.std(list(means.values()))
    assert between > within * 0.5
