"""Ablation: the storage cost of versioning-based replication.

§5.2 motivates AReplica's lock-based consistency by the cost of the
alternative: "if each object is updated once a day, versioning at
least doubles the storage cost because the lifecycle rules are at
day-granularity."  This benchmark simulates a month of daily updates
over a working set and compares the steady-state storage footprint —
and the implied $/GB-month — of a versioned deployment (what S3 RTC
and AZ Rep require on both buckets) against AReplica's unversioned one.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob, Bucket
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import get_region

MB = 1024 * 1024
DAY = 86_400.0


def _simulate_month(versioning: bool, objects: int, update_prob: float,
                    seed: int):
    rng = np.random.default_rng(seed)
    bucket = Bucket("b", get_region("aws:us-east-1"), versioning=versioning)
    sizes = rng.integers(1, 64, objects) * MB
    for i in range(objects):
        bucket.put_object(f"o{i}", Blob.fresh(int(sizes[i])), time=0.0)
    footprint = []
    for day in range(1, 31):
        now = day * DAY
        for i in range(objects):
            if rng.random() < update_prob:
                bucket.put_object(f"o{i}", Blob.fresh(int(sizes[i])), now)
        if versioning:
            bucket.expire_noncurrent(now, older_than_s=DAY)
        footprint.append(bucket.total_bytes(include_noncurrent=True))
    return np.array(footprint, dtype=float)


def test_ablation_versioning_storage_cost(benchmark, save_result):
    objects = scaled(200)

    def run():
        out = {}
        for label, prob in (("daily", 1.0), ("every-other-day", 0.5),
                            ("weekly", 1 / 7)):
            out[label] = {
                "versioned": _simulate_month(True, objects, prob, seed=42),
                "plain": _simulate_month(False, objects, prob, seed=42),
            }
        return out

    out = run_once(benchmark, run)
    price = PriceBook().store["aws"].gb_month

    lines = ["Ablation: storage footprint of versioning-based replication "
             f"({objects} objects, 30 days, day-granularity lifecycle)", ""]
    lines.append(f"{'update rate':>16} {'plain GB':>9} {'versioned GB':>13} "
                 f"{'overhead':>9} {'extra $/mo (both buckets)':>26}")
    for label, data in out.items():
        plain = data["plain"][5:].mean() / 1e9
        versioned = data["versioned"][5:].mean() / 1e9
        overhead = versioned / plain
        extra = (versioned - plain) * price * 2  # versioning on src AND dst
        lines.append(f"{label:>16} {plain:>9.2f} {versioned:>13.2f} "
                     f"{overhead:>8.2f}x {extra:>25.2f}")
    lines.append("")
    lines.append("paper (§5.2): daily updates => versioning at least doubles "
                 "storage; AReplica's replication lock avoids versioning "
                 "entirely")
    save_result("abl_versioning_cost", "\n".join(lines))

    daily = out["daily"]
    assert (daily["versioned"][5:] >= 2 * daily["plain"][5:]).all()
    weekly = out["weekly"]
    # Lower update rates shrink the overhead toward 1x.
    assert weekly["versioned"][5:].mean() < daily["versioned"][5:].mean()
    assert (out["every-other-day"]["versioned"][5:].mean()
            < daily["versioned"][5:].mean())
