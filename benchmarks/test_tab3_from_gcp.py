"""Table 3: replication delay and cost from GCP us-east1 to nine
regions, vs Skyplane (GCP has no comparable managed cross-region object
replication service in the paper's comparison).

Paper reference: delay reduced 73 %-99 % vs Skyplane; cost reduced
38.5 %-99.9 %; AReplica on GCP is generally less cost-effective than on
AWS because Firestore and Cloud Run are pricier.
"""

from benchmarks._tables import SIZES, check_headline_claims, run_table
from benchmarks.conftest import run_once
from repro.analysis.tables import format_comparison_table

SRC = "gcp:us-east1"
DESTINATIONS = [
    "aws:us-east-1", "aws:eu-west-1", "aws:ap-northeast-1",
    "azure:eastus", "azure:uksouth", "azure:southeastasia",
    "gcp:us-west1", "gcp:europe-west6", "gcp:asia-northeast1",
]
SYSTEMS = ["AReplica", "Skyplane"]


def test_table3_delay_and_cost_from_gcp(benchmark, save_result):
    cells = run_once(benchmark, lambda: run_table(SRC, DESTINATIONS, {},
                                                  seed=3))
    table = format_comparison_table(
        "Table 3: replication from GCP us-east1",
        [d.split(":", 1)[1] for d in DESTINATIONS],
        [label for label, _ in SIZES], cells, SYSTEMS)
    claims = check_headline_claims(cells, DESTINATIONS, SYSTEMS)
    save_result("tab3_from_gcp", table + "\n\n" + "\n".join(claims))

    # Cost savings vs Skyplane in every cell (paper: 38.5-99.9 %).
    for size_label, _ in SIZES:
        for dst_key in DESTINATIONS:
            dst = dst_key.split(":", 1)[1]
            ours = cells[(size_label, dst, "AReplica")].cost_usd
            sky = cells[(size_label, dst, "Skyplane")].cost_usd
            assert ours < sky, (size_label, dst)
    # GCP-internal replication is the cheapest GCP path ($0.01/GB
    # backbone) — mirroring the paper's us-west1 column.
    assert cells[("1GB", "us-west1", "AReplica")].cost_usd < \
        cells[("1GB", "eastus", "AReplica")].cost_usd
    # 1 MB cross-cloud savings near three orders of magnitude.
    ours = cells[("1MB", "us-east-1", "AReplica")].cost_usd
    sky = cells[("1MB", "us-east-1", "Skyplane")].cost_usd
    assert sky / ours > 100
