"""Table 4: predicted vs measured replication time (mean ± std) for a
1 GB object with 32 function instances across six directed region
pairs.

Paper reference: the model tends to overestimate but reflects the
relative performance of strategies and captures the variance
differences across cases (e.g. GCP europe-west6 ↔ Azure westus2 is far
slower and far noisier than anything touching AWS us-east-1).
"""

import itertools

import numpy as np

from benchmarks._helpers import GB, build_service
from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob

REGIONS = ["aws:us-east-1", "azure:westus2", "gcp:europe-west6"]
N = 32


def _measure_pair(src_key, dst_key, runs, seed):
    cloud, service, src, dst, rule = build_service(src_key, dst_key, seed=seed)
    rule.engine.forced_plan = (N, src_key)
    keepalive = cloud.faas(src_key).profile.keepalive_s
    actual = []
    for i in range(runs):
        src.put_object(f"o{i}", Blob.fresh(GB), cloud.now)
        cloud.run()
        actual.append(service.records[-1].replication_seconds)
        cloud.sim.run(until=cloud.now + keepalive + 1.0)
    predicted = service.model.predict_stats((src_key, src_key, dst_key), GB, N)
    return predicted, (float(np.mean(actual)), float(np.std(actual)))


def test_table4_predicted_vs_measured(benchmark, save_result):
    runs = scaled(12)

    def run():
        out = {}
        for i, (src_key, dst_key) in enumerate(
                itertools.permutations(REGIONS, 2)):
            out[(src_key, dst_key)] = _measure_pair(src_key, dst_key, runs,
                                                    seed=40 + i)
        return out

    out = run_once(benchmark, run)

    paper = {
        ("aws:us-east-1", "azure:westus2"): (7.01, 5.90),
        ("aws:us-east-1", "gcp:europe-west6"): (9.21, 7.08),
        ("azure:westus2", "aws:us-east-1"): (7.22, 5.99),
        ("azure:westus2", "gcp:europe-west6"): (17.87, 12.06),
        ("gcp:europe-west6", "aws:us-east-1"): (16.54, 12.47),
        ("gcp:europe-west6", "azure:westus2"): (72.73, 62.89),
    }
    lines = ["Table 4: predicted vs measured replication time "
             f"(1 GB, n={N}, mean ± std seconds)", ""]
    lines.append(f"{'pair':<44} {'predicted':>16} {'measured':>16} "
                 f"{'paper pred/meas':>18}")
    for pair, ((p_mean, p_std), (m_mean, m_std)) in out.items():
        ref = paper[pair]
        lines.append(f"{pair[0] + ' -> ' + pair[1]:<44} "
                     f"{p_mean:7.1f}±{p_std:<5.1f} "
                     f"{m_mean:9.1f}±{m_std:<5.1f} "
                     f"{ref[0]:8.1f}/{ref[1]:.1f}")
    save_result("tab4_model_accuracy", "\n".join(lines))

    overestimates = 0
    for pair, ((p_mean, p_std), (m_mean, m_std)) in out.items():
        # Location tracked within a factor ~2.
        assert 0.5 < p_mean / m_mean < 2.2, pair
        if p_mean >= m_mean:
            overestimates += 1
    # The paper: "our performance model tends to overestimate ... in
    # general" — the majority of pairs, not necessarily all.
    assert overestimates >= 3
    # Relative ordering: the slowest measured pair ranks among the two
    # slowest predicted pairs (what plan comparison depends on).
    slowest_measured = max(out, key=lambda p: out[p][1][0])
    by_predicted = sorted(out, key=lambda p: -out[p][0][0])
    assert slowest_measured in by_predicted[:2]
