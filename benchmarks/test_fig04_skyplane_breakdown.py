"""Figure 4: breakdown of Skyplane's replication time and cost for a
10 MB object from AWS us-east-1 to us-east-2.

Paper reference: VM provisioning 31.16 s, container startup 25.97 s,
data transfer 1.49 s, others 18.27 s; cost $0.027541 VMs,
$0.000098 data transfer, $0.000005 S3 requests — only 2 % of the time
is data transfer and >99 % of the cost is VMs.
"""

from benchmarks.conftest import run_once
from repro.baselines.skyplane import SkyplaneReplicator
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def test_fig04_skyplane_time_and_cost_breakdown(benchmark, save_result):
    def run():
        cloud = build_default_cloud(seed=0)
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:us-east-2", "dst")
        sky = SkyplaneReplicator(cloud, src, dst)
        src.put_object("obj", Blob.fresh(10 * MB), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        record = sky.replicate_once("obj")
        cost = before.delta(cloud.ledger.snapshot())
        return record, dict(sky.last_breakdown), cost

    record, phases, cost = run_once(benchmark, run)
    others = phases["session_s"] + phases["finalize_s"]
    vm_cost = cost.totals.get(CostCategory.VM_COMPUTE, 0.0)
    egress_cost = cost.totals.get(CostCategory.EGRESS, 0.0)
    request_cost = cost.totals.get(CostCategory.STORAGE_REQUESTS, 0.0)

    lines = ["Figure 4: Skyplane 10 MB replication breakdown "
             "(aws:us-east-1 -> aws:us-east-2)", ""]
    lines.append(f"{'phase':<20} {'measured':>10}   paper")
    lines.append(f"{'VM provisioning':<20} {phases['provision_s']:>9.2f}s   31.16s")
    lines.append(f"{'container startup':<20} {phases['container_s']:>9.2f}s   25.97s")
    lines.append(f"{'data transfer':<20} {phases['transfer_s']:>9.2f}s    1.49s")
    lines.append(f"{'others':<20} {others:>9.2f}s   18.27s")
    lines.append(f"{'total':<20} {record.delay:>9.2f}s   76.9s")
    lines.append("")
    lines.append(f"{'cost':<20} {'measured':>12}   paper")
    lines.append(f"{'VMs':<20} ${vm_cost:>10.6f}   $0.027541")
    lines.append(f"{'data transfer':<20} ${egress_cost:>10.6f}   $0.000098")
    lines.append(f"{'S3 requests':<20} ${request_cost:>10.6f}   $0.000005")
    save_result("fig04_skyplane_breakdown", "\n".join(lines))

    # Shape: transfer is a tiny share of time; VMs dominate cost.
    assert phases["transfer_s"] / record.delay < 0.1
    assert phases["provision_s"] + phases["container_s"] > 0.5 * record.delay
    assert vm_cost / cost.total > 0.98
