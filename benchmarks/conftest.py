"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation and writes its output (the reproduced rows/series plus the
paper's reference values) to ``results/<experiment>.txt``.  Benchmarks
run each scenario once (``benchmark.pedantic`` with a single round):
the interesting measurements are *simulated* delays and costs, which
are deterministic under the seed; the pytest-benchmark timing merely
records how long the simulation itself takes.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to scale trial counts and
trace sizes up or down.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    return max(minimum, int(round(n * bench_scale())))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write an experiment's textual output to results/<name>.txt."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
