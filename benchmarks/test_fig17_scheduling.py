"""Figure 17: effectiveness of decentralized part-granularity scheduling
— distribution of per-instance execution time and replicated chunks for
a 1 GB object from Azure eastus to GCP asia-northeast1 with 32 function
instances, fair dispatch vs the shared part pool.

Paper reference: with the part pool, instances finish at approximately
the same time; some slow instances never replicate a chunk while the
fastest replicate six; fair dispatch spreads the finish times and drags
the end-to-end replication time.
"""

import numpy as np

from benchmarks._helpers import GB, build_service
from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob

SRC, DST = "azure:eastus", "gcp:asia-northeast1"
N = 32


def _run(scheduling: str, trials: int):
    cloud, service, src, dst, rule = build_service(SRC, DST, seed=17,
                                                   scheduling=scheduling)
    rule.engine.forced_plan = (N, SRC)
    exec_times, chunk_counts, e2e = [], [], []
    for i in range(trials):
        src.put_object(f"big{i}", Blob.fresh(GB), cloud.now)
        cloud.run()
        record = service.records[-1]
        e2e.append(record.replication_seconds)
    for (task, worker), (start, end) in rule.engine.worker_spans.items():
        exec_times.append(end - start)
        chunk_counts.append(rule.engine.worker_parts[(task, worker)])
    return np.array(exec_times), np.array(chunk_counts), np.array(e2e)


def test_fig17_scheduling_ablation(benchmark, save_result):
    trials = scaled(4)

    def run():
        return {"part-pool": _run("pool", trials),
                "fair": _run("fair", trials)}

    out = run_once(benchmark, run)

    lines = ["Figure 17: fair dispatch vs decentralized part pool "
             f"(1 GB, {SRC} -> {DST}, n={N})", ""]
    for name, (times, chunks, e2e) in out.items():
        lines.append(f"{name}:")
        lines.append(f"  exec time per instance: mean={times.mean():.1f}s "
                     f"std={times.std():.1f}s max={times.max():.1f}s")
        lines.append(f"  chunks per instance:    min={chunks.min()} "
                     f"max={chunks.max()} std={chunks.std():.2f}")
        lines.append(f"  end-to-end replication: {e2e.mean():.1f}s")
        lines.append("")
    pool_times, pool_chunks, pool_e2e = out["part-pool"]
    fair_times, fair_chunks, fair_e2e = out["fair"]
    lines.append(f"part pool speeds up end-to-end replication by "
                 f"{(1 - pool_e2e.mean() / fair_e2e.mean()) * 100:.0f}%")
    lines.append("paper: pool instances finish together; fastest instances "
                 "replicate ~6 chunks, some replicate none")
    save_result("fig17_scheduling", "\n".join(lines))

    # Shape: fair gives everyone the same chunk count; the pool shifts
    # work to fast instances and evens out finish times.
    assert fair_chunks.std() <= 0.5
    assert pool_chunks.std() > fair_chunks.std()
    assert pool_chunks.max() >= 5
    assert pool_times.std() < fair_times.std()
    assert pool_e2e.mean() < fair_e2e.mean()
