"""Figure 7: aggregate bandwidth vs the number of parallel functions.

Paper reference: aggregate bandwidth increases near-linearly with the
number of functions on all three platforms, exceeding a few Gbps with
64 or fewer functions even on slow links.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
CHUNK = 64 * MB
FUNCTION_COUNTS = [1, 2, 4, 8, 16, 32, 64]

LINKS = {
    "AWS down (us-east-1 <- eu-west-1)": ("aws:us-east-1", "aws:eu-west-1"),
    "Azure down (eastus <- uksouth)": ("azure:eastus", "azure:uksouth"),
    "GCP down (us-east1 <- europe-west6)": ("gcp:us-east1", "gcp:europe-west6"),
    "AWS up slow (us-east-1 -> ap-northeast-1)": ("aws:us-east-1",
                                                  "aws:ap-northeast-1"),
}


def _aggregate_mbps(cloud, exec_key, peer_key, n):
    """n functions download one chunk each, concurrently; sum their rates."""
    faas = cloud.faas(exec_key)
    peer = cloud.bucket(peer_key, f"peer-{peer_key}")
    if "probe" not in peer:
        peer.put_object("probe", Blob.fresh(CHUNK), cloud.now, notify=False)
    finished = []

    def handler(ctx, payload):
        start = ctx.now
        yield from ctx.get_object(peer, "probe", concurrency=payload["n"])
        finished.append(ctx.now - start)

    name = f"scale-{exec_key}-{peer_key}-{n}"
    faas.deploy(name, handler)

    def driver():
        invocations = []
        for _ in range(n):
            accepted, inv = faas.invoke(name, {"n": n})
            yield accepted
            invocations.append(inv)
        yield cloud.sim.all_of(invocations)

    cloud.sim.run_process(driver())
    return sum(CHUNK * 8 / (t * 1e6) for t in finished[-n:])


def test_fig07_aggregate_bandwidth_scaling(benchmark, save_result):
    def run():
        cloud = build_default_cloud(seed=7)
        return {
            label: [
                _aggregate_mbps(cloud, exec_key, peer_key, n)
                for n in FUNCTION_COUNTS
            ]
            for label, (exec_key, peer_key) in LINKS.items()
        }

    series = run_once(benchmark, run)

    lines = ["Figure 7: aggregate bandwidth vs # of functions (Mbps)", ""]
    header = f"{'link':<44}" + "".join(f"{n:>8}" for n in FUNCTION_COUNTS)
    lines.append(header)
    for label, values in series.items():
        lines.append(f"{label:<44}" + "".join(f"{v:>8.0f}" for v in values))
    lines.append("")
    for label, values in series.items():
        efficiency = values[-1] / (values[0] * FUNCTION_COUNTS[-1])
        lines.append(f"{label}: 64-function scaling efficiency "
                     f"{efficiency * 100:.0f}% of perfect linear")
    lines.append("paper: near-linear scaling; a few Gbps with <= 64 functions")
    save_result("fig07_scaling", "\n".join(lines))

    for label, values in series.items():
        # Monotone growth and near-linearity.
        assert values[-1] > values[0] * 25, label
        # Even slow links exceed a few Gbps aggregate at n=64.
        assert values[-1] > 2000, label
