"""Ablation: overlay networks vs serverless elasticity (§6).

The paper calls overlay acceleration "orthogonal to AReplica … useful
when a user's target throughput is extremely high and the resource
limit cannot be lifted further."  This benchmark quantifies the
comparison on a slow cross-continent pair: Skyplane direct, Skyplane
with its cloud-aware overlay relay, and AReplica — measuring transfer
time (excluding provisioning), end-to-end delay, and cost.
"""

import numpy as np

from benchmarks._helpers import GB, build_service, measure_skyplane
from benchmarks.conftest import run_once, scaled
from repro.baselines.skyplane import SkyplaneReplicator
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

SRC, DST = "azure:southeastasia", "gcp:europe-west6"
SIZE = 4 * GB


def _skyplane(overlay, seed):
    cloud = build_default_cloud(seed=seed)
    src = cloud.bucket(SRC, "src")
    dst = cloud.bucket(DST, "dst")
    sky = SkyplaneReplicator(cloud, src, dst, overlay_region=overlay)
    src.put_object("big", Blob.fresh(SIZE), cloud.now, notify=False)
    before = cloud.ledger.snapshot()
    record = sky.replicate_once("big")
    cost = before.delta(cloud.ledger.snapshot()).total
    return record.transfer_seconds, record.delay, cost


def _areplica(seed):
    cloud, service, src, dst, rule = build_service(SRC, DST, seed=seed,
                                                   max_parallelism=512)
    before = cloud.ledger.snapshot()
    src.put_object("big", Blob.fresh(SIZE), cloud.now)
    cloud.run()
    record = service.records[-1]
    cost = before.delta(cloud.ledger.snapshot()).total
    return record.replication_seconds, record.delay, cost


def test_ablation_overlay_vs_elasticity(benchmark, save_result):
    trials = scaled(3)

    def run():
        cloud = build_default_cloud(seed=0)
        relay = SkyplaneReplicator.plan_overlay(
            cloud, cloud.bucket(SRC, "s"), cloud.bucket(DST, "d"))
        rows = {}
        rows["Skyplane direct"] = [np.mean(x) for x in zip(
            *[_skyplane(None, 60 + i) for i in range(trials)])]
        rows[f"Skyplane overlay ({relay})"] = [np.mean(x) for x in zip(
            *[_skyplane(relay, 60 + i) for i in range(trials)])]
        rows["AReplica"] = [np.mean(x) for x in zip(
            *[_areplica(60 + i) for i in range(trials)])]
        return rows, relay

    rows, relay = run_once(benchmark, run)

    lines = [f"Ablation: overlay relays vs serverless elasticity "
             f"({SIZE // GB} GB, {SRC} -> {DST})", ""]
    lines.append(f"{'approach':<34} {'transfer':>9} {'e2e delay':>10} "
                 f"{'cost':>8}")
    for name, (transfer, delay, cost) in rows.items():
        lines.append(f"{name:<34} {transfer:>8.1f}s {delay:>9.1f}s "
                     f"${cost:>7.3f}")
    lines.append("")
    lines.append("paper (§6): overlays accelerate VM-based transfer at extra "
                 "cost; orthogonal to AReplica, whose elasticity already "
                 "sidesteps the per-link bottleneck")
    save_result("abl_overlay", "\n".join(lines))

    direct = rows["Skyplane direct"]
    overlay = rows[f"Skyplane overlay ({relay})"]
    ours = rows["AReplica"]
    assert overlay[0] < direct[0]          # overlay speeds up the transfer
    assert overlay[2] > direct[2]          # at extra egress + VM cost
    assert ours[1] < overlay[1]            # elasticity still wins end-to-end
