"""Ablation: data part size sweep around the paper's 8 MB choice.

§5.1: "larger parts are more efficient by avoiding extra API calls but
limit scheduling flexibility ... a part size of 8 MB strikes an
effective balance, as we observe only marginal overhead reduction
beyond this size."  This sweep replicates a 1 GB object with 32
functions on a variable link across part sizes and reports end-to-end
time and the per-part overhead share.
"""

import numpy as np

from benchmarks._helpers import GB, MB, build_service
from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob

SRC, DST = "azure:eastus", "gcp:asia-northeast1"
PART_SIZES = [1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB, 64 * MB]
N = 32


def _run(part_size, trials, seed):
    cloud, service, src, dst, rule = build_service(SRC, DST, seed=seed,
                                                   part_size=part_size)
    rule.engine.forced_plan = (N, SRC)
    times = []
    for i in range(trials):
        src.put_object(f"o{i}", Blob.fresh(GB), cloud.now)
        cloud.run()
        times.append(service.records[-1].replication_seconds)
    kv_writes = rule.engine._state_table(SRC).op_counts["write"]
    return float(np.mean(times)), kv_writes


def test_ablation_part_size_sweep(benchmark, save_result):
    trials = scaled(4)

    def run():
        return {ps: _run(ps, trials, seed=30) for ps in PART_SIZES}

    out = run_once(benchmark, run)

    lines = [f"Ablation: part size sweep (1 GB, {SRC} -> {DST}, n={N})", ""]
    lines.append(f"{'part size':>10} {'parts':>6} {'mean repl time':>15} "
                 f"{'KV writes':>10}")
    for ps in PART_SIZES:
        t, kv = out[ps]
        lines.append(f"{ps // MB:>8}MB {GB // ps:>6} {t:>14.1f}s {kv:>10}")
    best = min(out, key=lambda ps: out[ps][0])
    lines.append("")
    lines.append(f"best part size in this sweep: {best // MB} MB "
                 "(paper: 8 MB balances overhead vs scheduling flexibility)")
    save_result("abl_partsize", "\n".join(lines))

    t8 = out[8 * MB][0]
    # 8 MB sits on the flat plateau of the curve (the paper's "only
    # marginal overhead reduction beyond this size"): close to the best
    # point, and indistinguishable from its 4-16 MB neighbours relative
    # to the jump at coarse granularities.
    plateau = np.mean([out[s][0] for s in (4 * MB, 8 * MB, 16 * MB)])
    coarse = np.mean([out[s][0] for s in (32 * MB, 64 * MB)])
    assert t8 <= out[best][0] * 1.45
    assert abs(t8 - plateau) / plateau < 0.35
    # Very large parts lose straggler flexibility — a slow instance
    # stuck on a 32/64 MB part drags the whole task.
    assert coarse > plateau * 1.5
    # Tiny parts multiply the per-part coordination cost (2 KV ops per
    # part), the other side of the trade-off.
    assert out[1 * MB][1] > 6 * out[8 * MB][1]
    assert out[1 * MB][1] > out[8 * MB][1] > out[64 * MB][1]
