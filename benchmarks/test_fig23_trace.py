"""Figure 23: replication delay on the (synthetic) IBM production trace
— AReplica vs S3 RTC, AWS us-east-1 → us-east-2, one busy hour of
PUT/DELETE requests, per-minute p99.99 replication delay.

Paper reference: the paper replays ~0.99 M requests; S3 RTC sits around
20 s with p99.99 spikes above 30 s during bursts, while AReplica keeps
the p99.99 replication delay under 10 s for the whole hour by scaling
to hundreds of concurrent function instances.  (Scale the request count
with REPRO_BENCH_SCALE; the default runs a 20k-request hour, which
preserves the per-minute burst structure.)
"""

import numpy as np

from benchmarks._helpers import build_service
from benchmarks.conftest import run_once, scaled
from repro.analysis.stats import windowed_percentile
from repro.analysis.textchart import series_strip
from repro.baselines.s3rtc import S3RTCReplicator
from repro.simcloud.cloud import build_default_cloud
from repro.traces.ibm_cos import IbmCosTraceGenerator
from repro.traces.replay import TraceReplayer

SRC, DST = "aws:us-east-1", "aws:us-east-2"
Q = 0.9999


def _trace(requests):
    return IbmCosTraceGenerator(seed=23).busy_hour(total_requests=requests)


def _run_areplica(requests):
    cloud, service, src, dst, rule = build_service(SRC, DST, seed=23, slo=0.0)
    stats = TraceReplayer(cloud, src).replay_all(_trace(requests))
    recs = service.records
    peak = max(cloud.faas(SRC).peak_running, cloud.faas(DST).peak_running)
    return (np.array([r.event_time for r in recs]),
            np.array([r.delay for r in recs]), stats, peak)


def _run_s3rtc(requests):
    cloud = build_default_cloud(seed=23)
    src = cloud.bucket(SRC, "src", versioning=True)
    dst = cloud.bucket(DST, "dst", versioning=True)
    rtc = S3RTCReplicator(cloud, src, dst)
    rtc.connect_notifications()
    TraceReplayer(cloud, src).replay_all(_trace(requests))
    return (np.array([r.event_time for r in rtc.records]),
            np.array([r.delay for r in rtc.records]))


def test_fig23_production_trace(benchmark, save_result):
    requests = scaled(20_000)

    def run():
        a_times, a_delays, stats, peak = _run_areplica(requests)
        r_times, r_delays = _run_s3rtc(requests)
        return a_times, a_delays, r_times, r_delays, stats, peak

    a_times, a_delays, r_times, r_delays, stats, peak = run_once(benchmark, run)

    start = min(a_times.min(), r_times.min())
    _, a_series = windowed_percentile(a_times, a_delays, Q, 300.0,
                                      start=start, end=start + 3600)
    _, r_series = windowed_percentile(r_times, r_delays, Q, 300.0,
                                      start=start, end=start + 3600)

    lines = [f"Figure 23: p99.99 replication delay on the IBM trace "
             f"({stats.puts} PUTs, {stats.deletes} DELETEs, "
             f"{stats.bytes_written / 1e9:.1f} GB in one hour)", ""]
    lines.append(f"{'window':>8} {'AReplica p99.99':>16} {'S3 RTC p99.99':>15}")
    for i, (a, r) in enumerate(zip(a_series, r_series)):
        lines.append(f"{i * 5:>6}min {a:>15.1f}s {r:>14.1f}s")
    lines.append("")
    lines.append(f"overall AReplica: p50={np.quantile(a_delays, 0.5):.1f}s "
                 f"p99={np.quantile(a_delays, 0.99):.1f}s "
                 f"p99.99={np.quantile(a_delays, Q):.1f}s "
                 f"max={a_delays.max():.1f}s")
    lines.append(f"overall S3 RTC:   p50={np.quantile(r_delays, 0.5):.1f}s "
                 f"p99={np.quantile(r_delays, 0.99):.1f}s "
                 f"p99.99={np.quantile(r_delays, Q):.1f}s "
                 f"max={r_delays.max():.1f}s")
    lines.append("")
    scale = float(np.nanmax(r_series))
    lines.append(series_strip(a_series.tolist(), vmax=scale,
                              title="AReplica p99.99"))
    lines.append(series_strip(r_series.tolist(), vmax=scale,
                              title="S3 RTC   p99.99"))
    lines.append("")
    lines.append(f"AReplica peak concurrent function instances: {peak}")
    lines.append("paper: AReplica p99.99 stays below 10 s for the entire "
                 "hour; S3 RTC typically ~20 s, p99.99 >30 s during bursts; "
                 "it absorbs bursts by scaling to hundreds of instances")
    save_result("fig23_trace", "\n".join(lines))

    # Bursts are absorbed by elastic scale-out (§8.3): at this request
    # scale, dozens of concurrent instances; hundreds at full scale.
    assert peak >= 30

    # Every source write eventually replicated.
    assert len(a_delays) == stats.puts + stats.deletes
    # The paper's headline: sub-10 s p99.99 for AReplica.  (Per-window
    # quantiles at this scaled-down request count are effectively
    # maxima — a window holds ~1.5k samples, not the paper's ~80k — so
    # the per-window bound is looser than the overall quantile.)
    assert np.quantile(a_delays, Q) < 10.0
    # Per-window "p99.99" at this scale is the max of ~1.5k samples, so
    # the occasional hot key whose consecutive versions replicate
    # serially under the per-object lock spikes a window; the claim is
    # that the vast majority of windows sit under 10 s.
    finite = a_series[~np.isnan(a_series)]
    assert (finite < 10.0).mean() >= 0.75
    # S3 RTC: ~20 s typical, tail above 30 s under bursts.
    assert 12.0 < np.quantile(r_delays, 0.5) < 28.0
    assert np.quantile(r_delays, Q) > 30.0
