"""Figure 5: Skyplane handling a dynamic workload under different VM
keep-alive policies (5 min / 1 min / 20 s).

Paper reference: replication delay reaches minutes whenever VM
provisioning is necessary or bursts queue up, and even aggressively
shutting VMs down after 20 s saves less than ~30 % of the VM cost of a
keep-alive-forever strategy.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.baselines.skyplane import SkyplaneReplicator
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.traces.ibm_cos import IbmCosTraceGenerator
from repro.traces.replay import TraceReplayer

POLICIES = [("keep-alive", None), ("5min", 300.0), ("1min", 60.0),
            ("20sec", 20.0)]


def _tenant_trace():
    """A moderate single-tenant hour: the Fig 5 workload (a couple of
    requests per minute on average, with bursty minutes and quiet
    stretches — per-tenant variation is 'even more pronounced')."""
    gen = IbmCosTraceGenerator(seed=12, mean_rps=scaled(120) / 3600.0,
                               tenants=1, delete_fraction=0.0,
                               burst_rate_per_hour=5.0, burst_multiplier=8.0,
                               minute_sigma=1.1)
    return gen.generate(3600.0)


def _run_policy(keepalive):
    cloud = build_default_cloud(seed=3)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    sky = SkyplaneReplicator(cloud, src, dst, keepalive_s=keepalive)
    sky.connect_notifications()
    TraceReplayer(cloud, src).replay_all(_tenant_trace())
    sky.shutdown()
    cloud.run()
    delays = np.array([r.delay for r in sky.records])
    vm_cost = cloud.ledger.total(CostCategory.VM_COMPUTE)
    return delays, vm_cost, sky.stats["provisions"]


def test_fig05_skyplane_keepalive_policies(benchmark, save_result):
    def run():
        return {name: _run_policy(keepalive) for name, keepalive in POLICIES}

    outcomes = run_once(benchmark, run)

    lines = ["Figure 5: Skyplane on a dynamic 1-hour tenant trace", ""]
    lines.append(f"{'policy':<12} {'transfers':>9} {'provisions':>10} "
                 f"{'p50 delay':>10} {'max delay':>10} {'VM cost':>10}")
    for name, _ in POLICIES:
        delays, vm_cost, provisions = outcomes[name]
        lines.append(f"{name:<12} {len(delays):>9} {provisions:>10} "
                     f"{np.median(delays):>9.1f}s {delays.max():>9.1f}s "
                     f"${vm_cost:>8.2f}")
    keep_cost = outcomes["keep-alive"][1]
    aggressive_cost = outcomes["20sec"][1]
    saving = 1 - aggressive_cost / keep_cost
    lines.append("")
    lines.append(f"20 s shutdown saves {saving * 100:.0f}% VM cost vs keep-alive "
                 "(paper: < 30%)")
    lines.append("paper: delay reaches minutes when provisioning is on the path")
    save_result("fig05_skyplane_dynamic", "\n".join(lines))

    # Shape assertions.
    keep_delays = outcomes["keep-alive"][0]
    aggressive_delays = outcomes["20sec"][0]
    assert outcomes["20sec"][2] > outcomes["5min"][2] >= 1
    assert aggressive_delays.max() > 60.0      # provisioning on the path
    assert aggressive_delays.max() > keep_delays[1:].max()
    assert saving < 0.5                         # shutting down barely helps