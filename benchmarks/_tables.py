"""Shared driver for the Table 1/2/3 comparison benchmarks.

Each table measures replication delay and cost from one source region
to nine destinations across the three clouds, for 1 MB / 128 MB / 1 GB
objects, comparing AReplica (SLO = 0, i.e. fastest plan) against
Skyplane and — where available — the source cloud's proprietary
replication service.
"""

from __future__ import annotations

from benchmarks._helpers import (
    GB,
    MB,
    build_service,
    measure_areplica,
    measure_proprietary,
    measure_skyplane,
)
from repro.analysis.tables import DelayCostCell, format_comparison_table

SIZES = [("1MB", 1 * MB), ("128MB", 128 * MB), ("1GB", 1 * GB)]


def run_table(src_key: str, destinations: list[str],
              proprietary: dict[str, str],
              seed: int = 0, trials: int = 2) -> dict:
    """``proprietary`` maps destination key -> 's3rtc'/'azrep' where the
    source cloud's managed service supports that destination."""
    cells: dict[tuple[str, str, str], DelayCostCell] = {}
    # One cloud + service per table for AReplica; one rule per
    # destination, each with its own source bucket so that per-rule
    # delay/cost measurements are isolated.  Rules share the fitted
    # performance model where paths overlap.
    cloud, service, _, _, _ = build_service(src_key, destinations[0],
                                            seed=seed)
    src_buckets = {}
    for dst_key in destinations:
        src_b = cloud.bucket(src_key, f"src-{dst_key}")
        dst_b = cloud.bucket(dst_key, f"dst-{dst_key}")
        service.add_rule(src_b, dst_b)
        src_buckets[dst_key] = src_b
    for dst_key in destinations:
        dst_label = dst_key.split(":", 1)[1]
        for size_label, size in SIZES:
            delay, cost = measure_areplica(
                cloud, service, src_buckets[dst_key], size,
                f"{dst_key}/{size_label}", trials=trials)
            cells[(size_label, dst_label, "AReplica")] = DelayCostCell(
                "AReplica", delay, cost)
            s_delay, s_cost = measure_skyplane(src_key, dst_key, size,
                                               seed=seed)
            cells[(size_label, dst_label, "Skyplane")] = DelayCostCell(
                "Skyplane", s_delay, s_cost)
            kind = proprietary.get(dst_key)
            if kind is not None:
                name = "S3RTC" if kind == "s3rtc" else "AZRep"
                p_delay, p_cost = measure_proprietary(kind, src_key, dst_key,
                                                      size, seed=seed,
                                                      trials=trials)
                cells[(size_label, dst_label, name)] = DelayCostCell(
                    name, p_delay, p_cost)
    return cells


def check_headline_claims(cells, destinations, systems) -> list[str]:
    """Assert the paper's headline: AReplica beats the best baseline's
    delay in every cell; returns human-readable reduction lines."""
    lines = []
    for size_label, _ in SIZES:
        reductions = []
        for dst_key in destinations:
            dst_label = dst_key.split(":", 1)[1]
            ours = cells[(size_label, dst_label, "AReplica")]
            baselines = [cells[(size_label, dst_label, s)]
                         for s in systems
                         if s != "AReplica" and (size_label, dst_label, s) in cells]
            best = min(b.delay_s for b in baselines)
            assert ours.delay_s < best, (
                f"AReplica slower than a baseline at {dst_label}/{size_label}")
            reductions.append(1 - ours.delay_s / best)
        lines.append(f"{size_label}: delay reduced by "
                     f"{min(reductions) * 100:.0f}%-{max(reductions) * 100:.0f}% "
                     "vs best baseline")
    return lines
