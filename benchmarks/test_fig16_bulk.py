"""Figure 16: bulk replication of a 100 GB object — AReplica vs
Skyplane with 8 VM pairs.

Paper reference: AReplica replicates 100 GB in about a minute using
128-512 function instances, improving replication time by 76 %-91 %;
the cost gap narrows because fixed data egress dominates at this size.
Skyplane still pays VM provisioning, and a single slow VM start extends
the end-to-end time.
"""

from benchmarks._helpers import GB, build_service, measure_skyplane
from benchmarks.conftest import run_once
from repro.simcloud.objectstore import Blob

SIZE = 100 * GB
PAIRS = [
    ("aws:us-east-1", "aws:ca-central-1"),
    ("aws:us-east-1", "azure:eastus"),
    ("aws:us-east-1", "gcp:us-east1"),
    ("azure:eastus", "gcp:us-east1"),
    ("gcp:us-east1", "azure:uksouth"),
]


def _areplica_bulk(src_key, dst_key, seed):
    cloud, service, src, dst, rule = build_service(src_key, dst_key,
                                                   seed=seed,
                                                   max_parallelism=512)
    before = cloud.ledger.snapshot()
    src.put_object("bulk", Blob.fresh(SIZE), cloud.now)
    cloud.run()
    record = service.records[-1]
    cost = before.delta(cloud.ledger.snapshot()).total
    # The notification delay is excluded in the paper's Fig 16 numbers.
    return record.visible_time - record.started, record.plan_n, cost


def test_fig16_bulk_100gb(benchmark, save_result):
    def run():
        out = {}
        for i, (src_key, dst_key) in enumerate(PAIRS):
            a_time, a_n, a_cost = _areplica_bulk(src_key, dst_key, seed=16 + i)
            s_time, s_cost = measure_skyplane(src_key, dst_key, SIZE,
                                              seed=16 + i, vm_pairs=8)
            out[(src_key, dst_key)] = (a_time, a_n, a_cost, s_time, s_cost)
        return out

    out = run_once(benchmark, run)

    lines = ["Figure 16: 100 GB bulk replication", ""]
    lines.append(f"{'pair':<42} {'AReplica':>9} {'n':>5} {'Skyplane':>9} "
                 f"{'saving':>7} {'A cost':>8} {'S cost':>8}")
    for (src_key, dst_key), (a_t, a_n, a_c, s_t, s_c) in out.items():
        saving = 1 - a_t / s_t
        lines.append(f"{src_key + ' -> ' + dst_key:<42} {a_t:>8.1f}s {a_n:>5} "
                     f"{s_t:>8.1f}s {saving * 100:>6.0f}% ${a_c:>7.2f} ${s_c:>7.2f}")
    lines.append("")
    lines.append("paper: AReplica ~1 minute, 76-91% faster; cost gap small "
                 "because egress dominates at 100 GB")
    save_result("fig16_bulk", "\n".join(lines))

    for (src_key, dst_key), (a_t, a_n, a_c, s_t, s_c) in out.items():
        assert a_t < 180.0, (src_key, dst_key)          # about a minute
        saving = 1 - a_t / s_t
        assert 0.5 < saving < 0.97, (src_key, dst_key)  # paper: 76-91 %
        assert 128 <= a_n <= 512                        # paper: 128-512 funcs
        # Cost roughly comparable: egress dominates both systems.
        assert a_c < s_c
        assert a_c > 0.4 * s_c or s_c - a_c < 2.0
