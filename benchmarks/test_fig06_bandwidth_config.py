"""Figure 6: download/upload bandwidth of a single cloud function vs its
compute configuration, on each platform.

Paper reference: all three clouds provide a few hundred Mbps between
regions; bandwidth scales with memory (AWS, Azure) or vCPUs (GCP) up to
a sweet spot beyond which a more expensive configuration buys nothing;
links to geographically close regions are generally faster.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.network import FunctionConfig
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
CHUNK = 32 * MB

AWS_MEMORIES = [128, 256, 512, 1024, 2048, 4096, 8192]
AZURE_MEMORIES = [2048, 4096]
GCP_CPUS = [1, 2, 4, 8]

PEERS = {
    "aws:us-east-1": ["aws:us-east-1", "aws:ca-central-1", "azure:eastus",
                      "gcp:us-east1"],
    "azure:eastus": ["azure:eastus", "aws:us-east-1", "azure:uksouth",
                     "gcp:us-east1"],
    "gcp:us-east1": ["gcp:us-east1", "aws:us-east-1", "azure:eastus",
                     "gcp:us-west1"],
}


def _measure_mbps(cloud, exec_region_key, peer_key, config, upload, trials):
    """Empirical single-function bandwidth: time real chunk transfers."""
    faas = cloud.faas(exec_region_key)
    local = cloud.bucket(exec_region_key, "local")
    peer = cloud.bucket(peer_key, "peer")
    peer.put_object("probe", Blob.fresh(CHUNK), cloud.now, notify=False)
    local.put_object("probe", Blob.fresh(CHUNK), cloud.now, notify=False)
    samples = []

    def handler(ctx, payload):
        yield from ctx.get_object(local, "probe", 0, 1)  # pay S up front
        start = ctx.now
        if payload["upload"]:
            blob, _ = yield from ctx.get_object(local, "probe")
            yield from ctx.put_object(peer, "out", blob)
            # subtract the (fast) local read from the timing
        else:
            yield from ctx.get_object(peer, "probe")
        return ctx.now - start

    base = f"probe-{exec_region_key}-{peer_key}-{config.memory_mb}-{config.vcpus}-{upload}"

    def driver():
        for i in range(trials):
            # One deployment per trial forces a fresh (cold) instance,
            # so the mean averages over instance speed factors instead
            # of measuring one warm instance repeatedly.
            name = f"{base}-{i}"
            faas.deploy(name, handler, config=config)
            accepted, inv = faas.invoke(name, {"upload": upload})
            yield accepted
            seconds = yield inv
            samples.append(CHUNK * 8 / (seconds * 1e6))

    cloud.sim.run_process(driver())
    return float(np.mean(samples))


def test_fig06_bandwidth_vs_configuration(benchmark, save_result):
    trials = scaled(5)

    def run():
        cloud = build_default_cloud(seed=6)
        rows = {}
        for mem in AWS_MEMORIES:
            cfg = FunctionConfig(memory_mb=mem, vcpus=mem / 1769)
            for peer in PEERS["aws:us-east-1"]:
                rows[("aws", mem, peer, "down")] = _measure_mbps(
                    cloud, "aws:us-east-1", peer, cfg, False, trials)
        for mem in AZURE_MEMORIES:
            cfg = FunctionConfig(memory_mb=mem, vcpus=1.0)
            for peer in PEERS["azure:eastus"]:
                rows[("azure", mem, peer, "down")] = _measure_mbps(
                    cloud, "azure:eastus", peer, cfg, False, trials)
        for cpus in GCP_CPUS:
            cfg = FunctionConfig(memory_mb=1024, vcpus=cpus)
            for peer in PEERS["gcp:us-east1"]:
                rows[("gcp", cpus, peer, "down")] = _measure_mbps(
                    cloud, "gcp:us-east1", peer, cfg, False, trials)
        return rows

    rows = run_once(benchmark, run)

    lines = ["Figure 6: single-function bandwidth vs configuration (Mbps)", ""]
    for platform, configs, exec_key in (
        ("aws", AWS_MEMORIES, "aws:us-east-1"),
        ("azure", AZURE_MEMORIES, "azure:eastus"),
        ("gcp", GCP_CPUS, "gcp:us-east1"),
    ):
        unit = "vCPU" if platform == "gcp" else "MB"
        lines.append(f"-- functions at {exec_key} (x axis: {unit}) --")
        header = f"{'peer':<22}" + "".join(f"{c:>8}" for c in configs)
        lines.append(header)
        for peer in PEERS[exec_key]:
            vals = "".join(f"{rows[(platform, c, peer, 'down')]:>8.0f}"
                           for c in configs)
            lines.append(f"{peer:<22}{vals}")
        lines.append("")
    save_result("fig06_bandwidth_config", "\n".join(lines))

    # Shape: hundreds of Mbps cross-region; memory scaling saturates
    # (the sweet spot); nearby faster than far.
    aws_cross = rows[("aws", 1024, "aws:ca-central-1", "down")]
    assert 100 < aws_cross < 1000
    assert rows[("aws", 128, "aws:ca-central-1", "down")] < aws_cross
    big = rows[("aws", 8192, "aws:ca-central-1", "down")]
    assert abs(big - rows[("aws", 2048, "aws:ca-central-1", "down")]) / big < 0.3
    assert rows[("gcp", 1, "aws:us-east-1", "down")] < \
        rows[("gcp", 2, "aws:us-east-1", "down")] * 1.05
    assert rows[("aws", 1024, "aws:us-east-1", "down")] > aws_cross
