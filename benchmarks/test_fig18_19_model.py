"""Figures 18 & 19: accuracy of the distribution-aware performance model
— predicted vs actual replication-time distributions for a 1 GB object
with 1 and 32 function instances, on a fast/stable path (AWS us-east-1
→ Azure eastus) and a slow/fluctuating one (Azure eastus → GCP
asia-northeast1), functions at the source region.

Paper reference: the model overestimates somewhat but tracks both the
location and the spread of the actual distribution on both paths.
"""

import numpy as np

from benchmarks._helpers import GB, build_service
from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob

PATHS = {
    "fig18": ("aws:us-east-1", "azure:eastus"),     # fast and stable
    "fig19": ("azure:eastus", "gcp:asia-northeast1"),  # slow, fluctuating
}
PARALLELISMS = [1, 32]


def _measure(src_key, dst_key, n, runs, seed):
    cloud, service, src, dst, rule = build_service(src_key, dst_key,
                                                   seed=seed)
    rule.engine.forced_plan = (n, src_key)
    actual = []
    keepalive = cloud.faas(src_key).profile.keepalive_s
    for i in range(runs):
        src.put_object(f"obj{i}", Blob.fresh(GB), cloud.now)
        cloud.run()
        actual.append(service.records[-1].replication_seconds)
        # Let warm instances expire so every run draws fresh instances,
        # exposing inter-instance variability like the paper's repeated
        # measurements over time.
        cloud.sim.run(until=cloud.now + keepalive + 1.0)
    path = (src_key, src_key, dst_key)
    predicted = service.model.predict_samples(path, GB, n,
                                              inline=False, count=2000)
    return np.array(actual), predicted


def test_fig18_fig19_model_accuracy(benchmark, save_result):
    runs = scaled(30)

    def run():
        out = {}
        for fig, (src_key, dst_key) in PATHS.items():
            for n in PARALLELISMS:
                out[(fig, n)] = _measure(src_key, dst_key, n, runs,
                                         seed=18 + n)
        return out

    out = run_once(benchmark, run)

    lines = ["Figures 18/19: predicted vs actual replication time, 1 GB", ""]
    for (fig, n), (actual, predicted) in out.items():
        src_key, dst_key = PATHS[fig]
        lines.append(f"{fig} ({src_key} -> {dst_key}), n={n}:")
        lines.append(f"  actual:    mean={actual.mean():6.1f}s "
                     f"std={actual.std():5.1f}s "
                     f"p10={np.quantile(actual, 0.1):6.1f} "
                     f"p90={np.quantile(actual, 0.9):6.1f}")
        lines.append(f"  predicted: mean={predicted.mean():6.1f}s "
                     f"std={predicted.std():5.1f}s "
                     f"p10={np.quantile(predicted, 0.1):6.1f} "
                     f"p90={np.quantile(predicted, 0.9):6.1f}")
        lines.append("")
    lines.append("paper: the model overestimates somewhat but reflects the "
                 "relative speed and variance of each strategy")
    save_result("fig18_19_model", "\n".join(lines))

    for (fig, n), (actual, predicted) in out.items():
        ratio = predicted.mean() / actual.mean()
        # Tracks location within ~2x, biased toward overestimation.
        assert 0.75 < ratio < 2.5, (fig, n, ratio)
    # The slow path (fig19) is predicted AND measured slower than the
    # fast path (fig18) at both parallelism levels — the property the
    # planner needs.
    for n in PARALLELISMS:
        assert out[("fig19", n)][0].mean() > out[("fig18", n)][0].mean()
        assert out[("fig19", n)][1].mean() > out[("fig18", n)][1].mean()
    # The slow path's measured spread is wider (Fig 19's wide density).
    assert out[("fig19", 1)][0].std() > out[("fig18", 1)][0].std()
