"""Ablation: Gumbel (extreme-value) tail approximation vs Monte-Carlo
resampling for the distributed-transfer maximum.

§5.3: "for large n, resampling will be too time-consuming. Instead,
based on the extreme value theory, we can use Gumbel distribution to
represent the maximum of n i.i.d. random variables, which is
significantly faster than Monte Carlo methods."  This benchmark
verifies both halves of that claim: percentile agreement within a few
percent, and a large planning-time speedup at high parallelism.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.core.model import LocParams, NormalParam, PathParams, PerformanceModel

MB = 1024 * 1024
GB = 1024 * MB
LOC = "aws:us-east-1"
PATH = (LOC, "aws:us-east-1", "azure:eastus")
PARALLELISMS = [32, 64, 128, 256, 512]
PERCENTILES = [0.9, 0.99]


def _model(gumbel_threshold, mc_samples=50_000):
    model = PerformanceModel(chunk_size=8 * MB, mc_samples=mc_samples,
                             gumbel_threshold=gumbel_threshold, seed=0)
    model.set_loc_params(LOC, LocParams(
        NormalParam(0.02, 0.005), NormalParam(0.35, 0.08), NormalParam.zero()))
    model.set_path_params(PATH, PathParams(
        NormalParam(0.25, 0.05), NormalParam(0.20, 0.04),
        NormalParam(0.24, 0.06)))
    return model


def test_ablation_gumbel_vs_monte_carlo(benchmark, save_result):
    def run():
        mc_model = _model(gumbel_threshold=10**9)      # always resample
        ev_model = _model(gumbel_threshold=1)          # always Gumbel
        rows = []
        size = 100 * GB
        for n in PARALLELISMS:
            for p in PERCENTILES:
                t0 = time.perf_counter()
                mc = mc_model.t_transfer_parallel_percentile(PATH, size, n, p)
                mc_model._mc_cache.clear()
                mc_time = time.perf_counter() - t0
                t0 = time.perf_counter()
                ev = ev_model.t_transfer_parallel_percentile(PATH, size, n, p)
                ev_time = time.perf_counter() - t0
                rows.append((n, p, mc, ev, mc_time, ev_time))
        return rows

    rows = run_once(benchmark, run)

    lines = ["Ablation: Gumbel (EVT) vs Monte-Carlo tail estimation "
             "(100 GB transfer)", ""]
    lines.append(f"{'n':>5} {'pctl':>6} {'MC':>9} {'Gumbel':>9} {'err':>7} "
                 f"{'speedup':>8}")
    for n, p, mc, ev, mc_t, ev_t in rows:
        err = abs(ev - mc) / mc
        lines.append(f"{n:>5} {p:>6} {mc:>8.2f}s {ev:>8.2f}s "
                     f"{err * 100:>6.1f}% {mc_t / max(ev_t, 1e-9):>7.0f}x")
    save_result("abl_gumbel", "\n".join(lines))

    for n, p, mc, ev, mc_t, ev_t in rows:
        assert abs(ev - mc) / mc < 0.10, (n, p)      # few-percent agreement
    # Aggregate speedup is large (per-call timers are noisy; compare sums).
    total_mc = sum(r[4] for r in rows)
    total_ev = sum(r[5] for r in rows)
    assert total_mc / total_ev > 20
