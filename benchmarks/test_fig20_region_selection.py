"""Figure 20: effectiveness of dynamic replication strategy — executing
replicator functions statically at the source, statically at the
destination, or letting AReplica's planner choose per path.

Paper reference: replicating a 128 MB object between region pairs with
a relaxed SLO (single function), certain regions have very distinct
characteristics: neither always-source nor always-destination is
optimal, while dynamic selection matches the better side everywhere.
"""

import numpy as np

from benchmarks._helpers import MB, build_service
from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob

SIZE = 128 * MB
SCENARIOS = {
    "azure:southeastasia": ["gcp:europe-west6", "gcp:us-east1",
                            "gcp:asia-northeast1"],
    "gcp:europe-west6": ["azure:westus2", "azure:southeastasia",
                         "azure:uksouth"],
}


def _measure(src_key, dst_key, strategy, trials, seed):
    # The paper's setup: a relaxed SLO that a single function can meet,
    # so the only planner decision under test is *where* it runs.
    cloud, service, src, dst, rule = build_service(src_key, dst_key, seed=seed,
                                                   slo=90.0,
                                                   enable_batching=False,
                                                   profile_samples=24)
    if strategy == "source":
        rule.engine.forced_plan = (1, src_key)
    elif strategy == "destination":
        rule.engine.forced_plan = (1, dst_key)
    else:
        rule.engine.forced_plan = None  # dynamic: the planner chooses
    times = []
    keepalive = cloud.faas(src_key).profile.keepalive_s
    for i in range(trials):
        src.put_object(f"o{i}", Blob.fresh(SIZE), cloud.now)
        cloud.run()
        times.append(service.records[-1].replication_seconds)
        cloud.sim.run(until=cloud.now + keepalive + 1.0)
    return float(np.mean(times))


def test_fig20_dynamic_region_selection(benchmark, save_result):
    trials = scaled(5)

    def run():
        out = {}
        for src_key, dsts in SCENARIOS.items():
            for dst_key in dsts:
                for strategy in ("source", "destination", "dynamic"):
                    out[(src_key, dst_key, strategy)] = _measure(
                        src_key, dst_key, strategy, trials, seed=20)
        return out

    out = run_once(benchmark, run)

    lines = ["Figure 20: source vs destination vs dynamic execution "
             f"({SIZE // MB} MB, single function)", ""]
    lines.append(f"{'pair':<48} {'src':>8} {'dst':>8} {'dynamic':>8}")
    for src_key, dsts in SCENARIOS.items():
        for dst_key in dsts:
            s = out[(src_key, dst_key, "source")]
            d = out[(src_key, dst_key, "destination")]
            dyn = out[(src_key, dst_key, "dynamic")]
            lines.append(f"{src_key + ' -> ' + dst_key:<48} "
                         f"{s:>7.1f}s {d:>7.1f}s {dyn:>7.1f}s")
    lines.append("")
    lines.append("paper: neither static choice is optimal everywhere; "
                 "dynamic selection tracks the better side")
    save_result("fig20_region_selection", "\n".join(lines))

    src_wins = dst_wins = 0
    for src_key, dsts in SCENARIOS.items():
        for dst_key in dsts:
            s = out[(src_key, dst_key, "source")]
            d = out[(src_key, dst_key, "destination")]
            dyn = out[(src_key, dst_key, "dynamic")]
            if s < d:
                src_wins += 1
            else:
                dst_wins += 1
            # Dynamic is close to (or better than) the better static side.
            assert dyn <= min(s, d) * 1.35, (src_key, dst_key)
    # Neither static strategy wins everywhere.
    assert src_wins >= 1 and dst_wins >= 1
