"""Figure 3: write throughput per minute over a week of the (synthetic)
IBM COS trace.

Paper reference: average per-minute write throughput fluctuates sharply
minute to minute over the 7-day trace — the property that makes static
VM provisioning either slow (cold starts on bursts) or wasteful
(overprovisioning).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.traces.ibm_cos import IbmCosTraceGenerator


def test_fig03_weekly_write_throughput(benchmark, save_result):
    gen = IbmCosTraceGenerator(seed=0, mean_rps=20.0)

    def run():
        # Rate envelope for the full week (what Fig 3 plots), cheap to
        # compute without materializing 1.6 B requests.
        return gen.minute_rates(7 * 24 * 3600.0)

    rates = run_once(benchmark, run)
    ratios = rates[1:] / rates[:-1]
    burst_ratio = float(rates.max() / np.median(rates))

    lines = ["Figure 3: write throughput per minute over one week", ""]
    for day in range(7):
        day_rates = rates[day * 1440:(day + 1) * 1440]
        lines.append(
            f"day {day}: median={np.median(day_rates):7.1f} req/s "
            f"p99={np.quantile(day_rates, 0.99):7.1f} max={day_rates.max():7.1f}"
        )
    lines.append("")
    lines.append(f"max minute-over-minute jump: {ratios.max():.1f}x")
    lines.append(f"peak / median rate:          {burst_ratio:.1f}x")
    lines.append("paper: throughput 'can change sharply from minute to minute'")
    save_result("fig03_throughput", "\n".join(lines))

    assert len(rates) == 7 * 1440
    assert ratios.max() > 2.0       # sharp minute-over-minute changes
    assert burst_ratio > 3.0        # pronounced bursts above typical load
