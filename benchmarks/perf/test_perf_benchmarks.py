"""Wall-clock benchmark suite (perf-marked; not part of tier-1).

Run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf --no-header

Each test executes one of the :mod:`repro.bench.perf` microbenchmarks
at reduced scale and asserts only sanity (positive throughput, no lost
work) — absolute numbers are machine-dependent and belong in the
``BENCH_*.json`` trajectory files, not in assertions.
"""

import pytest

from repro.bench import perf

pytestmark = pytest.mark.perf


def test_kernel_benchmark_runs():
    rate = perf.bench_kernel(events=20_000, repeat=1)
    assert rate > 0


def test_planner_benchmark_runs():
    cold, warm = perf.bench_planner(iterations=20, repeat=1)
    assert cold > 0 and warm > 0
    # The plan cache must make warm queries dramatically cheaper.
    assert warm > cold


def test_tracegen_benchmark_runs():
    rate = perf.bench_tracegen(requests=4_000, repeat=1)
    assert rate > 0


def test_e2e_benchmark_runs():
    seconds, rate = perf.bench_e2e(requests=300, repeat=1)
    assert seconds > 0 and rate > 0


def test_run_all_shape():
    results = perf.run_all(scale=0.02, repeat=1)
    assert set(results) == {
        "kernel_events_per_s",
        "planner_cold_plans_per_s",
        "planner_warm_plans_per_s",
        "tracegen_reqs_per_s",
        "e2e_seconds",
        "e2e_reqs_per_s",
    }
    assert all(v > 0 for v in results.values())


def test_emit_and_check_roundtrip(tmp_path):
    current = {m: 100.0 for m in perf.THROUGHPUT_METRICS}
    current["e2e_seconds"] = 1.0
    doc = perf.emit(tmp_path / "BENCH_TEST.json", current,
                    baseline={m: 50.0 for m in perf.THROUGHPUT_METRICS})
    assert doc["speedup"]["e2e_reqs_per_s"] == 2.0
    # 40% drop on one metric trips the 30% tolerance.
    slower = dict(current, kernel_events_per_s=60.0)
    warnings = perf.check_regression(slower, doc, tolerance=0.30)
    assert len(warnings) == 1 and "kernel_events_per_s" in warnings[0]
    assert not perf.check_regression(current, doc, tolerance=0.30)
