"""Figure 22: effectiveness of SLO-bounded batching — a 100 MB object
updated 5/10/50/100 times per minute under a 30-second SLO, with and
without batching.

Paper reference: batching maintains the SLO with very few violations
while its cost stays almost constant as the update frequency grows;
without batching the cost rises with frequency until it saturates at
the maximum replication rate AReplica can sustain.
"""

import numpy as np

from benchmarks._helpers import MB, build_service
from benchmarks.conftest import run_once, scaled
from repro.simcloud.objectstore import Blob

SIZE = 100 * MB
SLO = 30.0
FREQUENCIES = [5, 10, 50, 100]
SRC, DST = "aws:us-east-1", "aws:us-east-2"


def _run(freq_per_min, use_batching, duration_s, seed):
    cloud, service, src, dst, rule = build_service(
        SRC, DST, seed=seed, slo=SLO, enable_batching=use_batching)
    interval = 60.0 / freq_per_min
    before = cloud.ledger.snapshot()

    def producer():
        t_end = cloud.now + duration_s
        while cloud.now < t_end:
            src.put_object("hot", Blob.fresh(SIZE), cloud.now)
            yield cloud.sim.sleep(interval)

    cloud.sim.run_process(producer())
    cloud.run()
    delays = np.array(service.delays())
    cost = before.delta(cloud.ledger.snapshot()).total
    attainment = float((delays <= SLO + 0.5).mean())
    replications = (rule.engine.stats["inline"] + rule.engine.stats["single"]
                    + rule.engine.stats["distributed"])
    return attainment, cost / (duration_s / 60.0), replications, len(delays)


def test_fig22_slo_bounded_batching(benchmark, save_result):
    duration = scaled(240)

    def run():
        out = {}
        for freq in FREQUENCIES:
            out[(freq, True)] = _run(freq, True, duration, seed=22)
            out[(freq, False)] = _run(freq, False, duration, seed=22)
        return out

    out = run_once(benchmark, run)

    lines = [f"Figure 22: SLO-bounded batching (100 MB object, {SLO:.0f} s "
             "SLO)", ""]
    lines.append(f"{'freq/min':>9} {'mode':>14} {'SLO attainment':>15} "
                 f"{'cost $/min':>11} {'replications':>13} {'updates':>8}")
    for freq in FREQUENCIES:
        for batching in (True, False):
            att, cost_pm, reps, updates = out[(freq, batching)]
            mode = "with batching" if batching else "w/o batching"
            lines.append(f"{freq:>9} {mode:>14} {att * 100:>14.1f}% "
                         f"{cost_pm:>11.4f} {reps:>13} {updates:>8}")
    lines.append("")
    lines.append("paper: with batching the SLO holds with very few "
                 "violations and cost is ~flat in update frequency")
    save_result("fig22_batching", "\n".join(lines))

    batched_costs = [out[(f, True)][1] for f in FREQUENCIES]
    unbatched_costs = [out[(f, False)][1] for f in FREQUENCIES]
    # SLO attainment stays high with batching at every frequency.
    for freq in FREQUENCIES:
        assert out[(freq, True)][0] >= 0.97, freq
    # Batched cost is near-constant: a 20x increase in update frequency
    # costs well under 4x (vs 20x for perfect per-update replication) —
    # the flush cadence is pinned to the SLO window, not the workload.
    assert max(batched_costs) < min(batched_costs) * 4.0
    # Replications track SLO windows, not updates.
    assert out[(100, True)][2] < out[(100, True)][3] / 10
    # Unbatched cost grows strongly with frequency.
    assert unbatched_costs[2] > unbatched_costs[0] * 3
    # And batching saves a lot at high frequency (the unbatched cost
    # itself saturates at AReplica's maximum replication frequency, as
    # the paper notes for >50 updates/min).
    assert batched_costs[-1] < unbatched_costs[-1] / 3
    # Unbatched replication saturates: doubling the update rate from 50
    # to 100/min yields strongly sublinear replication growth (the
    # per-object lock bounds AReplica's maximum replication frequency).
    unbatched_reps = [out[(f, False)][2] for f in FREQUENCIES]
    assert unbatched_reps[-1] <= unbatched_reps[-2] * 1.6
