"""Figure 12: sub-optimality of equal distribution of data parts —
the paper's illustrative two-replicator example, executed through the
real part pool.

Replicator 1 processes four parts per second, Replicator 2 two per
second, eight parts total.  Equal dispatch gives each replicator four
parts, so Replicator 2 finishes at 2.0 s; pool scheduling lets the fast
replicator take the slack and finishes at the discrete optimum (1.5 s
makespan for 8 indivisible parts).
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.partpool import FairAssignment, PartPool
from repro.simcloud.cloud import build_default_cloud

NUM_PARTS = 8
RATES = {"replicator-1": 4.0, "replicator-2": 2.0}


def _pool_schedule(cloud):
    table = cloud.kv_table("aws:us-east-1", "fig12")
    pool = PartPool(table, "pool", NUM_PARTS)
    finish = {}
    counts = {name: 0 for name in RATES}

    def worker(name, rate):
        while True:
            idx = yield from pool.claim()
            if idx is None:
                finish[name] = cloud.now
                return
            yield cloud.sim.sleep(1.0 / rate)
            counts[name] += 1
            yield from pool.complete(idx)

    def main():
        yield from pool.create()
        yield cloud.sim.all_of([
            cloud.sim.spawn(worker(name, rate))
            for name, rate in RATES.items()
        ])

    start = cloud.now
    cloud.sim.run_process(main())
    return max(finish.values()) - start, counts


def _equal_schedule(cloud):
    assignment = FairAssignment(NUM_PARTS, len(RATES))
    finish = {}

    def worker(name, rate, parts):
        for _ in parts:
            yield cloud.sim.sleep(1.0 / rate)
        finish[name] = cloud.now

    def main():
        yield cloud.sim.all_of([
            cloud.sim.spawn(worker(name, rate, assignment.parts_for(i)))
            for i, (name, rate) in enumerate(RATES.items())
        ])

    start = cloud.now
    cloud.sim.run_process(main())
    return max(finish.values()) - start


def test_fig12_equal_vs_pool_distribution(benchmark, save_result):
    def run():
        cloud = build_default_cloud(seed=12)
        equal = _equal_schedule(cloud)
        pool_time, counts = _pool_schedule(cloud)
        return equal, pool_time, counts

    equal, pool_time, counts = run_once(benchmark, run)

    lines = ["Figure 12: equal vs decentralized distribution of 8 parts",
             "(replicator-1: 4 parts/s, replicator-2: 2 parts/s)", ""]
    lines.append(f"equal dispatch (4+4):   {equal:.2f} s   (paper: 2 s)")
    lines.append(f"part pool ({counts['replicator-1']}+"
                 f"{counts['replicator-2']}):       {pool_time:.2f} s   "
                 "(paper's optimal: ~1.25-1.5 s)")
    save_result("fig12_distribution", "\n".join(lines))

    # The KV round-trips add a few ms on top of the idealized figure.
    assert equal == pytest.approx(2.0, abs=0.1)
    assert pool_time == pytest.approx(1.5, abs=0.15)
    assert counts["replicator-1"] > counts["replicator-2"]
