"""Figure 2: PUT request size distribution in the (synthetic) IBM COS
traces — request count vs capacity share per size decade.

Paper reference: ~80 % of PUT requests are at or below 1 MB, and the
capacity histogram is shifted far to the right of the count histogram
(rare large objects hold most of the bytes).
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.analysis.stats import SIZE_BUCKET_LABELS, fraction_at_or_below, size_histogram
from repro.traces.ibm_cos import MB, GB, SizeModel


def test_fig02_put_size_distribution(benchmark, save_result):
    samples = scaled(300_000)

    def run():
        sizes = SizeModel(np.random.default_rng(0)).sample(samples)
        return sizes

    sizes = run_once(benchmark, run)
    hist = size_histogram(sizes)
    at_or_below_1mb = fraction_at_or_below(sizes, MB)
    below_1gb = fraction_at_or_below(sizes, GB)

    lines = ["Figure 2: PUT request size distribution", ""]
    lines.append(f"{'bucket':>8} {'count %':>10} {'capacity %':>12}")
    for label in SIZE_BUCKET_LABELS:
        row = hist[label]
        if row["count"] == 0 and row["capacity"] == 0:
            continue
        lines.append(f"{label:>8} {row['count'] * 100:>9.2f}% "
                     f"{row['capacity'] * 100:>11.2f}%")
    lines.append("")
    from repro.analysis.textchart import bar_chart

    present = [l for l in SIZE_BUCKET_LABELS
               if hist[l]["count"] > 0 or hist[l]["capacity"] > 0]
    lines.append(bar_chart(present, [hist[l]["count"] * 100 for l in present],
                           width=36, unit="%", title="request count share"))
    lines.append("")
    lines.append(bar_chart(present,
                           [round(hist[l]["capacity"] * 100, 2) for l in present],
                           width=36, unit="%", title="capacity share"))
    lines.append("")
    lines.append(f"PUTs <= 1MB: {at_or_below_1mb * 100:.1f}%   (paper: ~80%)")
    lines.append(f"PUTs <  1GB: {below_1gb * 100:.2f}%  (paper: >99.99%)")
    save_result("fig02_put_sizes", "\n".join(lines))

    # Shape assertions from the paper's characterization.
    assert 0.72 <= at_or_below_1mb <= 0.88
    assert below_1gb > 0.999
    count_peak = max(hist, key=lambda l: hist[l]["count"])
    capacity_peak = max(hist, key=lambda l: hist[l]["capacity"])
    assert SIZE_BUCKET_LABELS.index(capacity_peak) > SIZE_BUCKET_LABELS.index(count_peak)
