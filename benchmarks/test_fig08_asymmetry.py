"""Figure 8: asymmetric behaviour of cloud functions — replicating a
1 GB object pairwise between AWS us-east-1, Azure eastus, and GCP
us-east1, executing the functions at either end.

Paper reference: replication speed depends not only on the
(source, destination) pair but on *where the functions run*; both the
average speed and the variance differ between platforms, so a
replication system must choose the right platform/region to meet its
SLO.
"""

import itertools

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
SIZE = 1024 * MB
CHUNK = 8 * MB
REGIONS = ["aws:us-east-1", "azure:eastus", "gcp:us-east1"]


def _replication_mbps(cloud, loc_key, src_key, dst_key, trials):
    """Single-function 1 GB store-and-forward speed at ``loc_key``."""
    faas = cloud.faas(loc_key)
    src = cloud.bucket(src_key, "src")
    dst = cloud.bucket(dst_key, "dst")
    if "big" not in src:
        src.put_object("big", Blob.fresh(SIZE), cloud.now, notify=False)
    speeds = []

    def handler(ctx, payload):
        start = ctx.now
        for off in range(0, SIZE, CHUNK):
            blob, _ = yield from ctx.get_object(src, "big", off, CHUNK)
            yield from ctx.put_object(dst, f"big-{payload['i']}", blob)
        return SIZE * 8 / ((ctx.now - start) * 1e6)

    name = f"rep-{loc_key}-{src_key}-{dst_key}"
    faas.deploy(name, handler, timeout_s=10_000.0)

    def driver():
        for i in range(trials):
            accepted, inv = faas.invoke(name, {"i": i})
            yield accepted
            speeds.append((yield inv))

    cloud.sim.run_process(driver())
    return speeds


def test_fig08_asymmetric_platform_behaviour(benchmark, save_result):
    trials = scaled(6)

    def run():
        cloud = build_default_cloud(seed=8)
        results = {}
        for src_key, dst_key in itertools.permutations(REGIONS, 2):
            for loc_key in (src_key, dst_key):
                results[(src_key, dst_key, loc_key)] = _replication_mbps(
                    cloud, loc_key, src_key, dst_key, trials)
        return results

    results = run_once(benchmark, run)

    lines = ["Figure 8: 1 GB pairwise replication speed by execution "
             "platform (Mbps, mean ± std)", ""]
    for (src_key, dst_key, loc_key), speeds in results.items():
        side = "src" if loc_key == src_key else "dst"
        lines.append(f"{src_key:>16} -> {dst_key:<16} exec@{side} "
                     f"({loc_key:<16}): {np.mean(speeds):7.0f} ± "
                     f"{np.std(speeds):5.0f}")
    lines.append("")
    lines.append("paper: speed depends on where the functions run, not only "
                 "on the (src, dst) pair")
    save_result("fig08_asymmetry", "\n".join(lines))

    # Shape: for at least two directed pairs, the two execution sides
    # differ materially in mean speed; variance differs by platform.
    diverging = 0
    for src_key, dst_key in itertools.permutations(REGIONS, 2):
        a = np.mean(results[(src_key, dst_key, src_key)])
        b = np.mean(results[(src_key, dst_key, dst_key)])
        if abs(a - b) / max(a, b) > 0.15:
            diverging += 1
    assert diverging >= 2
    aws_std = np.std(results[("aws:us-east-1", "azure:eastus", "aws:us-east-1")])
    azure_std = np.std(results[("aws:us-east-1", "azure:eastus", "azure:eastus")])
    assert azure_std != aws_std
