"""Table 2: replication delay and cost from Azure eastus to nine
regions, vs Skyplane and Azure object replication (AZ Rep).

Paper reference: delay reduced 67 %-99 %; AZ Rep consistently exhibits
>60 s delay; Skyplane is slower on Azure because Azure VMs provision
slowly; AReplica is *more expensive* than AZ Rep on Azure-to-Azure
paths (positive cost Δ) because AZ Rep's data path is free of service
charges, but AReplica is several times faster.
"""

from benchmarks._tables import SIZES, check_headline_claims, run_table
from benchmarks.conftest import run_once
from repro.analysis.tables import format_comparison_table

SRC = "azure:eastus"
DESTINATIONS = [
    "aws:us-east-1", "aws:eu-west-1", "aws:ap-northeast-1",
    "azure:westus2", "azure:uksouth", "azure:southeastasia",
    "gcp:us-east1", "gcp:europe-west6", "gcp:asia-northeast1",
]
PROPRIETARY = {d: "azrep" for d in DESTINATIONS if d.startswith("azure:")}
SYSTEMS = ["AReplica", "Skyplane", "AZRep"]


def test_table2_delay_and_cost_from_azure(benchmark, save_result):
    cells = run_once(benchmark, lambda: run_table(SRC, DESTINATIONS,
                                                  PROPRIETARY, seed=2))
    table = format_comparison_table(
        "Table 2: replication from Azure eastus",
        [d.split(":", 1)[1] for d in DESTINATIONS],
        [label for label, _ in SIZES], cells, SYSTEMS)
    claims = check_headline_claims(cells, DESTINATIONS, SYSTEMS)
    save_result("tab2_from_azure", table + "\n\n" + "\n".join(claims))

    # AZ Rep consistently > 60 s.
    for dst in ("westus2", "uksouth", "southeastasia"):
        for size_label, _ in SIZES:
            assert cells[(size_label, dst, "AZRep")].delay_s > 55.0
    # Skyplane from Azure is slower than Skyplane from AWS (Table 1
    # showed >= ~65 s; Azure provisioning pushes past 100 s).
    assert cells[("1MB", "westus2", "Skyplane")].delay_s > 90.0
    # AReplica costs MORE than free-data-path AZ Rep on Azure-to-Azure
    # (the paper's positive Δ) while being much faster.
    for size_label, _ in SIZES:
        ours = cells[(size_label, "westus2", "AReplica")]
        azrep = cells[(size_label, "westus2", "AZRep")]
        assert ours.cost_usd > azrep.cost_usd * 0.9
        assert ours.delay_s < azrep.delay_s / 3
