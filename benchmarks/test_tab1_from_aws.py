"""Table 1: replication delay and cost from AWS us-east-1 to nine
regions across the three clouds, for 1 MB / 128 MB / 1 GB objects.

Paper reference: AReplica outperforms the best baseline in every cell,
reducing replication delay by 61 %-99 % and cost by 28.5 %-99.9 %;
S3 RTC takes 15-26 s, Skyplane at least 76 s; AReplica stays
single-digit seconds except to some Asian regions.
"""

from benchmarks._tables import SIZES, check_headline_claims, run_table
from benchmarks.conftest import run_once
from repro.analysis.tables import format_comparison_table

SRC = "aws:us-east-1"
DESTINATIONS = [
    "aws:ca-central-1", "aws:eu-west-1", "aws:ap-northeast-1",
    "azure:eastus", "azure:uksouth", "azure:southeastasia",
    "gcp:us-east1", "gcp:europe-west6", "gcp:asia-northeast1",
]
PROPRIETARY = {d: "s3rtc" for d in DESTINATIONS if d.startswith("aws:")}
SYSTEMS = ["AReplica", "Skyplane", "S3RTC"]


def test_table1_delay_and_cost_from_aws(benchmark, save_result):
    cells = run_once(benchmark, lambda: run_table(SRC, DESTINATIONS,
                                                  PROPRIETARY, seed=1))
    table = format_comparison_table(
        "Table 1: replication from AWS us-east-1",
        [d.split(":", 1)[1] for d in DESTINATIONS],
        [label for label, _ in SIZES], cells, SYSTEMS)
    claims = check_headline_claims(cells, DESTINATIONS, SYSTEMS)
    save_result("tab1_from_aws", table + "\n\n" + "\n".join(claims))

    # Paper shape checks.
    aws1mb = cells[("1MB", "ca-central-1", "AReplica")]
    assert aws1mb.delay_s < 5.0                      # paper: 1.5 s
    rtc = cells[("1MB", "ca-central-1", "S3RTC")]
    assert 10.0 < rtc.delay_s < 30.0                 # paper: 15-26 s
    sky = cells[("1MB", "ca-central-1", "Skyplane")]
    assert sky.delay_s > 60.0                        # paper: >= 76 s
    # AReplica on AWS is cheaper than S3 RTC (28.5-39.9 % saving).
    for size_label, _ in SIZES:
        for dst in ("ca-central-1", "eu-west-1", "ap-northeast-1"):
            ours = cells[(size_label, dst, "AReplica")].cost_usd
            rtc_cost = cells[(size_label, dst, "S3RTC")].cost_usd
            assert ours < rtc_cost
    # Cross-cloud 1 MB cost is dominated by per-GB egress, orders below
    # Skyplane's VM bill.
    ours = cells[("1MB", "eastus", "AReplica")].cost_usd
    sky_cost = cells[("1MB", "eastus", "Skyplane")].cost_usd
    assert sky_cost / ours > 100                     # paper: ~3 orders
