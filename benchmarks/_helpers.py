"""Measurement helpers shared by the benchmark suite."""

from __future__ import annotations

from typing import Optional

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024
GB = 1024 * MB


def build_service(src_key: str, dst_key: str, seed: int = 0, slo: float = 0.0,
                  scheduling: str = "pool", **cfg):
    """One cloud + service + rule, profiled and ready."""
    cloud = build_default_cloud(seed=seed)
    cfg.setdefault("profile_samples", 8)
    cfg.setdefault("mc_samples", 1000)
    config = ReplicaConfig(slo_seconds=slo, **cfg)
    service = AReplicaService(cloud, config)
    src = cloud.bucket(src_key, "src")
    dst = cloud.bucket(dst_key, "dst")
    rule = service.add_rule(src, dst, scheduling=scheduling)
    return cloud, service, src, dst, rule


def measure_areplica(cloud, service, src, size: int, key: str,
                     trials: int = 1) -> tuple[float, float]:
    """Replicate ``trials`` fresh objects; mean (delay_s, cost_usd)."""
    delays, costs = [], []
    for i in range(trials):
        before = cloud.ledger.snapshot()
        n_records = len(service.records)
        src.put_object(f"{key}-{i}", Blob.fresh(size), cloud.now)
        cloud.run()
        new = service.records[n_records:]
        delays.append(max(r.delay for r in new))
        costs.append(before.delta(cloud.ledger.snapshot()).total)
    return sum(delays) / len(delays), sum(costs) / len(costs)


def measure_skyplane(src_key: str, dst_key: str, size: int, seed: int = 0,
                     vm_pairs: int = 1, trials: int = 1) -> tuple[float, float]:
    """Cold Skyplane transfers; mean (delay_s, cost_usd)."""
    from repro.baselines.skyplane import SkyplaneReplicator

    delays, costs = [], []
    for i in range(trials):
        cloud = build_default_cloud(seed=seed + i)
        src = cloud.bucket(src_key, "src")
        dst = cloud.bucket(dst_key, "dst")
        sky = SkyplaneReplicator(cloud, src, dst, vm_pairs=vm_pairs)
        src.put_object("obj", Blob.fresh(size), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        record = sky.replicate_once("obj")
        delays.append(record.delay)
        costs.append(before.delta(cloud.ledger.snapshot()).total)
    return sum(delays) / len(delays), sum(costs) / len(costs)


def measure_proprietary(kind: str, src_key: str, dst_key: str, size: int,
                        seed: int = 0, trials: int = 1) -> tuple[float, float]:
    """S3 RTC ('s3rtc') or Azure object replication ('azrep')."""
    from repro.baselines.azrep import AzureObjectReplicator
    from repro.baselines.s3rtc import S3RTCReplicator

    cls = {"s3rtc": S3RTCReplicator, "azrep": AzureObjectReplicator}[kind]
    delays, costs = [], []
    for i in range(trials):
        cloud = build_default_cloud(seed=seed + i)
        src = cloud.bucket(src_key, "src", versioning=True)
        dst = cloud.bucket(dst_key, "dst", versioning=True)
        rep = cls(cloud, src, dst)
        src.put_object("obj", Blob.fresh(size), cloud.now, notify=False)
        before = cloud.ledger.snapshot()
        record = rep.replicate_once("obj")
        delays.append(record.delay)
        costs.append(before.delta(cloud.ledger.snapshot()).total)
    return sum(delays) / len(delays), sum(costs) / len(costs)
