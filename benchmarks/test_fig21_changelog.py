"""Figure 21: replication time and cost of a COPY operation — AReplica
with changelog propagation (AReplica-log) vs full replication
(AReplica-full) vs Skyplane vs S3 RTC, for 100 MB to 100 GB objects,
AWS us-east-1 → us-east-2.

Paper reference: changelog propagation does not change the time much on
this nearby pair, but it dramatically reduces cost by avoiding the
cross-region object transfer entirely.
"""

from benchmarks._helpers import (GB, MB, build_service, measure_proprietary,
                                 measure_skyplane)
from benchmarks.conftest import run_once
from repro.simcloud.objectstore import Blob

SIZES = [("100MB", 100 * MB), ("1GB", GB), ("10GB", 10 * GB),
         ("100GB", 100 * GB)]
SRC, DST = "aws:us-east-1", "aws:us-east-2"


def _areplica_copy(size, use_changelog, seed):
    """Replicate 'orig' normally, then COPY it and replicate the copy."""
    cloud, service, src, dst, rule = build_service(
        SRC, DST, seed=seed, enable_changelog=use_changelog,
        max_parallelism=512)
    src.put_object("orig", Blob.fresh(size), cloud.now)
    cloud.run()

    def user_program():
        version = src.copy_object("orig", "copy", cloud.now, notify=False)
        if use_changelog:
            yield from rule.changelog.record_copy(
                "orig", src.head("orig").etag, "copy", version.etag)
        src.delete_object("copy", cloud.now, notify=False)
        src.copy_object("orig", "copy", cloud.now)

    before = cloud.ledger.snapshot()
    n_records = len(service.records)
    cloud.sim.run_process(user_program())
    cloud.run()
    record = service.records[-1]
    assert len(service.records) > n_records
    assert dst.head("copy").etag == src.head("copy").etag
    cost = before.delta(cloud.ledger.snapshot()).total
    return record.replication_seconds, cost


def test_fig21_copy_changelog_propagation(benchmark, save_result):
    def run():
        out = {}
        for i, (label, size) in enumerate(SIZES):
            out[(label, "AReplica-log")] = _areplica_copy(size, True, 21 + i)
            out[(label, "AReplica-full")] = _areplica_copy(size, False, 21 + i)
            out[(label, "Skyplane")] = measure_skyplane(
                SRC, DST, size, seed=21 + i,
                vm_pairs=8 if size >= 10 * GB else 1)
            out[(label, "S3RTC")] = measure_proprietary(
                "s3rtc", SRC, DST, size, seed=21 + i)
        return out

    out = run_once(benchmark, run)

    systems = ["Skyplane", "S3RTC", "AReplica-full", "AReplica-log"]
    lines = ["Figure 21: COPY operation replication "
             f"({SRC} -> {DST})", ""]
    lines.append(f"{'size':>7} " + "".join(f"{s:>16}" for s in systems)
                 + "   (time s)")
    for label, _ in SIZES:
        lines.append(f"{label:>7} " + "".join(
            f"{out[(label, s)][0]:>15.1f}s" for s in systems))
    lines.append("")
    lines.append(f"{'size':>7} " + "".join(f"{s:>16}" for s in systems)
                 + "   (cost $)")
    for label, _ in SIZES:
        lines.append(f"{label:>7} " + "".join(
            f"${out[(label, s)][1]:>14.4f}" for s in systems))
    lines.append("")
    lines.append("paper: changelog propagation leaves time similar on this "
                 "nearby pair but removes nearly all of the cost")
    save_result("fig21_changelog", "\n".join(lines))

    for label, size in SIZES:
        log_time, log_cost = out[(label, "AReplica-log")]
        full_time, full_cost = out[(label, "AReplica-full")]
        # Near-zero cost with the changelog (>50x cheaper at every size).
        assert log_cost < full_cost / 50, label
        # And never slower than a full replication by any real margin.
        assert log_time < full_time * 1.5, label
        # Both beat Skyplane's provision-dominated time.
        assert log_time < out[(label, "Skyplane")][0]
