"""Setuptools shim: enables `python setup.py develop` in offline
environments where pip's editable install needs the `wheel` package.
Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
