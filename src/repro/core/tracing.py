"""Causal task tracing on the simulation clock (§3, §5.3, Fig 18-19).

Every replication task — one ``{rule}:{key}:{seq}:{kind}`` lifecycle —
leaves a causal trace: notification delivery, dedup/sequencing, lock
acquisition (with its fencing token), plan selection, FaaS invocation,
per-part transfers, finalize/abort, and visibility.  Spans carry the
paper's delay-decomposition phases as first-class categories:

=====  ==============================================================
phase  meaning
=====  ==============================================================
``N``  notification delivery delay (event time → engine receipt)
``I``  invocation latency (request → platform accept)
``D``  readiness delay (warm resume or cold start of an instance)
``P``  scheduler postponement (waiting for a placement tick)
``S``  client startup inside the function (SDK/auth/session)
``C``  per-chunk transfer legs (download or upload of one part)
=====  ==============================================================

The recorder is deliberately dumb: append-only lists of spans, instant
events and cost records, all timestamped from the simulation clock and
in execution order (the kernel is deterministic, so two runs with the
same seed produce byte-identical exports).  Every emission site in the
engine and substrates is guarded by a single ``tracer is not None``
check — the disabled path costs one attribute read, preserving the
hot-path wins benchmarked in ``BENCH_PR1.json``.

Beyond the phase letters, the engine emits a ``verify`` span (cat
``engine``) for every verify-after-finalize check, and the integrity
machinery emits ``chaos-corrupt`` (an injected fault),
``corrupt-detected``, and ``quarantine`` events — the records the
TraceChecker's integrity invariants and the corruption drill audit.
The hedging layer adds ``hedge-start`` / ``hedge-resolved`` events and
a ``hedge`` span per fired clone (outcome ``won`` / ``lost`` /
``cancelled``), which the TraceChecker's hedge-discipline invariants
require to pair exactly one-to-one.

Offline consumers:

* :meth:`Tracer.export_chrome` — Chrome trace-event JSON, loadable in
  ``chrome://tracing`` / Perfetto (one row per task);
* :meth:`Tracer.delay_breakdown` — the per-phase *I/D/P/S/C* split
  comparable to the paper's Fig 18-19 delay decomposition;
* :class:`repro.core.invariants.TraceChecker` — the lifecycle oracle
  that validates a finished trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Span", "Event", "CostRecord", "Tracer", "TenantTracer",
           "task_ref", "PHASES", "PHASE_NAMES"]

#: Delay-decomposition phases, in presentation order.
PHASES = ("N", "I", "D", "P", "S", "C")

PHASE_NAMES = {
    "N": "notification delivery",
    "I": "invocation latency",
    "D": "readiness (warm/cold start)",
    "P": "scheduler postponement",
    "S": "client startup",
    "C": "chunk transfer",
}


def task_ref(payload) -> Optional[str]:
    """The task id a function invocation payload is working for.

    The engine stamps orchestrator payloads with a ``task`` field;
    replicator payloads already carry ``task_id``, and the changelog
    applier nests the whole task dict under ``task``.  Attribution
    degrades to ``None`` (an untasked row) rather than KeyError for
    payloads outside the task lifecycle (probes, timers).
    """
    if isinstance(payload, dict):
        ref = payload.get("task", payload.get("task_id"))
        if isinstance(ref, dict):
            ref = ref.get("task_id")
        if ref is not None:
            return str(ref)
    return None


@dataclass(frozen=True)
class Span:
    """A closed interval of simulated time attributed to one task."""

    name: str          # phase letter for cat="phase", else a verb
    cat: str           # phase | engine | faas | lock | pool | kv | net
    task: Optional[str]
    start: float
    end: float
    attrs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Event:
    """An instantaneous lifecycle fact (finalize, park, done-marker…)."""

    name: str
    cat: str
    task: Optional[str]
    time: float
    attrs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CostRecord:
    """One ledger charge observed through the tracer's cost sink."""

    time: float
    category: str
    amount: float
    task: Optional[str]
    detail: str


class Tracer:
    """Append-only sim-clock span/event/cost recorder.

    One tracer observes one :class:`~repro.simcloud.cloud.Cloud`; the
    service installs it with ``cloud.set_tracer(tracer)`` which also
    hooks the cost ledger's sink so every charge after installation is
    mirrored (with task attribution where the charge site knows it).
    """

    def __init__(self, sim):
        self.sim = sim
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self.costs: list[CostRecord] = []
        self._ledger = None
        self._cost_baseline = 0.0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str, task: Optional[str],
             start: float, end: float, **attrs) -> None:
        self.spans.append(Span(name, cat, task, start, end, attrs))

    def event(self, name: str, cat: str, task: Optional[str],
              **attrs) -> None:
        self.events.append(Event(name, cat, task, self.sim.now, attrs))

    def scoped(self, tenant: str) -> "TenantTracer":
        """A view of this tracer stamping ``tenant=`` on every record.

        Installed on a tenant's engines (and, through them, their lock
        managers) so the cross-tenant isolation invariant can key lock
        domains, backlog lanes, and task ownership by tenant without
        the engine ever learning about tracing internals.  Records land
        in *this* tracer's lists — the scoped view holds no state.
        """
        return TenantTracer(self, tenant)

    # -- cost sink ---------------------------------------------------------

    def install_cost_sink(self, ledger) -> None:
        """Mirror every subsequent ledger charge into the trace.

        The baseline snapshot makes completeness checkable: the sum of
        recorded charges must equal the ledger's growth since install
        (see TraceChecker's ``cost-gap`` invariant).
        """
        self._ledger = ledger
        self._cost_baseline = ledger.total()
        ledger.sink = self._on_cost

    def _on_cost(self, time: float, category: str, amount: float,
                 detail: str, task: Optional[str]) -> None:
        self.costs.append(CostRecord(time, category, amount, task, detail))

    def billed_delta(self) -> float:
        """Ledger growth since the cost sink was installed."""
        if self._ledger is None:
            return 0.0
        return self._ledger.total() - self._cost_baseline

    def recorded_cost(self) -> float:
        return sum(c.amount for c in self.costs)

    def attributed_cost(self) -> dict[str, float]:
        """Per-task cost totals (unattributed charges under ``None``)."""
        out: dict = {}
        for c in self.costs:
            out[c.task] = out.get(c.task, 0.0) + c.amount
        return out

    # -- queries -----------------------------------------------------------

    def tasks(self) -> list[str]:
        """All task ids, in order of first appearance."""
        seen: dict[str, None] = {}
        for rec in self._merged():
            if rec[0] is not None:
                seen.setdefault(rec[0], None)
        return list(seen)

    def _merged(self):
        """(task, time, record) triples in global record order.

        Spans sort at their *end* (that is when they were recorded);
        the kernel never moves the clock backwards, so record order is
        execution order and the times are non-decreasing — an invariant
        the checker relies on.
        """
        for s in self.spans:
            yield (s.task, s.end, s)
        for e in self.events:
            yield (e.task, e.time, e)

    def task_events(self, task: str) -> list[Event]:
        return [e for e in self.events if e.task == task]

    def integrity_summary(self) -> dict[str, int]:
        """Corruption bookkeeping visible in this trace: injected
        faults, engine detections, quarantines, and verify outcomes."""
        out = {"injected": 0, "detected": 0, "quarantined": 0,
               "verify_ok": 0, "verify_failed": 0}
        for e in self.events:
            if e.name == "chaos-corrupt":
                out["injected"] += 1
            elif e.name == "corrupt-detected":
                out["detected"] += 1
            elif e.name == "quarantine":
                out["quarantined"] += 1
        for s in self.spans:
            if s.name == "verify" and s.cat == "engine":
                out["verify_ok" if s.attrs.get("ok") else
                    "verify_failed"] += 1
        return out

    def task_spans(self, task: str) -> list[Span]:
        return [s for s in self.spans if s.task == task]

    # -- delay breakdown (Fig 18-19 shape) ---------------------------------

    def delay_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-phase duration statistics for the *N/I/D/P/S/C* split."""
        buckets: dict[str, list[float]] = {p: [] for p in PHASES}
        for s in self.spans:
            if s.cat == "phase" and s.name in buckets:
                buckets[s.name].append(s.end - s.start)
        out: dict[str, dict[str, float]] = {}
        for phase in PHASES:
            durs = sorted(buckets[phase])
            n = len(durs)
            if n == 0:
                out[phase] = {"count": 0, "total_s": 0.0, "mean_s": 0.0,
                              "p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0}
                continue
            total = sum(durs)
            out[phase] = {
                "count": n,
                "total_s": total,
                "mean_s": total / n,
                "p50_s": _quantile(durs, 0.50),
                "p99_s": _quantile(durs, 0.99),
                "max_s": durs[-1],
            }
        return out

    def render_breakdown(self) -> str:
        """Fixed-width text table of :meth:`delay_breakdown`."""
        rows = self.delay_breakdown()
        lines = [f"{'phase':<7}{'count':>7}{'total_s':>10}{'mean_ms':>10}"
                 f"{'p50_ms':>9}{'p99_ms':>9}{'max_ms':>9}  meaning"]
        for phase in PHASES:
            r = rows[phase]
            lines.append(
                f"{phase:<7}{r['count']:>7}{r['total_s']:>10.3f}"
                f"{r['mean_s'] * 1e3:>10.2f}{r['p50_s'] * 1e3:>9.2f}"
                f"{r['p99_s'] * 1e3:>9.2f}{r['max_s'] * 1e3:>9.2f}"
                f"  {PHASE_NAMES[phase]}")
        return "\n".join(lines)

    # -- Chrome trace-event export -----------------------------------------

    def chrome_trace(self) -> dict:
        """Trace-event JSON (``chrome://tracing`` / Perfetto format).

        Deterministic by construction: thread ids are assigned by first
        appearance, timestamps come from the sim clock in integer
        microseconds, and records are emitted in recording order — the
        golden test serializes this twice and compares bytes.
        """
        tids: dict[Optional[str], int] = {None: 0}
        trace: list[dict] = []

        def tid(task: Optional[str]) -> int:
            if task not in tids:
                tids[task] = len(tids)
            return tids[task]

        for s in self.spans:
            trace.append({
                "name": s.name, "cat": s.cat, "ph": "X", "pid": 1,
                "tid": tid(s.task),
                "ts": _us(s.start), "dur": max(0, _us(s.end) - _us(s.start)),
                "args": dict(s.attrs),
            })
        for e in self.events:
            trace.append({
                "name": e.name, "cat": e.cat, "ph": "i", "s": "t", "pid": 1,
                "tid": tid(e.task), "ts": _us(e.time),
                "args": dict(e.attrs),
            })
        meta = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "areplica"}}]
        for task, t in tids.items():
            meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": t, "args": {"name": task or "(untasked)"}})
        return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")


class TenantTracer:
    """Zero-state proxy adding a ``tenant`` attribute to each record.

    Only the recording surface (:meth:`span` / :meth:`event`) is
    proxied — engines emit through those two methods alone.  Everything
    else (queries, exports, the cost sink) lives on the underlying
    :class:`Tracer`, exposed via :attr:`base`.
    """

    __slots__ = ("base", "tenant")

    def __init__(self, base: Tracer, tenant: str):
        self.base = base
        self.tenant = tenant

    @property
    def sim(self):
        return self.base.sim

    def span(self, name: str, cat: str, task: Optional[str],
             start: float, end: float, **attrs) -> None:
        attrs.setdefault("tenant", self.tenant)
        self.base.spans.append(Span(name, cat, task, start, end, attrs))

    def event(self, name: str, cat: str, task: Optional[str],
              **attrs) -> None:
        attrs.setdefault("tenant", self.tenant)
        self.base.events.append(
            Event(name, cat, task, self.base.sim.now, attrs))


def _us(t: float) -> int:
    return int(round(t * 1e6))


def _quantile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (deterministic)."""
    n = len(sorted_vals)
    idx = min(n - 1, max(0, int(q * n + 0.5) - 1) if q < 1.0 else n - 1)
    # Nearest-rank keeps the value drawn from the data itself, so the
    # breakdown stays bit-stable across platforms (no interpolation).
    return sorted_vals[idx]
