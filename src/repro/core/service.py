"""The AReplica service facade (§4 overview).

Wires all components end to end for one or more replication rules:

    bucket notification → [SLO-bounded batching] → orchestrator
    → lock / changelog / planner → replication engine → destination

and keeps the user-facing measurement records: for every source PUT or
DELETE, the **replication delay** from the completion of the request to
the successful visibility of that version (or a subsequent one) in the
destination bucket — the paper's §8 metric.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.batching import BatchingBuffer
from repro.core.changelog import ChangelogStore
from repro.core.config import ReplicaConfig, TenantConfig
from repro.core.engine import ReplicationEngine, TaskResult
from repro.core.health import HealthTracker
from repro.core.logger import RuntimeLogger
from repro.core.model import PerformanceModel
from repro.core.planner import StrategyPlanner
from repro.core.profiler import PerformanceProfiler
from repro.core.scheduler import FairShareScheduler
from repro.core.sharding import ShardRouter
from repro.core.tracing import Tracer
from repro.simcloud.cloud import Cloud
from repro.simcloud.cost import TenantLedger, estimate_task_cost
from repro.simcloud.objectstore import Bucket, ObjectEvent

__all__ = ["AReplicaService", "ConvergenceReport", "ReplicationRecord",
           "ReplicationRule", "TenantState"]

_CHANGELOG_TABLE = "areplica-changelog"

#: The per-tenant operational counters (the tenant analogue of the
#: engine stats dict); ``tests/core/test_stats_contract.py`` pins this
#: exact key set, so additions must extend the contract there too.
TENANT_STAT_KEYS = ("admitted", "deferred", "rejected", "fairshare_waits",
                    "shard_migrations")


@dataclass(frozen=True)
class ReplicationRecord:
    """Delay measurement for one source-bucket write."""

    rule_id: str
    key: str
    seq: int
    kind: str                 # "created" | "deleted"
    event_time: float         # completion of the source PUT/DELETE
    visible_time: float       # this or a newer version visible at dst
    plan_n: Optional[int]
    loc_key: Optional[str]
    task_kind: str            # how it was satisfied (created/changelog/deleted)
    #: When the satisfying task began executing its plan (after the
    #: notification); ``visible_time - started`` is the pure T_rep.
    started: float = 0.0

    @property
    def delay(self) -> float:
        return self.visible_time - self.event_time

    @property
    def replication_seconds(self) -> float:
        return self.visible_time - self.started


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of one :meth:`AReplicaService.run_to_convergence` call.

    ``converged`` means every dead-letter queue drained and no task
    remains parked in an outage backlog — the destination holds (or
    will trivially hold) every source version.  A False report carries
    the residuals so the operator sees *what* is still owed instead of
    an opaque exception.
    """

    converged: bool
    #: Dead-letter redrive rounds used.
    rounds: int
    #: Total dead-lettered events re-enqueued across those rounds.
    redriven: int
    #: Dead letters still queued when the loop gave up (0 on success).
    residual_dead_letters: int
    #: Tasks still parked in engine backlogs (0 unless a route is dark).
    parked_backlog: int
    #: High-water mark of the parked backlog across every rule — how
    #: deep the outage (or evacuation) got at its worst.
    backlog_peak: int = 0
    #: Parked tasks re-dispatched over the run (drain progress).
    drained: int = 0
    #: Lock records stranded by a holder that died between finalize and
    #: UNLOCK, reclaimed (lease takeover) by the convergence loop.
    reclaimed_locks: int = 0
    #: Tasks still sitting in tenant budget-deferral lanes when the loop
    #: gave up (0 on success, and always 0 for single-tenant services).
    deferred_tenant_tasks: int = 0

    def render(self) -> str:
        if self.converged:
            extra = (f", {self.reclaimed_locks} lock(s) reclaimed"
                     if self.reclaimed_locks else "")
            return (f"converged after {self.rounds} redrive round(s), "
                    f"{self.redriven} event(s) redriven, backlog peak "
                    f"{self.backlog_peak}, {self.drained} drained{extra}")
        return (f"NOT converged: {self.residual_dead_letters} dead "
                f"letter(s), {self.parked_backlog} parked task(s), "
                f"{self.deferred_tenant_tasks} budget-deferred task(s) "
                f"after {self.rounds} round(s)")


@dataclass
class ReplicationRule:
    """One configured src → dst replication pair."""

    rule_id: str
    src_bucket: Bucket
    dst_bucket: Bucket
    engine: ReplicationEngine
    changelog: ChangelogStore
    batcher: Optional[BatchingBuffer] = None
    outstanding: dict[str, list[tuple[int, float, str]]] = field(default_factory=dict)
    #: Per-key high-water mark of closed measurements: seq -> (seq,
    #: visible_time) of the newest version ever reported visible.  Guards
    #: the measurement ledger against at-least-once delivery: a duplicate
    #: (or reordered straggler) arriving *after* the closing report must
    #: not re-open an entry nobody will ever close again.
    closed: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: Owning tenant for multi-tenant shard rules (None for classic rules).
    tenant: Optional[str] = None
    #: Effective config the rule's engine was built with, when it differs
    #: from the service default (tenant overrides); rebuild_engine honors it.
    config: Optional[ReplicaConfig] = None


@dataclass
class TenantState:
    """Runtime state for one registered tenant."""

    config: TenantConfig
    src_bucket: Bucket
    dst_bucket: Bucket
    ledger: TenantLedger
    #: Operational counters (TENANT_STAT_KEYS).
    stats: dict = field(default_factory=lambda: {k: 0 for k in TENANT_STAT_KEYS})
    #: Budget-deferred notifications parked until the spend window rolls.
    deferred: deque = field(default_factory=deque)
    #: shard index -> rule_id of the lazily created engine worker.
    shard_rules: dict[int, str] = field(default_factory=dict)
    #: True while a window-roll timer is armed for this tenant.
    roll_armed: bool = False


class _Recorder:
    """Engine → service callback adapter for one rule."""

    def __init__(self, service: "AReplicaService", rule_id: str):
        self.service = service
        self.rule_id = rule_id

    def record_visible(self, result: TaskResult) -> None:
        self.service._on_visible(self.rule_id, result)

    def record_abort(self, key: str, etag: str) -> None:
        self.service.aborts.append((self.rule_id, key, etag))


class AReplicaService:
    """Top-level entry point: build once per Cloud, add rules, run."""

    def __init__(self, cloud: Cloud, config: Optional[ReplicaConfig] = None):
        self.cloud = cloud
        self.config = config or ReplicaConfig()
        self.model = PerformanceModel(
            chunk_size=self.config.part_size,
            mc_samples=self.config.mc_samples,
            gumbel_threshold=self.config.gumbel_threshold,
            seed=cloud.rngs.seed,
        )
        self.profiler = PerformanceProfiler(cloud, self.model,
                                            samples=self.config.profile_samples)
        self.health: Optional[HealthTracker] = None
        if self.config.health_enabled:
            self.health = HealthTracker(
                clock=lambda: cloud.sim.now,
                schedule=cloud.sim.call_later,
                config=self.config.breaker,
            )
            cloud.set_health(self.health)
        #: Optional causal tracer (ReplicaConfig.tracing_enabled); wired
        #: into every substrate via the cloud, mirroring set_health.
        self.tracer: Optional[Tracer] = None
        if self.config.tracing_enabled:
            self.tracer = Tracer(cloud.sim)
            cloud.set_tracer(self.tracer)
        self.planner = StrategyPlanner(self.model, self.config,
                                       health=self.health)
        self.planner.tracer = self.tracer
        self.logger = RuntimeLogger(self.model)
        self.rules: dict[str, ReplicationRule] = {}
        self.records: list[ReplicationRecord] = []
        self.aborts: list[tuple[str, str, str]] = []
        self._rule_seq = itertools.count(1)
        # -- multi-tenancy (all None/empty until enable_multitenancy();
        # the single-tenant paths never consult them beyond `is None` /
        # truthiness checks, keeping the default build byte-identical).
        self.tenants: dict[str, TenantState] = {}
        self.scheduler: Optional[FairShareScheduler] = None
        self.shard_router: Optional[ShardRouter] = None
        #: Planner clones keyed by tenant override signature (tenants
        #: without overrides share self.planner and its PlanCache).
        self._tenant_planners: dict[tuple, StrategyPlanner] = {}
        #: Closed-loop SLO controller (ReplicaConfig.enable_autopilot).
        #: Construction is side-effect free; nothing runs until
        #: ``service.autopilot.start(duration_s)`` arms the tick loop,
        #: so the disabled default stays byte-invisible.
        self.autopilot = None
        if self.config.enable_autopilot:
            from repro.core.autopilot import Autopilot
            self.autopilot = Autopilot(self)

    # -- rule management ---------------------------------------------------------

    def add_rule(self, src_bucket: Bucket, dst_bucket: Bucket,
                 scheduling: str = "pool",
                 profile: bool = True,
                 rule_id: Optional[str] = None,
                 connect: bool = True,
                 config: Optional[ReplicaConfig] = None,
                 tenant: Optional[str] = None) -> ReplicationRule:
        """Configure replication from ``src_bucket`` to ``dst_bucket``.

        ``profile=True`` (the default) runs the offline profiler for
        both candidate execution locations before the rule goes live —
        the paper's onboarding step.  Pass False when the model has
        already been fitted (e.g. shared across rules on one path).

        The remaining keywords exist for the multi-tenant shard layer
        (``_tenant_rule``): an explicit ``rule_id`` names the per-shard
        lock domain, ``connect=False`` skips the notification hookup
        (the tenant router delivers admitted events directly),
        ``config`` applies a tenant's effective ReplicaConfig, and
        ``tenant`` tags the engine (scoped tracer + fair-share lane).
        """
        if rule_id is None:
            rule_id = f"rule{next(self._rule_seq)}"
        cfg = config or self.config
        if profile:
            self.profiler.ensure_path(src_bucket.region.key, src_bucket, dst_bucket)
            if dst_bucket.region.key != src_bucket.region.key:
                self.profiler.ensure_path(dst_bucket.region.key, src_bucket,
                                          dst_bucket)
        # Tenant rules get a tenant-suffixed changelog table: the shared
        # table is keyed by object key, and two tenants may legitimately
        # reuse key names without sharing deltas.
        changelog_table = (_CHANGELOG_TABLE if tenant is None
                           else f"{_CHANGELOG_TABLE}-{tenant}")
        changelog = ChangelogStore(
            self.cloud.kv_table(src_bucket.region.key, changelog_table)
        )
        engine = ReplicationEngine(
            self.cloud, cfg, src_bucket, dst_bucket,
            self._planner_for(cfg),
            changelog=changelog if cfg.enable_changelog else None,
            recorder=_Recorder(self, rule_id), rule_id=rule_id,
            scheduling=scheduling, health=self.health,
            scheduler=self.scheduler if tenant is not None else None,
            tenant=tenant,
        )
        if self.tracer is not None:
            engine.set_tracer(self.tracer if tenant is None
                              else self.tracer.scoped(tenant))
        rule = ReplicationRule(rule_id, src_bucket, dst_bucket, engine,
                               changelog, tenant=tenant, config=config)
        if cfg.slo_enabled and cfg.enable_batching:
            rule.batcher = BatchingBuffer(
                self.cloud.sim,
                self.cloud.timers(src_bucket.region.key),
                cfg,
                src_bucket,
                estimate_s=self._estimate_replication_time(rule),
                flush=engine.handle_event,
            )
        self.rules[rule_id] = rule
        if connect:
            self.cloud.notifications.connect(
                src_bucket, lambda event, r=rule: self._on_event(r, event)
            )
        return rule

    def _planner_for(self, cfg: ReplicaConfig) -> StrategyPlanner:
        """The shared planner, or a clone for a divergent tenant config.

        Planning knobs (cost cap, strategy toggles, degraded-routing
        policy) live on the config, so tenants with overrides need their
        own StrategyPlanner; clones are cached by override signature so
        a thousand tenants sharing three profiles build three planners.
        """
        if cfg is self.config:
            return self.planner
        key = tuple(sorted(
            (f, repr(getattr(cfg, f))) for f in cfg.__dataclass_fields__))
        planner = self._tenant_planners.get(key)
        if planner is None:
            planner = StrategyPlanner(self.model, cfg, health=self.health)
            planner.tracer = self.tracer
            self._tenant_planners[key] = planner
        return planner

    def rebuild_engine(self, rule_id: str) -> ReplicationEngine:
        """Tear down a rule's engine and rebuild it in place (rolling
        restart / upgrade, core/lifecycle.py).

        The old engine is detached (health subscription dropped, its
        in-memory backlog surrendered to the durable mirror) and a new
        engine is constructed with identical wiring: ``kv_table`` is
        cached per (region, name) so the replacement re-attaches to the
        same lock table, done markers, and ``backlog:`` mirror, and
        FaaS ``deploy`` overwrites by name so in-flight platform
        retries and DLQ redrives hit the *new* deployment.  Monotonic
        counters carry over via :meth:`ReplicationEngine.adopt_counters`.
        The caller restores control-plane state afterwards by driving
        ``new_engine.restore_control_plane()``.
        """
        rule = self.rules[rule_id]
        old = rule.engine
        old.detach()
        cfg = rule.config or self.config
        engine = ReplicationEngine(
            self.cloud, cfg, rule.src_bucket, rule.dst_bucket,
            self._planner_for(cfg),
            changelog=rule.changelog if cfg.enable_changelog else None,
            recorder=_Recorder(self, rule_id), rule_id=rule_id,
            scheduling=old.scheduling, health=self.health,
            scheduler=self.scheduler if rule.tenant is not None else None,
            tenant=rule.tenant,
        )
        engine.adopt_counters(old)
        if self.tracer is not None:
            engine.set_tracer(self.tracer if rule.tenant is None
                              else self.tracer.scoped(rule.tenant))
        rule.engine = engine
        if rule.batcher is not None:
            rule.batcher.flush = engine.handle_event
        return engine

    def _estimate_replication_time(self, rule: ReplicationRule):
        src = rule.src_bucket.region.key
        dst = rule.dst_bucket.region.key
        planner = self._planner_for(rule.config or self.config)

        def estimate(size: int) -> float:
            # Power-of-two size bucketing keeps the batcher's estimate
            # queries coarse; the planner's PlanCache (which also sees
            # drift invalidations, unlike a local dict) does the rest.
            bucket = max(1, 1 << (max(0, size - 1)).bit_length())
            return planner.fastest(bucket, src, dst).predicted_s

        return estimate

    # -- multi-tenancy -----------------------------------------------------------

    def enable_multitenancy(self, shards: int = 1, max_concurrent: int = 64,
                            quantum: float = 1.0, vnodes: int = 64) -> None:
        """Switch the service into multi-tenant mode.

        Builds the fair-share dispatch scheduler and the consistent-hash
        shard router; must run before the first :meth:`add_tenant`.
        Classic :meth:`add_rule` rules are unaffected (they never pass
        through the scheduler or the router).
        """
        if self.tenants:
            raise RuntimeError("enable_multitenancy must precede add_tenant")
        self.scheduler = FairShareScheduler(
            self.cloud.sim, max_concurrent=max_concurrent, quantum=quantum)
        self.shard_router = ShardRouter(shards, vnodes=vnodes)

    def add_tenant(self, config: TenantConfig, src_bucket: Bucket,
                   dst_bucket: Bucket) -> TenantState:
        """Register a tenant: budget ledger, fair-share lane, buckets.

        Engine workers are created lazily, one per (tenant, shard) on
        the first admitted event routed there — a thousand mostly idle
        tenants cost a dict entry each, not a thousand engines.
        """
        if self.shard_router is None:
            self.enable_multitenancy()
        tid = config.tenant_id
        if tid in self.tenants:
            raise ValueError(f"duplicate tenant {tid!r}")
        state = TenantState(
            config=config, src_bucket=src_bucket, dst_bucket=dst_bucket,
            ledger=TenantLedger(tid, budget_usd=config.budget_usd,
                                window_s=config.budget_window_s),
        )
        self.tenants[tid] = state
        self.scheduler.add_tenant(tid, weight=config.weight,
                                  stats=state.stats)
        self.cloud.notifications.connect(
            src_bucket, lambda event, s=state: self._on_tenant_event(s, event)
        )
        return state

    def _tenant_config(self, state: TenantState) -> Optional[ReplicaConfig]:
        """The tenant's effective ReplicaConfig, or None when it matches
        the service default (so shard rules share self.config/planner)."""
        if not state.config.config_overrides:
            return None
        return state.config.effective_config(self.config)

    def _tenant_rule(self, state: TenantState, shard: int) -> ReplicationRule:
        rule_id = state.shard_rules.get(shard)
        if rule_id is not None:
            return self.rules[rule_id]
        tid = state.config.tenant_id
        rule = self.add_rule(
            state.src_bucket, state.dst_bucket,
            profile=False, rule_id=f"{tid}-s{shard}", connect=False,
            config=self._tenant_config(state), tenant=tid,
        )
        state.shard_rules[shard] = rule.rule_id
        return rule

    def _on_tenant_event(self, state: TenantState, event: ObjectEvent) -> None:
        """Admission control at the front door (first delivery of a
        notification — retriggers and redrives inside the engine re-use
        the already-charged task, so the charge happens exactly here)."""
        tid = state.config.tenant_id
        now = self.cloud.sim.now
        ledger = state.ledger
        ledger.sync(now)
        if ledger.exhausted:
            task = f"{tid}:{event.key}:{event.sequencer}:{event.kind}"
            if state.config.exhausted_policy == "reject":
                state.stats["rejected"] += 1
                if self.tracer is not None:
                    self.tracer.event("admission-reject", "tenant", task,
                                      tenant=tid, key=event.key,
                                      window=ledger.window_index)
                return
            state.stats["deferred"] += 1
            state.deferred.append(event)
            if self.tracer is not None:
                self.tracer.event("admission-defer", "tenant", task,
                                  tenant=tid, key=event.key,
                                  window=ledger.window_index,
                                  lane_depth=len(state.deferred))
            self._arm_window_roll(state)
            return
        # Admission charges the planner-independent cost floor for the
        # task (egress + request fees + one orchestrator invocation);
        # the metered CostLedger remains the billing ground truth.
        estimate = estimate_task_cost(
            self.cloud.prices, state.src_bucket.region,
            state.dst_bucket.region, event.size)
        ledger.charge(now, estimate,
                      detail=f"{event.key}:{event.sequencer}:{event.kind}")
        state.stats["admitted"] += 1
        shard = self.shard_router.route(tid, event.key)
        self._on_event(self._tenant_rule(state, shard), event)

    def _arm_window_roll(self, state: TenantState) -> None:
        """Arm a timer at the next budget-window boundary (only while
        deferred work exists — idle tenants leave no timer chains)."""
        if state.roll_armed:
            return
        state.roll_armed = True
        ledger = state.ledger
        target = ledger.window_of(self.cloud.sim.now) + 1
        self.cloud.sim.call_at(
            target * ledger.window_s,
            lambda: self._roll_tenant_window(state, target))

    def _roll_tenant_window(self, state: TenantState, target: int) -> None:
        state.roll_armed = False
        ledger = state.ledger
        ledger.sync(self.cloud.sim.now)
        if ledger.window_index < target:
            # Float boundary rounding left us a hair before the window;
            # the timer fired for `target`, so roll to it explicitly.
            ledger.roll(target)
        if self.tracer is not None:
            self.tracer.event("budget-window-roll", "tenant",
                              f"{state.config.tenant_id}:window:{target}",
                              tenant=state.config.tenant_id,
                              window=ledger.window_index,
                              lane_depth=len(state.deferred))
        pending = list(state.deferred)
        state.deferred.clear()
        # Re-run admission in arrival order: a fresh window always admits
        # at least one task (spend 0 < budget), so the lane drains even
        # when the budget is below a single task's estimate; whatever
        # re-defers re-arms the next boundary.
        for event in pending:
            self._on_tenant_event(state, event)

    def set_shard_count(self, shards: int) -> int:
        """Rebalance the key-space onto ``shards`` engine workers.

        Live assignments that move shards are counted into each tenant's
        ``shard_migrations``; replication idempotency (locks + done
        markers per object) makes a mid-run move safe — at worst the new
        shard's engine re-checks a done marker.  Returns total moves.
        """
        if self.shard_router is None:
            raise RuntimeError("multitenancy is not enabled")
        moved = self.shard_router.rebalance(shards)
        total = 0
        for tid, count in moved.items():
            total += count
            if tid in self.tenants:
                self.tenants[tid].stats["shard_migrations"] += count
        return total

    def deferred_count(self) -> int:
        """Tasks parked in tenant budget-deferral lanes."""
        return sum(len(s.deferred) for s in self.tenants.values())

    def tenant_rules(self, tenant_id: str) -> list[ReplicationRule]:
        state = self.tenants[tenant_id]
        return [self.rules[rid] for rid in sorted(state.shard_rules.values())]

    def tenant_summary(self) -> dict:
        """Per-tenant verdict block: counters, spend, SLO, convergence."""
        out = {}
        for tid in sorted(self.tenants):
            state = self.tenants[tid]
            rules = self.tenant_rules(tid)
            rule_ids = {r.rule_id for r in rules}
            delays = [r.delay for r in self.records if r.rule_id in rule_ids]
            pending = sum(len(v) for r in rules for v in r.outstanding.values())
            parked = sum(r.engine.backlog_size() for r in rules)
            slo = state.config.slo_target_s
            p99 = float(np.quantile(np.asarray(delays), 0.99)) if delays \
                else 0.0
            out[tid] = {
                **state.stats,
                "shards": len(rules),
                "events": len(delays),
                "pending": pending,
                "parked": parked,
                "deferred_lane": len(state.deferred),
                "window_spent_usd": state.ledger.window_spent,
                "lifetime_spent_usd": state.ledger.lifetime_spent,
                "budget_usd": state.config.budget_usd,
                "over_admissions": state.ledger.over_admissions(),
                "converged": (pending == 0 and parked == 0
                              and not state.deferred),
                "delay_p99_s": p99,
                "slo_target_s": slo,
                "slo_ok": slo <= 0 or p99 <= slo,
            }
        return out

    # -- event & measurement flow ----------------------------------------------------

    def _on_event(self, rule: ReplicationRule, event: ObjectEvent) -> None:
        if self.tracer is not None:
            # The paper's N phase: source write completion → delivery of
            # the notification at the service (Fig 18-19's first bar).
            task = (f"{rule.rule_id}:{event.key}:{event.sequencer}:"
                    f"{event.kind}")
            self.tracer.span("N", "phase", task, event.event_time,
                             self.cloud.sim.now, key=event.key,
                             seq=event.sequencer, kind=event.kind)
        closed = rule.closed.get(event.key)
        if closed is not None and event.sequencer <= closed[0]:
            # A newer (or this very) version is already visible at the
            # destination: this delivery is a duplicate or a reordered
            # straggler.  Its measurement closed the moment that version
            # landed — record it as satisfied rather than re-opening it.
            if self.tracer is not None:
                self.tracer.event(
                    "duplicate-delivery", "engine",
                    f"{rule.rule_id}:{event.key}:{event.sequencer}:"
                    f"{event.kind}",
                    key=event.key, seq=event.sequencer, kind=event.kind)
            self.records.append(ReplicationRecord(
                rule_id=rule.rule_id, key=event.key, seq=event.sequencer,
                kind=event.kind, event_time=event.event_time,
                visible_time=max(closed[1], event.event_time),
                plan_n=None, loc_key=None, task_kind="duplicate-delivery",
                started=event.event_time,
            ))
        else:
            rule.outstanding.setdefault(event.key, []).append(
                (event.sequencer, event.event_time, event.kind)
            )
        if rule.batcher is not None:
            rule.batcher.on_event(event)
        else:
            rule.engine.handle_event(event)

    def _on_visible(self, rule_id: str, result: TaskResult) -> None:
        rule = self.rules[rule_id]
        prev = rule.closed.get(result.key)
        if prev is None or result.seq > prev[0]:
            rule.closed[result.key] = (result.seq, result.visible_time)
        waiting = rule.outstanding.get(result.key, [])
        satisfied = [w for w in waiting if w[0] <= result.seq]
        remaining = [w for w in waiting if w[0] > result.seq]
        if remaining:
            rule.outstanding[result.key] = remaining
        else:
            # Drop drained keys: pending_count() and the monitor's
            # backlog probe iterate this dict, and empty lists would
            # accumulate one per key ever written.
            rule.outstanding.pop(result.key, None)
        for seq, event_time, kind in satisfied:
            self.records.append(ReplicationRecord(
                rule_id=rule_id, key=result.key, seq=seq, kind=kind,
                event_time=event_time, visible_time=result.visible_time,
                plan_n=result.plan.n if result.plan else None,
                loc_key=result.plan.loc_key if result.plan else None,
                task_kind=result.kind,
                started=result.started,
            ))
        if result.plan is not None and result.plan.predicted_median_s > 0:
            self.logger.record(
                result.plan.path, result.plan.n, 0,
                predicted_s=result.plan.predicted_median_s,
                actual_s=max(1e-9, result.visible_time - result.started),
                time=result.visible_time,
            )

    # -- inspection helpers ---------------------------------------------------------

    def delays(self, rule_id: Optional[str] = None) -> list[float]:
        return [r.delay for r in self.records
                if rule_id is None or r.rule_id == rule_id]

    def pending_count(self) -> int:
        """Source writes not yet visible at their destination."""
        return sum(len(v) for rule in self.rules.values()
                   for v in rule.outstanding.values())

    def backlog_count(self) -> int:
        """Tasks parked across every rule's outage backlog."""
        return sum(rule.engine.backlog_size() for rule in self.rules.values())

    def backlog_peak(self) -> int:
        """High-water mark of the parked backlog across every rule."""
        return sum(rule.engine.backlog_peak for rule in self.rules.values())

    def drained_count(self) -> int:
        """Parked tasks re-dispatched (drained) across every rule."""
        return sum(rule.engine.stats.get("drained", 0)
                   for rule in self.rules.values())

    def health_snapshot(self) -> dict:
        """Per-target breaker state, empty when health is disabled."""
        return self.health.snapshot() if self.health is not None else {}

    def integrity_snapshot(self) -> dict:
        """End-to-end integrity counters across every rule and platform.

        ``injected`` is the chaos layer's ground truth; the remaining
        counters are the defense's response — a corruption drill
        asserts the two sides reconcile (nothing injected goes both
        undetected and visible).
        """
        snap = {"injected": self.cloud.corruption_injected(),
                "corrupt_detected": 0, "retransfers": 0, "quarantined": 0,
                "finalize_verify_failed": 0, "quarantined_dead_letters": 0}
        for rule in self.rules.values():
            stats = rule.engine.stats
            for key in ("corrupt_detected", "retransfers", "quarantined",
                        "finalize_verify_failed"):
                snap[key] += stats.get(key, 0)
        regions = set()
        for rule in self.rules.values():
            regions.add(rule.src_bucket.region.key)
            regions.add(rule.dst_bucket.region.key)
        snap["quarantined_dead_letters"] = sum(
            self.cloud.faas(r).quarantined_dead_letters for r in regions)
        return snap

    def run_until_quiet(self, max_time: Optional[float] = None) -> None:
        """Drain the simulation (bounded by ``max_time`` if given)."""
        self.cloud.run(until=max_time)

    def summary(self) -> dict:
        """Operational snapshot: replication counts, delay percentiles,
        and the metered cost so far."""
        delays = np.asarray(self.delays()) if self.records else np.array([])
        quantile = (lambda q: float(np.quantile(delays, q))) if delays.size \
            else (lambda q: float("nan"))
        if self.tenants:
            # Tenant keys appear only in multi-tenant mode, keeping the
            # single-tenant summary (and its golden hashes) untouched.
            agg = {k: 0 for k in TENANT_STAT_KEYS}
            for state in self.tenants.values():
                for k in TENANT_STAT_KEYS:
                    agg[k] += state.stats[k]
            return {
                "tenants": len(self.tenants),
                "shards": self.shard_router.shards,
                "deferred_lane": self.deferred_count(),
                "scheduler_in_flight": self.scheduler.in_flight,
                "scheduler_pending": self.scheduler.pending(),
                "scheduler_dispatched": self.scheduler.total_dispatched,
                **agg,
                **self._base_summary(delays, quantile),
            }
        return self._base_summary(delays, quantile)

    def _base_summary(self, delays, quantile) -> dict:
        return {
            "rules": len(self.rules),
            "replicated_events": len(self.records),
            "pending_events": self.pending_count(),
            "aborts": len(self.aborts),
            "delay_p50_s": quantile(0.5),
            "delay_p99_s": quantile(0.99),
            "delay_p9999_s": quantile(0.9999),
            "delay_max_s": float(delays.max()) if delays.size else float("nan"),
            "total_cost_usd": self.cloud.ledger.total(),
            "cost_breakdown": self.cloud.ledger.breakdown(),
            "plans_generated": self.planner.plans_generated,
            "degraded_plans": self.planner.degraded_plans,
            "parked_backlog": self.backlog_count(),
            "parked_backlog_peak": self.backlog_peak(),
            "drained_tasks": self.drained_count(),
            "plan_cache_hits": self.planner.cache.hits,
            "plan_cache_misses": self.planner.cache.misses,
            "model_corrections": sum(
                self.logger.corrections(p) for p in self.model.path_params),
            "integrity": self.integrity_snapshot(),
        }

    def redrive_dead_letters(self) -> int:
        """Re-enqueue dead-lettered function events on every platform a
        rule touches — the recovery step after an outage that outlasted
        the platforms' automatic retries (§6)."""
        regions = set()
        for rule in self.rules.values():
            regions.add(rule.src_bucket.region.key)
            regions.add(rule.dst_bucket.region.key)
        return sum(self.cloud.faas(r).redrive_dead_letters() for r in regions)

    def _dead_letter_count(self) -> int:
        regions = set()
        for rule in self.rules.values():
            regions.add(rule.src_bucket.region.key)
            regions.add(rule.dst_bucket.region.key)
        return sum(len(self.cloud.faas(r).dead_letters) for r in regions)

    def run_to_convergence(self, max_redrives: int = 10) -> ConvergenceReport:
        """Drain the simulation, redriving dead letters until none remain.

        Tasks that exhausted their platform retries during a fault storm
        land in per-region DLQs; an operator (here: this loop) redrives
        them once the storm passes and the retried task — re-entering
        its own lock reentrantly — converges the object.  Returns a
        :class:`ConvergenceReport`; a run whose DLQs refuse to drain
        within ``max_redrives`` rounds (or whose backlog stays parked
        behind a still-open circuit) reports ``converged=False`` with
        the residuals rather than raising — the caller decides whether
        a degraded-but-intact state is an error.
        """
        self.cloud.run()
        rounds = 0
        redriven = 0
        reclaimed = 0
        while rounds < max_redrives:
            n = self.redrive_dead_letters()
            if n > 0:
                redriven += n
            else:
                # DLQs are empty but a lock record may have survived
                # quiescence: its holder died between finalize and
                # UNLOCK, stranding any pending version registered on
                # it.  Reclaim (lease takeover) and keep draining.
                n = sum(rule.engine.reclaim_stranded_locks()
                        for rule in self.rules.values())
                reclaimed += n
            if n == 0:
                break
            rounds += 1
            self.cloud.run()
        residual = self._dead_letter_count()
        parked = self.backlog_count()
        deferred = self.deferred_count()
        return ConvergenceReport(
            converged=residual == 0 and parked == 0 and deferred == 0,
            rounds=rounds, redriven=redriven,
            residual_dead_letters=residual, parked_backlog=parked,
            backlog_peak=self.backlog_peak(), drained=self.drained_count(),
            reclaimed_locks=reclaimed, deferred_tenant_tasks=deferred,
        )
