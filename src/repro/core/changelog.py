"""Changelog propagation (§5.4).

Object storage only sees opaque PUTs, so an object created by copying,
concatenating, appending to, or partially updating *existing* objects
is indistinguishable from fresh data and would normally be replicated
in full.  AReplica lets the user program (or an automated program
analysis) record a **changelog hint** describing how the new version
was derived.  When the orchestrator finds a changelog matching the
created version's ETag, it ships only the changelog to the destination
region, where an applier function reconstructs the object from data
already present there — near-zero cross-cloud traffic for COPY/CONCAT
and tail-only traffic for APPEND/PATCH.

Every changelog carries the ETags of its source objects.  The applier
verifies each ETag against the destination bucket before applying
(AReplica may have already replicated a *newer* version of a source);
on any mismatch the changelog is inapplicable and the engine falls
back to full replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.simcloud.kvstore import KvTable

__all__ = ["ChangelogOp", "ChangelogEntry", "ChangelogStore", "ChangelogNotApplicable"]


class ChangelogNotApplicable(RuntimeError):
    """Destination state does not match the changelog's preconditions."""


class ChangelogOp:
    """Operations a changelog can describe."""

    COPY = "copy"        # dst_key := src_key
    CONCAT = "concat"    # dst_key := src_keys[0] + src_keys[1] + ...
    APPEND = "append"    # key := key + new tail bytes
    PATCH = "patch"      # key := key with a byte range overwritten


@dataclass(frozen=True)
class ChangelogEntry:
    """One recorded derivation hint.

    Attributes
    ----------
    op: one of :class:`ChangelogOp`.
    key: the object the hint describes (the newly created version).
    etag: ETag of the new version — the lookup key, ensuring a hint is
        only ever applied to the exact version it describes.
    sources: (source key, expected source ETag) pairs that must already
        exist at the destination.
    data_offset / data_length: for APPEND/PATCH, the byte range of the
        *new* version that contains fresh bytes (fetched from the
        source region; everything else is reused at the destination).
    """

    op: str
    key: str
    etag: str
    sources: tuple[tuple[str, str], ...] = ()
    data_offset: int = 0
    data_length: int = 0

    @property
    def fresh_bytes(self) -> int:
        """Bytes that must still cross the WAN when this hint applies."""
        return self.data_length


class ChangelogStore:
    """Per-bucket changelog hints in a serverless KV table."""

    def __init__(self, table: KvTable):
        self.table = table
        self.recorded = 0

    @staticmethod
    def _key(obj_key: str, etag: str) -> str:
        return f"clog:{obj_key}:{etag}"

    # -- recording (called by the user program as the hint API) ------------

    def record(self, entry: ChangelogEntry):
        """Process: persist a hint (one KV write)."""
        self.recorded += 1
        yield self.table.put_item(
            self._key(entry.key, entry.etag),
            {
                "op": entry.op,
                "key": entry.key,
                "etag": entry.etag,
                "sources": [list(s) for s in entry.sources],
                "data_offset": entry.data_offset,
                "data_length": entry.data_length,
            },
        )

    def record_copy(self, src_key: str, src_etag: str, dst_key: str,
                    dst_etag: str):
        """Hint: ``dst_key`` was created by copying ``src_key``."""
        return self.record(ChangelogEntry(
            ChangelogOp.COPY, dst_key, dst_etag, ((src_key, src_etag),),
        ))

    def record_concat(self, sources: list[tuple[str, str]], dst_key: str,
                      dst_etag: str):
        """Hint: ``dst_key`` concatenates existing objects."""
        return self.record(ChangelogEntry(
            ChangelogOp.CONCAT, dst_key, dst_etag, tuple(sources),
        ))

    def record_append(self, key: str, old_etag: str, new_etag: str,
                      old_size: int, new_size: int):
        """Hint: ``key`` gained ``new_size - old_size`` tail bytes."""
        return self.record(ChangelogEntry(
            ChangelogOp.APPEND, key, new_etag, ((key, old_etag),),
            data_offset=old_size, data_length=new_size - old_size,
        ))

    def record_patch(self, key: str, old_etag: str, new_etag: str,
                     offset: int, length: int):
        """Hint: ``key`` had bytes ``[offset, offset+length)`` rewritten."""
        return self.record(ChangelogEntry(
            ChangelogOp.PATCH, key, new_etag, ((key, old_etag),),
            data_offset=offset, data_length=length,
        ))

    # -- lookup (called by the orchestrator) ---------------------------------

    def lookup(self, obj_key: str, etag: str):
        """Process: fetch the hint for an exact (key, version); or None."""
        item = yield self.table.get_item(self._key(obj_key, etag))
        if item is None:
            return None
        return ChangelogEntry(
            op=item["op"],
            key=item["key"],
            etag=item["etag"],
            sources=tuple((k, e) for k, e in item["sources"]),
            data_offset=item["data_offset"],
            data_length=item["data_length"],
        )
