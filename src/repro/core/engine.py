"""The variability-tolerant replication engine (§5.1, §5.2).

Implements the four-stage serverless replication workflow of Fig 11:
the cloud notification invokes an **orchestrator** function in the
source region; the orchestrator acquires the object's replication lock,
consults the changelog store, asks the strategy planner for an
SLO-compliant plan, and then either

* replicates the object **inline** (small objects — ``T_func = 0``),
* invokes a single **replicator** function at the chosen region, or
* creates a shared part pool and invokes ``n`` replicators that claim
  8 MB parts from it autonomously (Algorithm 1), assembling the
  destination object through a multipart upload.

Consistency (§5.2): per-object replication locks serialize concurrent
tasks (Algorithm 2); each part download is validated against the task's
ETag and any mismatch aborts the task — exactly one replicator performs
the cleanup and re-triggers replication of the newest version.  A
``done`` marker per key makes re-triggered orchestrations idempotent.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from types import GeneratorType
from typing import Optional, Protocol

from repro.core.changelog import ChangelogOp, ChangelogStore
from repro.core.config import ReplicaConfig
from repro.core.health import BreakerState, HealthTracker, NoRouteAvailable
from repro.core.locks import ReplicationLockManager
from repro.core.partpool import FairAssignment, PartPool
from repro.core.planner import Plan, StrategyPlanner
from repro.simcloud.cloud import Cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.kvstore import Throttled
from repro.simcloud.monitoring import TimeSeries
from repro.simcloud.sim import Interrupt
from repro.simcloud.objectstore import (
    Bucket,
    NoSuchKey,
    NoSuchUpload,
    ObjectEvent,
    ObjectVersion,
)

__all__ = ["ReplicationEngine", "TaskRecorder", "TaskResult",
           "PartQuarantined"]

_STATE_TABLE = "areplica-state"


class PartQuarantined(RuntimeError):
    """A transfer failed checksum verification past the retransfer budget.

    Platform retries would re-run the whole attempt against the same
    poisoned transfer, so the failure escalates straight to the
    dead-letter queue: the FaaS layer reads ``dlq_disposition`` off the
    error and skips its auto-retry ladder for this class.
    """

    dlq_disposition = "corrupted"


@dataclass(frozen=True)
class TaskResult:
    """Summary of one completed replication task."""

    key: str
    etag: str
    seq: int
    event_time: float
    visible_time: float
    plan: Optional[Plan]
    kind: str = "created"          # "created" | "deleted" | "changelog"
    #: When the orchestrator began executing the plan (i.e. after the
    #: notification and planning) — the reference point the performance
    #: model's T_rep prediction is measured from.
    started: float = 0.0

    @property
    def delay(self) -> float:
        return self.visible_time - self.event_time


class TaskRecorder(Protocol):
    """Callbacks the engine uses to report task outcomes."""

    def record_visible(self, result: TaskResult) -> None: ...

    def record_abort(self, key: str, etag: str) -> None: ...


class _NullRecorder:
    def record_visible(self, result: TaskResult) -> None:  # pragma: no cover
        pass

    def record_abort(self, key: str, etag: str) -> None:  # pragma: no cover
        pass


class ReplicationEngine:
    """One replication rule: ``src_bucket`` → ``dst_bucket``."""

    def __init__(
        self,
        cloud: Cloud,
        config: ReplicaConfig,
        src_bucket: Bucket,
        dst_bucket: Bucket,
        planner: StrategyPlanner,
        changelog: Optional[ChangelogStore] = None,
        recorder: Optional[TaskRecorder] = None,
        rule_id: str = "r0",
        scheduling: str = "pool",
        health: Optional[HealthTracker] = None,
        scheduler=None,
        tenant: Optional[str] = None,
    ):
        if scheduling not in ("pool", "fair"):
            raise ValueError("scheduling must be 'pool' or 'fair'")
        self.cloud = cloud
        self.config = config
        self.src_bucket = src_bucket
        self.dst_bucket = dst_bucket
        self.planner = planner
        self.changelog = changelog
        self.recorder: TaskRecorder = recorder or _NullRecorder()
        self.rule_id = rule_id
        self.scheduling = scheduling
        #: Optional multi-tenant wiring: a fair-share dispatch scheduler
        #: (core/scheduler.py) gating orchestrator concurrency, and the
        #: owning tenant's id.  Both default to None — the single-tenant
        #: dispatch path stays one ``is None`` check, byte-identical to
        #: a build without tenancy.
        self.scheduler = scheduler
        self.tenant = tenant
        self._task_seq = itertools.count(1)
        #: Per-(task, worker) instrumentation for the scheduling ablation
        #: (Fig 17): parts replicated and busy span of each instance.
        self.worker_parts: dict[tuple[str, int], int] = {}
        self.worker_spans: dict[tuple[str, int], tuple[float, float]] = {}
        self.stats = {
            "tasks": 0, "inline": 0, "single": 0, "distributed": 0,
            "changelog_applied": 0, "changelog_fallback": 0, "aborted": 0,
            "deferred": 0, "skipped_done": 0, "deletes": 0, "retriggered": 0,
            "lock_lost": 0, "orphaned_uploads": 0,
            "kv_retries": 0, "kv_retry_exhausted": 0, "kv_retry_deadline": 0,
            "parked": 0, "drained": 0, "probes": 0, "failover": 0,
            "backlog_kv_failed": 0,
            "corrupt_detected": 0, "retransfers": 0, "quarantined": 0,
            "finalize_verify_failed": 0,
            "hedges": 0, "hedge_wins": 0, "hedge_losses": 0,
            "hedge_cancelled": 0,
            # Planned-operations lifecycle counters (core/lifecycle.py):
            # cordons applied, in-flight parts gracefully drained during
            # an evacuation, tasks migrated to the surviving platform,
            # control-plane checkpoints written, switchovers performed.
            "cordons": 0, "drained_parts": 0, "migrated_tasks": 0,
            "checkpoints": 0, "switchovers": 0,
        }
        # -- speculative hedging state (tail-latency straggler cloning) ----
        #: Trailing per-part completion durations in seconds — the
        #: sample feed for the windowed-percentile hedge deadline.
        #: Recorded only while hedging is enabled, so the disabled path
        #: stays byte-identical to a build without hedging.
        self._hedge_samples = TimeSeries(f"hedge-samples:{rule_id}")
        self._hedge_seq = itertools.count(1)
        #: Live clone transfer bodies keyed by (task_id, part, seq); the
        #: hedge coordinator cancels the losing side in flight through
        #: this registry (an O(1) interrupt on the timer-wheel kernel).
        self._hedge_live: dict[tuple, object] = {}
        self.retry_policy = config.retry_policy
        # Backoff jitter draws on a dedicated stream: retry timing for a
        # given seed must not shift with unrelated sampling.
        self._retry_rng = cloud.rngs.stream(f"retry:{rule_id}")
        # Control state lives in serverless databases, matching §7:
        # locks + done markers beside the orchestrator (source region),
        # part pools beside the replicators (execution region).  State is
        # namespaced per rule — two rules replicating the same source
        # bucket to different destinations are independent tasks.
        self._lock_table = cloud.kv_table(src_bucket.region.key,
                                          f"{_STATE_TABLE}-{rule_id}")
        self.locks = ReplicationLockManager(self._lock_table)
        #: Optional causal tracer (installed via :meth:`set_tracer`);
        #: every emission site below guards on one attribute read so
        #: the disabled path stays free.
        self.tracer = None
        #: Experiment hook: force every task onto (n, loc_key) instead of
        #: consulting the planner (the ablation studies pin strategies).
        self.forced_plan: Optional[tuple[int, str]] = None
        self._orch_name = f"areplica-orch-{rule_id}"
        self._rep_name = f"areplica-rep-{rule_id}"
        self._applier_name = f"areplica-apply-{rule_id}"
        # -- outage-aware degradation state --------------------------------
        #: Substrate-health ledger; None disables degraded routing
        #: entirely (every check below gates on it).
        self.health = health
        #: Tasks whose every route was dark when they arrived, FIFO.
        #: The in-memory deque is the operational queue; each entry is
        #: also mirrored (best-effort) into the durable lock table under
        #: ``backlog:`` so an operator can reconstruct it after a
        #: process loss — the anti-entropy scanner backstops the rest.
        self._backlog: deque[tuple[int, dict]] = deque()
        #: Next backlog id — a plain integer (not itertools.count) so a
        #: control-plane checkpoint can record it and a rebuilt engine
        #: can resume the id space without collisions.
        self._backlog_next = 1
        #: Backlog ids already re-dispatched; a post-restart restore
        #: must not resurrect an entry whose drain raced the teardown
        #: (the trace oracle counts a double drain as a leak).
        self._drained_ids: set[int] = set()
        #: High-water mark of the parked backlog (evacuation/outage
        #: progress observability — surfaced by service.summary()).
        self.backlog_peak = 0
        #: Simulated time the backlog last fully drained (None until the
        #: first drain) — the outage drill's recovery-time statistic.
        self.backlog_drained_at: Optional[float] = None
        self._draining = False
        if health is not None:
            health.subscribe(self._on_health_transition)
        self._deploy()

    # -- deployment -----------------------------------------------------------

    def _deploy(self) -> None:
        src_faas = self.cloud.faas(self.src_bucket.region.key)
        dst_faas = self.cloud.faas(self.dst_bucket.region.key)
        # The orchestrator deploys at *both* ends: during a source-side
        # FaaS outage the engine fails events over to the destination
        # platform (the lock table stays at the source — orchestration
        # moves, the consistency protocol's home does not).
        for faas in {src_faas, dst_faas}:
            faas.deploy(self._orch_name, self._orchestrator, timeout_s=300.0)
            faas.deploy(self._rep_name, self._replicator)
        dst_faas.deploy(self._applier_name, self._applier, timeout_s=300.0)

    def _faas_at(self, loc_key: str):
        return self.cloud.faas(loc_key)

    def set_tracer(self, tracer) -> None:
        """Install (or clear, with None) the causal tracer on the engine
        and the control-plane primitives it owns."""
        self.tracer = tracer
        self.locks.tracer = tracer

    def _state_table(self, loc_key: str):
        return self.cloud.kv_table(loc_key, f"{_STATE_TABLE}-{self.rule_id}")

    # -- hardened control-plane plumbing ----------------------------------------

    def _kv(self, ctx, make):
        """Process: one control-plane KV operation under the retry policy.

        ``make`` is a zero-argument factory returning either a KV
        request (yieldable directly) or a single-operation process such
        as a lock or pool primitive; a factory — not the operation
        itself — because a :class:`Throttled` rejection consumes the
        attempt and the retry needs a fresh one.  Rejections happen
        before any mutation applies, so in-place retry with jittered
        backoff is always safe and far cheaper than failing the whole
        function.  Past the attempt cap the error propagates: the
        platform's own retry/DLQ machinery takes over.
        """
        attempt = 0
        deadline = None
        while True:
            try:
                op = make()
                if type(op) is GeneratorType:
                    return (yield from op)
                return (yield op)
            except Throttled:
                if attempt >= self.retry_policy.max_attempts:
                    self.stats["kv_retry_exhausted"] += 1
                    raise
                backoff = self.retry_policy.backoff_s(attempt, self._retry_rng)
                if self.retry_policy.deadline_s is not None:
                    # Total-time cap, anchored at the first rejection: a
                    # sustained outage must not pin a billed function
                    # for the whole backoff sum (nor let a retry outlive
                    # its lock lease) — escalate to the platform's
                    # retry/DLQ ladder instead of sleeping past it.
                    if deadline is None:
                        deadline = ctx.now + self.retry_policy.deadline_s
                    elif ctx.now + backoff > deadline:
                        self.stats["kv_retry_deadline"] += 1
                        raise
                self.stats["kv_retries"] += 1
                yield ctx.sleep(backoff)
                attempt += 1

    def _fence_ok(self, ctx, key: str, task_id: str,
                  fence: Optional[int], lock_at: Optional[float]):
        """Process: re-validate the task's fencing token before an
        irreversible destination write.

        A holder whose lease was stolen mid-task (a zombie writer — it
        stalled, it did not die) must abort rather than finalize a
        stale version over the thief's newer one.  A steal is
        impossible while the lease is young, so the common case skips
        the verification read entirely and costs nothing.
        """
        if fence is None:
            return True
        if (lock_at is not None
                and ctx.now - lock_at <= self.locks.lease_s * 0.5):
            return True
        ok = yield from self._kv(
            ctx, lambda: self.locks.verify(key, task_id, fence))
        if not ok:
            self.stats["lock_lost"] += 1
        return ok

    def _mark_done(self, ctx, key: str, etag: str, seq: int, time: float,
                   op: str = "put"):
        """Process: advance the key's done marker, monotonically in seq.

        An unconditional put would let a zombie writer (or any delayed
        straggler) clobber a newer marker with an older version's; the
        conditional advance makes the marker a high-water mark.

        Returns the *superseding* marker when the advance did not land
        (an equal-or-newer seq was already recorded), else ``None``.
        A superseding marker is how a straggler that just mutated the
        destination learns its write may have clobbered a newer
        finalized version — the fencing token cannot order two live
        incarnations of one platform-retried task (they share owner
        and fence), so the marker race is the only witness.
        """
        superseded: dict[str, object] = {}

        def advance(item):
            if item is not None and item.get("seq", -1) >= seq:
                superseded.update(item)
                return item
            if self.tracer is not None:
                # Emitted inside the closure: only an advance that
                # actually lands counts (the checker compares the
                # newest marker against the destination bucket).
                self.tracer.event("done-marker", "engine", None,
                                  rule=self.rule_id, key=key, seq=seq,
                                  etag=etag, op=op)
            return {"etag": etag, "seq": seq, "time": time, "op": op}

        yield from self._kv(
            ctx, lambda: self._lock_table.update_item(f"done:{key}", advance))
        return dict(superseded) if superseded else None

    def _reconverge_after_superseded(self, ctx, task_id: str, key: str,
                                     wrote_etag: Optional[str]):
        """Process: heal a destination a superseded straggler just wrote.

        Two live incarnations of one platform-retried task share a
        task id and fencing token (re-entrant lock acquisition keeps
        the fence, by design — persisted distributed-task descriptors
        must survive the retry), so when the retried incarnation
        adopts a newer source version, the fence check cannot stop the
        original incarnation's older write from landing *after* the
        newer finalize.  The marker high-water mark witnesses the
        inversion; this path compares the destination against the
        marker and, on genuine divergence, redrives the key as a
        *repair* event (fresh task, fresh lock, fresh fence — and the
        repair flag bypasses the very marker that masks the damage).
        Benign losers — the newer finalize also won the destination
        race — exit after one HEAD.  Terminates: the repair task's own
        superseded mark-done finds destination and marker in agreement
        and stops.
        """
        done = yield from self._kv(
            ctx, lambda: self._lock_table.get_item(f"done:{key}"))
        if done is None:
            return
        try:
            dst = yield from ctx.head_object(self.dst_bucket, key)
            dst_etag = dst.etag
        except NoSuchKey:
            dst_etag = None
        if done.get("op") == "delete":
            # The marker's newest state is absence; undo only *our
            # own* re-creation (different bytes belong to a newer
            # in-flight put, which owns its own convergence).
            if wrote_etag is not None and dst_etag == wrote_etag:
                self.stats["retriggered"] += 1
                if self.tracer is not None:
                    self.tracer.event("retrigger", "engine", task_id,
                                      key=key, seq=done.get("seq"),
                                      kind="superseded")
                yield from ctx.delete_object(self.dst_bucket, key)
            return
        if dst_etag == done.get("etag"):
            return  # benign: the newer finalize won the destination race
        self.stats["retriggered"] += 1
        if self.tracer is not None:
            self.tracer.event("retrigger", "engine", task_id, key=key,
                              seq=done.get("seq"), kind="superseded")
        try:
            current = yield from ctx.head_object(self.src_bucket, key)
        except NoSuchKey:
            return  # the source delete's own event owns convergence
        self.redrive_event({
            "kind": "created", "key": key, "etag": current.etag,
            "seq": current.sequencer, "size": current.size,
            "event_time": ctx.now, "repair": True,
        })

    def _record_visible(self, task_id: Optional[str],
                        result: TaskResult) -> None:
        """Report a visibility outcome, mirrored into the trace."""
        if self.tracer is not None:
            self.tracer.event("visible", "engine", task_id, key=result.key,
                              seq=result.seq, kind=result.kind)
        self.recorder.record_visible(result)

    def _abort_upload(self, upload_id: str) -> None:
        """Best-effort multipart abort on the destination.

        A failed abort (e.g. the destination store refusing requests)
        leaves a part-billing upload behind — count it so the audit
        command can report the leak instead of the failure vanishing
        into a bare except.  Never raises; never call it with a yield
        inside the guarded region (a swallowed Interrupt would let a
        crashed function keep running).
        """
        try:
            self.dst_bucket.abort_multipart(upload_id)
        except Exception:
            self.stats["orphaned_uploads"] += 1

    # -- end-to-end integrity: per-part verification and quarantine ---------------

    def _verify_download(self, task, version, blob, offset: int, length: int,
                         stage: str, part: Optional[int] = None) -> str:
        """Classify one downloaded range: ``ok`` | ``corrupt`` | ``stale``.

        The checksums reuse the platform's existing identities — on the
        clean path this is two string/tuple equality checks against
        already-cached values, no per-part hashing.  ``stale`` means the
        source genuinely moved on (the §5.2 optimistic-validation
        abort); everything else that mismatches is silent corruption:
        a flipped transfer, at-rest rot, a truncated read, or a store
        misreporting its ETag.
        """
        expected_etag = task["etag"]
        if version.etag == expected_etag:
            expected = version.blob.slice(offset, length)
            if blob.size == length and blob.segments == expected.segments:
                return "ok"
            kind = "truncated" if blob.size != length else "payload"
        elif version.blob.etag == expected_etag:
            # The content is the version we expect but the reported
            # ETag is not its hash: the store is lying about metadata.
            kind = "wrong-etag"
        else:
            return "stale"
        self._record_corruption(task, stage, kind, part)
        return "corrupt"

    def _record_corruption(self, task, stage: str, kind: str,
                           part: Optional[int] = None) -> None:
        self.stats["corrupt_detected"] += 1
        if self.tracer is not None:
            self.tracer.event("corrupt-detected", "engine", task["task_id"],
                              key=task["key"], stage=stage, kind=kind,
                              part=part)

    def _quarantine(self, task, stage: str, part: Optional[int] = None,
                    count: bool = True):
        """Escalate a poison transfer: count, trace, and raise the
        no-platform-retry error that dead-letters this invocation with
        the ``corrupted`` disposition.  A later DLQ redrive — after the
        fault clears — re-runs the task and completes the part.

        ``count=False`` replays an already-counted quarantine — a
        hedged rival burned the retransfer budget on the same part
        first (``PartPool.mark_quarantined`` returned the first-marker
        signal to the other side).  The escalation still raises, but
        the stat and trace event stay idempotent per (task, part) so
        drill accounting remains exact under hedging.
        """
        if count:
            self.stats["quarantined"] += 1
            if self.tracer is not None:
                self.tracer.event("quarantine", "engine", task["task_id"],
                                  key=task["key"], stage=stage, part=part)
        raise PartQuarantined(
            f"{task['task_id']}: {stage} checksum mismatch persisted "
            f"past retransfer budget (part={part})")

    # -- degraded-mode routing and the parked-task backlog -----------------------

    def _route(self) -> Optional[str]:
        """Execution region for a new orchestration, or None (no route).

        Healthy fast path: one ``is None`` / one integer check.  In
        degraded mode the rule is: the consistency substrates — the
        source lock table and both object stores — are location-pinned,
        so a dark one parks the task outright; the orchestrator itself
        fails over to the destination platform when only the source
        FaaS is dark.
        """
        health = self.health
        src_key = self.src_bucket.region.key
        if health is None or not health.any_open:
            return src_key
        if not health.available(("kv", src_key)):
            return None
        if not health.available(("store", src_key)):
            return None
        dst_key = self.dst_bucket.region.key
        if not health.available(("store", dst_key)):
            return None
        if health.available(("faas", src_key)):
            return src_key
        if dst_key != src_key and health.available(("faas", dst_key)):
            return dst_key
        return None

    def _dispatch_event(self, payload: dict) -> None:
        """Route ``payload`` to an orchestrator, or park it."""
        if self.tracer is not None and "task" not in payload:
            # Stamp the deterministic task id at dispatch so the FaaS
            # substrate attributes the orchestrator invocation's own
            # I/D/P/S/C spans to the task (replicator payloads already
            # carry ``task_id``).
            payload["task"] = (f"{self.rule_id}:{payload['key']}:"
                               f"{payload['seq']}:{payload['kind']}")
        route = self._route()
        if route is None:
            self._park(payload)
            return
        if route != self.src_bucket.region.key:
            self.stats["failover"] += 1
        if self.tracer is not None:
            # Admission witness for the cordon invariant: the oracle
            # checks no dispatch lands in an administratively cordoned
            # FaaS region (I-spans cannot serve — invoke_and_forget
            # emits none, and in-flight orchestrators legitimately
            # invoke workers at cordoned regions).
            self.tracer.event("dispatch", "engine", payload.get("task"),
                              rule=self.rule_id, region=route)
        if self.scheduler is not None:
            # Fair-share gate: the scheduler decides *when* the
            # invocation starts (DRR over per-tenant lanes, bounded
            # in-flight concurrency); the route decision stays here so
            # degraded-mode failover semantics are identical either way.
            faas = self._faas_at(route)
            self.scheduler.submit(
                self.tenant or self.rule_id,
                lambda: faas.invoke_and_forget(self._orch_name, payload))
            return
        self._faas_at(route).invoke_and_forget(self._orch_name, payload)

    def redrive_event(self, payload: dict) -> None:
        """Inject a synthetic replication event (anti-entropy repair).

        Takes the same degraded-routing path as live notifications, so
        a repair during an ongoing outage parks rather than burns.
        """
        self._dispatch_event(dict(payload))

    def _park(self, payload: dict) -> None:
        """Queue a task no route can serve; drained on recovery."""
        self.stats["parked"] += 1
        backlog_id = self._backlog_next
        self._backlog_next += 1
        if self.tracer is not None:
            self.tracer.event("park", "engine", payload.get("task"),
                              rule=self.rule_id, backlog_id=backlog_id,
                              key=payload.get("key"))
        self._backlog.append((backlog_id, payload))
        self.backlog_peak = max(self.backlog_peak, len(self._backlog))
        self._persist_parked(backlog_id, payload)

    def _persist_parked(self, backlog_id: int, payload: dict) -> None:
        """Best-effort durable mirror of one parked task.

        The mirror write itself races the outage that caused the park
        (the lock table may be the dark substrate) — failures are
        counted, not retried: the in-memory queue keeps operating and
        the anti-entropy scanner is the backstop for a lost process.
        """
        item_key = f"backlog:{backlog_id:08d}"

        def persist():
            try:
                yield self._lock_table.put_item(
                    item_key, {"payload": dict(payload),
                               "at": self.cloud.sim.now})
            except Throttled:
                self.stats["backlog_kv_failed"] += 1

        self.cloud.sim.spawn(persist())

    def _unpersist_parked(self, backlog_id: int) -> None:
        item_key = f"backlog:{backlog_id:08d}"

        def unpersist():
            try:
                yield self._lock_table.delete_item(item_key)
            except Throttled:
                self.stats["backlog_kv_failed"] += 1

        self.cloud.sim.spawn(unpersist())

    def backlog_size(self) -> int:
        return len(self._backlog)

    def _on_health_transition(self, target, state: str) -> None:
        if state == BreakerState.HALF_OPEN:
            self._probe_backlog()
        elif state == BreakerState.CLOSED:
            self._maybe_drain()
        elif state == BreakerState.UNCORDONED:
            # A lifted cordon re-opens admission: work parked while the
            # region was administratively dark drains immediately.
            self._maybe_drain()

    def _probe_backlog(self) -> None:
        """Half-open probe: re-dispatch a *copy* of the oldest parked
        task through the normal route.  The entry stays queued — a
        failed probe must not lose it, and a successful duplicate is
        absorbed by the done marker — so the probe's only side effect
        is the traffic the breaker needs for its verdict."""
        if not self._backlog or self._draining:
            return
        route = self._route()
        if route is None:
            return
        self.stats["probes"] += 1
        if route != self.src_bucket.region.key:
            self.stats["failover"] += 1
        _bid, payload = self._backlog[0]
        if self.tracer is not None:
            self.tracer.event("probe", "engine", payload.get("task"),
                              rule=self.rule_id, backlog_id=_bid,
                              region=route)
        self._faas_at(route).invoke_and_forget(self._orch_name, dict(payload))

    def _maybe_drain(self) -> None:
        if self._draining or not self._backlog or self._route() is None:
            return
        self._draining = True
        self.cloud.sim.spawn(self._drain_backlog())

    def _drain_backlog(self):
        """Process: re-dispatch parked tasks FIFO after recovery.

        Batches of ``outage_catchup_concurrency`` run to completion
        before the next batch starts — the cap that keeps the catch-up
        burst from re-browning-out a freshly recovered region.  If the
        route goes dark again mid-drain, the remainder stays parked for
        the next recovery.
        """
        cap = self.config.outage_catchup_concurrency
        try:
            while self._backlog:
                route = self._route()
                if route is None:
                    return
                batch = [self._backlog.popleft()
                         for _ in range(min(cap, len(self._backlog)))]
                faas = self._faas_at(route)
                if route != self.src_bucket.region.key:
                    self.stats["failover"] += len(batch)
                invocations = [faas.invoke_and_forget(self._orch_name, payload)
                               for _bid, payload in batch]
                for backlog_id, _payload in batch:
                    self.stats["drained"] += 1
                    self._drained_ids.add(backlog_id)
                    if self.tracer is not None:
                        self.tracer.event("drain", "engine",
                                          _payload.get("task"),
                                          rule=self.rule_id,
                                          backlog_id=backlog_id,
                                          region=route)
                    self._unpersist_parked(backlog_id)
                # Await sequentially with individual guards: a single
                # dead-lettered invocation (fails its Future) must not
                # abandon the rest of the drain — the DLQ redrive owns
                # that task now.
                for invocation in invocations:
                    try:
                        yield invocation
                    except Exception:
                        pass
            self.backlog_drained_at = self.cloud.sim.now
        finally:
            self._draining = False
        # Tasks parked while the last batch ran (route flapped) get a
        # fresh drain only on the next close transition; kick once more
        # in case the flap already resolved.
        if self._backlog:
            self._maybe_drain()

    # -- planned-operations control plane (core/lifecycle.py) ---------------------

    #: KV key the control-plane checkpoint lives under (in the rule's
    #: lock table, beside the locks/done markers it describes).
    _CHECKPOINT_KEY = "lifecycle:checkpoint"

    def detach(self) -> None:
        """Disconnect this engine from shared infrastructure before a
        replacement engine takes over (rolling restart).

        Health transitions must stop reaching the old instance — two
        engines draining one logical backlog would double-dispatch —
        and the old in-memory backlog is surrendered: the durable
        ``backlog:`` mirror plus the checkpoint are the hand-off.
        In-flight functions keep running (serverless semantics: the
        platform owns them, not the engine object).
        """
        if self.health is not None:
            self.health.unsubscribe(self._on_health_transition)
        self._backlog.clear()

    def adopt_counters(self, old: "ReplicationEngine") -> None:
        """Carry monotonic operational state from a torn-down engine.

        The stats dict is shared *by reference* so counters stay
        monotonic across a restart (the drills assert deltas over the
        whole run), the backlog id space continues where the old engine
        left it (a restored entry must never collide with a fresh
        park), and already-drained ids stay excluded from restore.
        """
        self.stats = old.stats
        self.worker_parts = old.worker_parts
        self.worker_spans = old.worker_spans
        self._hedge_samples = old._hedge_samples
        self._hedge_seq = old._hedge_seq
        self._hedge_live = old._hedge_live
        self._backlog_next = old._backlog_next
        self._drained_ids = set(old._drained_ids)
        self.backlog_peak = old.backlog_peak
        self.backlog_drained_at = old.backlog_drained_at
        self.forced_plan = old.forced_plan

    def checkpoint_control_plane(self):
        """Process: persist restartable control-plane state to KV.

        The record carries the backlog id high-water mark, the parked
        entries themselves (the KV API has no scan, so the checkpoint
        must be self-contained), the drained-id set, and a stats
        snapshot for operator forensics.  Locks, done markers, part
        pools, and the ``backlog:`` mirror are *already* durable in the
        same table — the checkpoint only captures what lived purely in
        process memory.
        """
        record = {
            "at": self.cloud.sim.now,
            "rule": self.rule_id,
            "backlog_next": self._backlog_next,
            "backlog": [[bid, dict(payload)]
                        for bid, payload in self._backlog],
            "drained_ids": sorted(self._drained_ids),
        }
        yield self._lock_table.put_item(self._CHECKPOINT_KEY, record)
        self.stats["checkpoints"] += 1
        if self.tracer is not None:
            self.tracer.event("checkpoint", "lifecycle", None,
                              rule=self.rule_id,
                              backlog=len(record["backlog"]))
        return record

    def restore_control_plane(self):
        """Process: rebuild in-memory control-plane state from KV.

        Reads the checkpoint, drops entries the old engine managed to
        drain between checkpoint and teardown, re-verifies each entry's
        durable ``backlog:`` mirror (re-writing any the original
        best-effort mirror lost — the cold-object re-mirror), and
        merges the survivors into the live backlog.  The deque is
        mutated only at the end so a mid-restore fault retried by the
        caller stays idempotent.
        """
        record = yield self._lock_table.get_item(self._CHECKPOINT_KEY)
        if record is None:
            return {"restored": 0, "remirrored": 0}
        self._backlog_next = max(self._backlog_next,
                                 record.get("backlog_next", 1))
        drained = set(record.get("drained_ids", [])) | self._drained_ids
        restored: list[tuple[int, dict]] = []
        remirrored = 0
        present = {bid for bid, _payload in self._backlog}
        for bid, payload in record.get("backlog", []):
            if bid in drained or bid in present:
                continue
            mirror_key = f"backlog:{bid:08d}"
            mirror = yield self._lock_table.get_item(mirror_key)
            if mirror is None:
                # The original best-effort mirror write failed (it
                # raced the outage that parked the task); restore is
                # the second chance to make the entry durable.
                yield self._lock_table.put_item(
                    mirror_key, {"payload": dict(payload),
                                 "at": self.cloud.sim.now})
                remirrored += 1
            restored.append((bid, dict(payload)))
        if restored:
            merged = sorted(list(self._backlog) + restored)
            self._backlog.clear()
            self._backlog.extend(merged)
            self.backlog_peak = max(self.backlog_peak, len(self._backlog))
        self._drained_ids |= drained
        if self.tracer is not None:
            self.tracer.event("restore", "lifecycle", None,
                              rule=self.rule_id, restored=len(restored),
                              remirrored=remirrored)
        self._maybe_drain()
        return {"restored": len(restored), "remirrored": remirrored}

    def reclaim_stranded_locks(self) -> int:
        """Schedule takeover of lock records that survived quiescence.

        A holder that crashes *after* its destination finalize but
        *before* UNLOCK leaves the lock record — and any pending
        version registered on it — stranded: no further event for the
        key will ever arrive, so the lease-takeover path never runs and
        the newest version never replicates.  At quiescence every
        surviving lock record is such a casualty (a live holder would
        still have simulation events in flight), so re-dispatch one
        recovery task per record, delayed past lease expiry so the
        takeover (rather than a deferral) wins.  Returns the number of
        reclaims scheduled; the caller re-runs the simulation.
        """
        sim = self._lock_table.sim
        now = sim.now
        n = 0
        for kv_key, item in self._lock_table.peek_prefix("lock:"):
            obj_key = kv_key[len("lock:"):]
            seq = int(item.get("held_seq") or 0)
            etag = item.get("held_etag") or ""
            pending_seq = item.get("pending_seq")
            if pending_seq is not None and int(pending_seq) > seq:
                seq = int(pending_seq)
                etag = item.get("pending_etag") or ""
            payload = {"kind": "created", "key": obj_key, "etag": etag,
                       "seq": seq, "size": 0, "event_time": now}
            delay = max(0.0, float(item.get("acquired_at", now))
                        + self.locks.lease_s - now) + 1.0
            if self.tracer is not None:
                self.tracer.event("lock-reclaim", "engine", None,
                                  rule=self.rule_id, key=obj_key,
                                  owner=item.get("owner"), seq=seq)
            sim.call_later(delay, lambda p=payload: self._dispatch_event(p))
            n += 1
        return n

    # -- entry point (the cloud notification) ------------------------------------

    def handle_event(self, event: ObjectEvent) -> None:
        """Notification delivery: trigger the orchestrator function."""
        payload = {
            "kind": event.kind,
            "key": event.key,
            "etag": event.etag,
            "seq": event.sequencer,
            "size": event.size,
            "event_time": event.event_time,
        }
        self._dispatch_event(payload)

    # -- orchestrator function -------------------------------------------------------

    def _orchestrator(self, ctx, payload):
        self.stats["tasks"] += 1
        key = payload["key"]
        if (self.health is not None and self.health.any_open
                and self._route() is None):
            # An outage opened between dispatch and execution (or this
            # is a platform retry riding out one): park before burning
            # lock-write retries against a dark substrate.
            self._park(dict(payload))
            return
        # Deterministic per object version: a platform-retried
        # orchestrator re-enters its own lock and resumes its own pool
        # instead of deadlocking against its crashed predecessor.
        task_id = f"{self.rule_id}:{key}:{payload['seq']}:{payload['kind']}"
        outcome = yield from self._kv(
            ctx, lambda: self.locks.lock(key, payload["etag"],
                                         payload["seq"], owner=task_id))
        if not outcome.acquired:
            # A task is in flight; our version is registered as pending
            # (or an even newer one already is) — Algorithm 2's LOCK.
            self.stats["deferred"] += 1
            return
        lock_at = ctx.now
        if payload["kind"] == "deleted":
            yield from self._handle_delete(ctx, payload, task_id,
                                           outcome.fence, lock_at)
            return
        # Re-read the source: replicate the *current* version (it covers
        # this event and any newer ones), and skip when a newer-or-equal
        # version has already been replicated.
        try:
            current = yield from ctx.head_object(self.src_bucket, key)
        except NoSuchKey:
            # Deleted concurrently.  If the DELETE's task already ran
            # (its notification overtook ours), its done marker covers
            # this event — close the measurement here, because nobody
            # else will.  Otherwise the DELETE event is still in flight
            # and its own visibility report subsumes this sequencer.
            done = yield from self._kv(
                ctx, lambda: self._lock_table.get_item(f"done:{key}"))
            if done is not None and done["seq"] >= payload["seq"]:
                self.stats["skipped_done"] += 1
                self._record_visible(task_id, TaskResult(
                    key=key, etag=done["etag"], seq=done["seq"],
                    event_time=payload["event_time"],
                    visible_time=max(done.get("time", ctx.now),
                                     payload["event_time"]),
                    plan=None, kind="already-replicated",
                    started=payload["event_time"],
                ))
            yield from self._finish(ctx, task_id, key, None)
            return
        done = yield from self._kv(
            ctx, lambda: self._lock_table.get_item(f"done:{key}"))
        if (done is not None and not payload.get("repair")
                and (done["seq"] >= current.sequencer
                     or (done["etag"] == current.etag
                         and done.get("op", "put") != "delete"))):
            # Already replicated: a prior task shipped this version (or
            # a newer one) — possibly under an older sequencer when the
            # same *content* was re-written, e.g. by the reverse rule of
            # a bidirectional pair.  Report visibility at the recorded
            # time so the event's delay measurement closes.  Repair
            # events skip this short-circuit: anti-entropy exists to
            # heal divergence *behind* a valid done marker (the
            # destination lost or corrupted bytes after the marker was
            # written), so the marker cannot vouch for them.  A *delete*
            # marker's ETag is the deleted version's: identical content
            # re-created after the delete is not at the destination, so
            # only put markers may vouch by ETag.
            self.stats["skipped_done"] += 1
            effective_seq = max(done["seq"], current.sequencer)
            if effective_seq > done["seq"]:
                yield from self._mark_done(ctx, key, done["etag"],
                                           effective_seq,
                                           done.get("time", ctx.now))
            self._record_visible(task_id, TaskResult(
                key=key, etag=done["etag"], seq=effective_seq,
                event_time=payload["event_time"],
                # When identical content was re-written, it was already
                # visible at the destination the moment the PUT landed.
                visible_time=max(done.get("time", ctx.now),
                                 payload["event_time"]),
                plan=None, kind="already-replicated",
                started=payload["event_time"],
            ))
            yield from self._finish(ctx, task_id, key, effective_seq)
            return
        task = {
            "task_id": task_id,
            "key": key,
            "etag": current.etag,
            "seq": current.sequencer,
            "size": current.size,
            "event_time": payload["event_time"],
            # Fencing state: replicators and finalizers re-validate the
            # token before destination finalize (see _fence_ok).
            "fence": outcome.fence,
            "lock_at": lock_at,
        }
        # Content short-circuit: if the destination already holds this
        # exact content (an earlier rule run, a user pre-seed, or the
        # reverse rule of a bidirectional pair), there is nothing to
        # move.  Together with the done-marker ETag check above, this
        # also breaks the ping-pong two mutually replicating buckets
        # would otherwise sustain.  The destination HEAD only pays for
        # itself on objects whose transfer dwarfs a cross-region
        # round-trip, so small objects skip straight to replication.
        dst_current = None
        if (current.size > self.config.local_threshold
                and not payload.get("repair")):
            # Repair events never take this shortcut: deep scrub re-drives
            # a key precisely when the destination's self-reported ETag
            # cannot be trusted (silent bit rot behind a truthful-looking
            # HEAD), so the ETag match proves nothing.
            try:
                dst_current = yield from ctx.head_object(self.dst_bucket, key)
            except NoSuchKey:
                dst_current = None
        if dst_current is not None and dst_current.etag == current.etag:
            self.stats["content_skipped"] = self.stats.get("content_skipped", 0) + 1
            yield from self._mark_done(ctx, key, current.etag,
                                       current.sequencer, ctx.now)
            self._record_visible(task_id, TaskResult(
                key=key, etag=current.etag, seq=current.sequencer,
                event_time=payload["event_time"], visible_time=ctx.now,
                plan=None, kind="content-match", started=ctx.now,
            ))
            yield from self._finish(ctx, task_id, key, current.sequencer)
            return
        if self.changelog is not None and self.config.enable_changelog:
            applied = yield from self._try_changelog(ctx, task)
            if applied:
                return
        plan_from = ctx.now
        try:
            plan = self._plan(task, ctx.now)
        except NoRouteAvailable:
            # Every candidate execution location is behind an open
            # circuit: park the original event and release the lock so
            # the drained task starts clean.
            self._park(dict(payload))
            yield from self._finish(ctx, task_id, key, None)
            return
        if self.tracer is not None:
            self.tracer.span("plan", "engine", task_id, plan_from, ctx.now,
                             n=plan.n, loc_key=plan.loc_key,
                             inline=plan.inline, compliant=plan.compliant,
                             predicted_s=plan.predicted_s)
        task["plan_n"] = plan.n
        task["loc_key"] = plan.loc_key
        task["predicted_s"] = plan.predicted_s
        task["predicted_median_s"] = plan.predicted_median_s
        task["started"] = ctx.now
        if outcome.reentrant:
            hedged_pool = (self.config.hedging_enabled
                           and self.config.max_clones_per_part > 0
                           and task["size"] >= self.config.hedge_min_part_bytes)
            if (plan.inline or plan.n == 1) and not hedged_pool:
                # This retry bypasses the part pool — the source shrank
                # below the part/hedging thresholds since the crashed
                # attempt planned (or hedging is off).  A pool record
                # the predecessor persisted, and the multipart upload
                # it points at, would otherwise leak forever: nothing
                # downstream ever looks the record up again once the
                # done marker lands.  Reap it before replicating.
                yield from self._reap_orphan_pool(ctx, task_id)
        if plan.inline:
            self.stats["inline"] += 1
            if (self.config.hedging_enabled
                    and self.config.max_clones_per_part > 0
                    and task["size"] >= self.config.hedge_min_part_bytes):
                # Inline transfers are the biggest straggler trap of
                # all: one in-process loop, one set of WAN legs, zero
                # observability.  Under hedging, route eligible inline
                # tasks through the pool with the orchestrator as the
                # (only) worker — same zero-invocation clean path, but
                # each range gets a deadline and a clone budget.
                yield from self._launch_distributed(ctx, task, plan,
                                                    inline_worker=True)
            else:
                yield from self._run_single(ctx, task, plan)
        elif plan.n == 1:
            if (self.config.hedging_enabled
                    and self.config.max_clones_per_part > 0
                    and task["size"] >= self.config.hedge_min_part_bytes):
                # With hedging on, a large single-function transfer is a
                # straggler trap: its parts live inside one instance's
                # speed draw and one set of WAN legs, invisible to the
                # per-part deadline monitor.  Route it through the
                # distributed machinery at n=1 instead — same single
                # worker, but every part flows through the pool where
                # progress is tracked and an overrunning range can be
                # cloned onto a fresh instance.  Hedging-off keeps the
                # plain single path byte-for-byte.
                self.stats["distributed"] += 1
                yield from self._launch_distributed(ctx, task, plan)
            else:
                self.stats["single"] += 1
                task["mode"] = "single"
                invocation = yield from ctx.invoke(
                    self._faas_at(plan.loc_key), self._rep_name, dict(task)
                )
                del invocation  # fire-and-forget: the replicator finishes the task
        else:
            self.stats["distributed"] += 1
            yield from self._launch_distributed(ctx, task, plan)

    def _plan(self, task: dict, now: float) -> Plan:
        if self.forced_plan is not None:
            n, loc_key = self.forced_plan
            path = (loc_key, self.src_bucket.region.key,
                    self.dst_bucket.region.key)
            inline = (n == 1 and loc_key == self.src_bucket.region.key
                      and task["size"] <= self.config.local_threshold)
            predicted = median = 0.0
            if self.planner.model.has_path(path):
                predicted = self.planner.model.predict_percentile(
                    path, task["size"], n, self.config.percentile,
                    inline=inline)
                median = self.planner.model.predict_percentile(
                    path, task["size"], n, 0.5, inline=inline)
            return Plan(n=n, loc_key=loc_key, path=path, predicted_s=predicted,
                        percentile=self.config.percentile, compliant=True,
                        inline=inline, predicted_median_s=median)
        if self.config.slo_enabled:
            remaining = self.config.slo_seconds - (now - task["event_time"])
            return self.planner.generate(task["size"],
                                         self.src_bucket.region.key,
                                         self.dst_bucket.region.key,
                                         slo_remaining=remaining)
        return self.planner.fastest(task["size"],
                                    self.src_bucket.region.key,
                                    self.dst_bucket.region.key)

    # -- deletes ---------------------------------------------------------------------

    def _handle_delete(self, ctx, payload, task_id, fence=None, lock_at=None):
        key = payload["key"]
        # Ordering guards: never let a stale DELETE clobber newer state.
        done = yield from self._kv(
            ctx, lambda: self._lock_table.get_item(f"done:{key}"))
        if done is not None and done["seq"] >= payload["seq"]:
            self.stats["skipped_done"] += 1
            self._record_visible(task_id, TaskResult(
                key=key, etag=done["etag"], seq=done["seq"],
                event_time=payload["event_time"],
                visible_time=done.get("time", ctx.now),
                plan=None, kind="already-replicated",
                started=payload["event_time"],
            ))
            yield from self._finish(ctx, task_id, key, done["seq"])
            return
        try:
            current = yield from ctx.head_object(self.src_bucket, key)
        except NoSuchKey:
            current = None
        if current is not None and current.sequencer > payload["seq"]:
            # The object was re-created after this delete; the newer
            # PUT's task supersedes us ("or its subsequent versions").
            yield from self._finish(ctx, task_id, key, None)
            return
        ok = yield from self._fence_ok(ctx, key, task_id, fence, lock_at)
        if not ok:
            # Lease stolen while we deliberated.  Unlike a PUT zombie —
            # whose thief re-reads the source and converges the content —
            # a thief handling an older event sees NoSuchKey at the
            # source and touches nothing, so if no newer PUT superseded
            # this delete, nobody else would ever propagate it.  Hand the
            # event to a fresh task (fresh lock, fresh fence) instead.
            self.stats["retriggered"] += 1
            if self.tracer is not None:
                self.tracer.event("retrigger", "engine", task_id, key=key,
                                  seq=payload["seq"], kind="deleted")
            self._dispatch_event(dict(payload))
            return
        self.stats["deletes"] += 1
        yield from ctx.delete_object(self.dst_bucket, key)
        if self.tracer is not None:
            self.tracer.event("finalize", "engine", task_id, key=key,
                              seq=payload["seq"], etag=payload["etag"],
                              fence=fence, op="delete",
                              loc=ctx.region.key)
        superseded = yield from self._mark_done(ctx, key, payload["etag"],
                                                payload["seq"], ctx.now,
                                                op="delete")
        if superseded is not None:
            # Our destination delete landed under a marker a newer
            # finalize had already advanced: the bytes we removed may
            # have been the newer version's.  Heal via the marker
            # comparison (wrote_etag None — a delete writes absence).
            yield from self._reconverge_after_superseded(ctx, task_id, key,
                                                         None)
        self._record_visible(task_id, TaskResult(
            key=key, etag=payload["etag"], seq=payload["seq"],
            event_time=payload["event_time"], visible_time=ctx.now,
            plan=None, kind="deleted",
        ))
        yield from self._finish(ctx, task_id, key, payload["seq"])

    # -- changelog fast path ------------------------------------------------------------

    def _try_changelog(self, ctx, task):
        """Process: returns True when the changelog path completed the task."""
        entry = yield from self._kv(
            ctx, lambda: self.changelog.lookup(task["key"], task["etag"]))
        if entry is None:
            return False
        payload = {
            "task": dict(task),
            "entry": {
                "op": entry.op, "key": entry.key, "etag": entry.etag,
                "sources": [list(s) for s in entry.sources],
                "data_offset": entry.data_offset,
                "data_length": entry.data_length,
            },
        }
        invocation = yield from ctx.invoke(
            self._faas_at(self.dst_bucket.region.key), self._applier_name, payload
        )
        result = yield invocation
        if result["applied"]:
            self.stats["changelog_applied"] += 1
            return True
        self.stats["changelog_fallback"] += 1
        return False

    def _applier(self, ctx, payload):
        """Destination-side changelog application (Fig 15).

        Verifies every source ETag against the destination bucket, then
        reconstructs the object from local data (server-side copy /
        compose) plus — for APPEND/PATCH — a ranged GET of only the
        fresh bytes from the source region.  On success it finishes the
        task (done marker, unlock, pending re-trigger) itself.
        """
        task, entry = payload["task"], payload["entry"]
        key = task["key"]
        ok = yield from self._fence_ok(ctx, key, task["task_id"],
                                       task.get("fence"), task.get("lock_at"))
        if not ok:
            return {"applied": False}
        for src_key, src_etag in entry["sources"]:
            if self.dst_bucket.current_etag(src_key) != src_etag:
                return {"applied": False}
        op = entry["op"]
        if op == ChangelogOp.COPY:
            version = yield from ctx.copy_object(
                self.dst_bucket, entry["sources"][0][0], key
            )
        elif op == ChangelogOp.CONCAT:
            yield ctx.sleep(0.0)
            version = self.dst_bucket.compose_objects(
                [s for s, _ in entry["sources"]], key, ctx.now
            )
        elif op in (ChangelogOp.APPEND, ChangelogOp.PATCH):
            version = yield from self._apply_patch(ctx, task, entry)
            if version is None:
                return {"applied": False}
        else:
            return {"applied": False}
        if version.etag != task["etag"]:
            # The reconstruction did not reproduce the replicated
            # version byte-for-byte; do not trust the hint.
            self.dst_bucket.delete_object(key, ctx.now, notify=False)
            return {"applied": False}
        yield from self._finish_replicated(ctx, task, version, kind="changelog")
        return {"applied": True}

    def _apply_patch(self, ctx, task, entry):
        """APPEND/PATCH: fetch only the fresh byte range from the source."""
        key, offset, length = task["key"], entry["data_offset"], entry["data_length"]
        try:
            fresh, version = yield from ctx.get_object(self.src_bucket, key,
                                                       offset, length)
        except (NoSuchKey, ValueError):
            return None
        if version.etag != task["etag"]:
            return None
        base = self.dst_bucket.head(entry["sources"][0][0]).blob
        if entry["op"] == ChangelogOp.APPEND:
            from repro.simcloud.objectstore import Blob

            blob = Blob.concat([base, fresh])
        else:
            from repro.simcloud.objectstore import Blob

            head = base.slice(0, offset)
            tail_start = offset + length
            tail = base.slice(tail_start, base.size - tail_start) \
                if tail_start < base.size else None
            pieces = [head, fresh] + ([tail] if tail is not None else [])
            blob = Blob.concat(pieces)
        yield ctx.sleep(0.0)
        return self.dst_bucket.put_object(key, blob, ctx.now)

    # -- single-function replication ---------------------------------------------------

    def _fusion_ok(self) -> bool:
        """Eligibility for fused small-object transfers.

        Fusing the handshake and data legs into one kernel event is
        only allowed when nothing can observe the intermediate
        instants: no chaos/corruption hooks armed, no tracer recording
        spans, neither endpoint inside an outage window, and hedging
        off — the hedge monitor's deadline gates sample transfer
        progress at instants fusion would collapse away.
        """
        cloud = self.cloud
        return (self.config.fuse_small_transfers
                and not self.config.hedging_enabled
                and cloud.chaos is None
                and cloud.tracer is None
                and not self.src_bucket.in_outage
                and not self.dst_bucket.in_outage)

    def _run_single(self, ctx, task, plan: Optional[Plan] = None):
        """Single-function replication (orchestrator inline, or one
        remote replicator).

        A whole-object GET is snapshot-consistent — object storage
        serves one version for the entire request — so the single path
        needs no optimistic validation: whatever version the GET
        returned is internally consistent and is the newest at read
        time.  Objects above one part are still *written* part-by-part
        (multipart upload), matching the model's ``T_transfer =
        S + C·⌈size/c⌉`` workflow.  This is also why the §5.2 remedy
        for frequently-updated objects is falling back to one function:
        the atomic read cannot be raced, unlike distributed ranged GETs.
        """
        key = task["key"]
        part = self.config.part_size
        fused = self._fusion_ok()
        retransfers = 0
        while True:
            try:
                if fused and task.get("size", part + 1) <= part:
                    blob, version = yield from ctx.get_object_fused(
                        self.src_bucket, key)
                else:
                    blob, version = yield from ctx.get_object(
                        self.src_bucket, key)
            except NoSuchKey:
                yield from self._finish(ctx, task["task_id"], key, None)
                return
            # The single path adopts whatever version its snapshot GET
            # returned, so verification is self-consistency: the payload
            # against the version's own content identity, the reported
            # ETag against its hash (both cached — no extra hashing).
            if (blob.size == version.blob.size
                    and blob.segments == version.blob.segments
                    and version.etag == version.blob.etag):
                break
            kind = ("truncated" if blob.size != version.blob.size
                    else "wrong-etag"
                    if blob.segments == version.blob.segments
                    else "payload")
            self._record_corruption(task, "single-get", kind)
            if retransfers >= self.config.retransfer_budget:
                self._quarantine(task, "single-get")
            retransfers += 1
            self.stats["retransfers"] += 1
        task = dict(task, etag=version.etag, seq=version.sequencer,
                    size=version.size)
        if version.size <= part:
            # Fencing (§5.2 hardening): if our lease was stolen during
            # the download, the thief has already (or will) put a newer
            # version — a stale PUT here would clobber it.
            ok = yield from self._fence_ok(ctx, key, task["task_id"],
                                           task.get("fence"),
                                           task.get("lock_at"))
            if not ok:
                return
            while True:
                if fused:
                    dst_version = yield from ctx.put_object_fused(
                        self.dst_bucket, key, blob)
                else:
                    dst_version = yield from ctx.put_object(self.dst_bucket,
                                                            key, blob)
                if dst_version.etag == blob.etag:
                    break
                # The store durably recorded some other payload under
                # our key (a miswritten PUT); re-send it in place.
                self._record_corruption(task, "put", "payload")
                if retransfers >= self.config.retransfer_budget:
                    self._quarantine(task, "put")
                retransfers += 1
                self.stats["retransfers"] += 1
            yield from self._finish_replicated(ctx, task, dst_version)
            return
        upload_id = yield from ctx.initiate_multipart(self.dst_bucket, key)
        num_parts = math.ceil(version.size / part)
        try:
            for i in range(num_parts):
                offset = i * part
                length = min(part, version.size - offset)
                piece = blob.slice(offset, length)
                part_retransfers = 0
                while True:
                    # Parts after the first stream back-to-back: the
                    # request handshake overlaps the preceding part's
                    # transfer.
                    part_etag = yield from ctx.upload_part(
                        self.dst_bucket, upload_id, i + 1, piece,
                        pipelined=i > 0)
                    if part_etag == piece.etag:
                        break
                    self._record_corruption(task, "part-put", "payload",
                                            part=i)
                    if part_retransfers >= self.config.retransfer_budget:
                        self._quarantine(task, "part-put", part=i)
                    part_retransfers += 1
                    self.stats["retransfers"] += 1
            # The zombie-writer check: a slow transfer can outlive the
            # lease, and completing the multipart would then publish
            # this stale version over the new holder's newer one.
            ok = yield from self._fence_ok(ctx, key, task["task_id"],
                                           task.get("fence"),
                                           task.get("lock_at"))
            if not ok:
                self._abort_upload(upload_id)
                return
            dst_version = yield from ctx.complete_multipart(self.dst_bucket,
                                                            upload_id)
        except BaseException:
            # A crashed (or platform-killed) single replicator is retried
            # from scratch with a *new* upload id; the one opened here
            # would leak and keep billing its parts.  Abort it on the way
            # out — this is the "function" dying, so no further simulated
            # requests are issued.
            self._abort_upload(upload_id)
            raise
        yield from self._finish_replicated(ctx, task, dst_version)

    def _reap_orphan_pool(self, ctx, task_id: str):
        """Process: abort a crashed predecessor's pool and its upload.

        A platform-retried orchestrator re-enters its own lock and
        normally *resumes* the part pool its predecessor persisted
        (same task id, same upload).  When the retry's fresh plan does
        not route through the pool, that record is unreachable garbage
        and its multipart upload bills parts forever.  Mark the pool
        aborted — straggling workers from the crashed attempt observe
        the flag and stand down — then abort the upload.
        """
        state_table = self._state_table(ctx.region.key)
        record = yield from self._kv(
            ctx, lambda: state_table.get_item(f"pool:{task_id}"))
        if record is None or record.get("aborted"):
            return
        pool = PartPool(state_table, task_id, record["num_parts"])
        yield from self._kv(ctx, pool.abort)
        upload_id = record.get("task", {}).get("upload_id")
        if upload_id is not None:
            # The yield sits outside _abort_upload's guard: an Interrupt
            # delivered here must kill the function (see _abort_distributed).
            yield ctx.sleep(0.0)
            self._abort_upload(upload_id)

    # -- distributed replication ----------------------------------------------------------

    def _launch_distributed(self, ctx, task, plan: Plan,
                            inline_worker: bool = False):
        """Set up the part pool and run the task's workers.

        ``inline_worker`` runs a single worker loop inside the calling
        function instead of invoking remote replicators — the hedged
        flavour of the inline path, where the orchestrator itself
        drains the (often one-part) pool so each range still gets a
        progress deadline and a clone budget without paying an extra
        invocation on the clean path.
        """
        num_parts = max(1, math.ceil(task["size"] / self.config.part_size))
        n = 1 if inline_worker else min(plan.n, num_parts)
        # §6 resource limitations: account concurrency quotas are static.
        # Invoking beyond the remaining quota would only queue the
        # excess behind other tasks; clamp instead (the pool lets fewer
        # workers finish the same parts, just slower).
        faas_quota = self._faas_at(plan.loc_key)
        available = max(1, faas_quota.profile.max_concurrency
                        - faas_quota.running)
        if n > available:
            self.stats["quota_clamped"] = self.stats.get("quota_clamped", 0) + 1
            n = available
        task = dict(task, mode="distributed", num_parts=num_parts,
                    part_size=self.config.part_size, plan_n=n)
        upload_id = yield from ctx.initiate_multipart(self.dst_bucket, task["key"])
        task["upload_id"] = upload_id
        if self.scheduling == "fair":
            task["assignments"] = FairAssignment(num_parts, n).all_assignments()
        # The task descriptor is persisted with the pool record.  A
        # crash-retried orchestrator loses its accepted state but finds
        # the pool already created: it must then resume the *original*
        # task (same upload id) rather than re-initialize — in-flight
        # workers are still uploading parts against it.
        state_table = self._state_table(plan.loc_key)
        try:
            created = yield from self._kv(ctx, lambda: state_table.put_if_absent(
                f"pool:{task['task_id']}",
                {"num_parts": num_parts, "claimed": 0, "completed": 0,
                 "aborted": False, "task": dict(task)},
            ))
            if not created:
                # Resuming a predecessor's task: adopt its upload and abort
                # the one we just opened (it would otherwise leak and bill).
                existing = yield from self._kv(
                    ctx, lambda: state_table.get_item(f"pool:{task['task_id']}"))
                yield ctx.sleep(0.0)
                self._abort_upload(upload_id)
                adopted = dict(existing["task"])
                if adopted.get("seq", task["seq"]) < task["seq"]:
                    # The pool record replicates an *older* source
                    # version than the one we were built from — the
                    # source advanced since the record was written.  If
                    # that predecessor already finished (its done marker
                    # landed), its pool is a fossil: adopting it would
                    # claim zero parts, skip finalization, and leak the
                    # task's lock — the newer version would then never
                    # replicate.  A duplicate event delivery reaching a
                    # finished task id after an overwrite hits exactly
                    # this.  Replicate the current version through the
                    # single-function path instead: its snapshot GET
                    # needs no pool, so the fossil record cannot
                    # collide, and it finishes (and unlocks) normally.
                    done = yield from self._kv(
                        ctx, lambda: self._lock_table.get_item(
                            f"done:{task['key']}"))
                    if done is not None and done["seq"] >= adopted.get(
                            "seq", -1):
                        fallback = {k: v for k, v in task.items()
                                    if k not in ("mode", "num_parts",
                                                 "part_size", "upload_id",
                                                 "assignments")}
                        fallback["mode"] = "single"
                        yield from self._run_single(ctx, fallback, plan)
                        return
                task = adopted
        except BaseException:
            # Crashing before the pool record points at our upload means
            # no retry will ever learn this id existed; abort it so the
            # parts don't bill forever.  Once the record is durable the
            # retried orchestrator adopts the same id instead.
            if task.get("upload_id") == upload_id:
                self._abort_upload(upload_id)
            raise
        if inline_worker:
            # The orchestrator drains the pool itself — no extra
            # invocation, but parts (and their hedge clones) still flow
            # through the first-writer-wins pool machinery.
            yield from self._run_distributed_worker(
                ctx, dict(task, worker_index=0))
            return
        faas = self._faas_at(plan.loc_key)
        for i in range(n):
            worker_task = dict(task, worker_index=i)
            # Sequential invocations: the caller pays I per request,
            # matching T_func = I·n + D + P.
            yield from ctx.invoke(faas, self._rep_name, worker_task)

    def _replicator(self, ctx, payload):
        mode = payload.get("mode")
        if mode == "single":
            yield from self._run_single(ctx, payload)
            return
        if mode == "hedge-clone":
            return (yield from self._run_hedge_clone(ctx, payload))
        yield from self._run_distributed_worker(ctx, payload)

    #: How long a worker that drained the pool waits before treating
    #: still-incomplete parts as orphaned (crashed owner) and recovering
    #: them.  In-flight parts recovered early are merely duplicated
    #: work; the done-set makes duplicate completions harmless.
    recovery_grace_s = 10.0

    def _run_distributed_worker(self, ctx, task):
        pool = PartPool(self._state_table(ctx.region.key), task["task_id"],
                        task["num_parts"])
        worker_key = (task["task_id"], task.get("worker_index", 0))
        start = ctx.now
        self.worker_parts.setdefault(worker_key, 0)
        self.worker_spans[worker_key] = (start, start)
        if "assignments" in task:
            # Fair dispatch ablation: a fixed part list, no pool claims.
            # A platform-retried worker simply redoes its list; the
            # done-set deduplicates completions.
            part_indices = iter(task["assignments"][task["worker_index"]])
        else:
            part_indices = None
        while True:
            if part_indices is not None:
                idx = next(part_indices, None)
            else:
                idx = yield from self._kv(ctx, pool.claim)
            if idx is None:
                self.worker_spans[worker_key] = (start, ctx.now)
                if part_indices is None:
                    yield from self._recover_orphaned_parts(ctx, task, pool,
                                                            worker_key, start)
                return
            done = yield from self._replicate_part(ctx, task, pool,
                                                   worker_key, start, idx)
            if done is None:
                return  # task aborted
            if done:
                return  # this worker finished the task

    def _replicate_part(self, ctx, task, pool, worker_key, start, idx):
        """Process: move one part; True = task finished, None = aborted.

        Every part is verified end to end before it enters the done
        set: the downloaded range against the source version's content
        (a corrupted part must never be uploaded), and the store's
        part-ETag response against the uploaded payload (a miswritten
        part must never be assembled).  Either mismatch re-transfers in
        place under ``retransfer_budget``; a poison part — one that
        keeps failing — is quarantined to the DLQ instead of burning
        platform retries.

        With hedging enabled, a part large enough to be worth cloning
        runs through the hedged race (:meth:`_hedged_part`) instead of
        a bare attempt; small parts stay on the plain path but still
        feed the deadline sample window.
        """
        offset = idx * task["part_size"]
        length = min(task["part_size"], task["size"] - offset)
        cfg = self.config
        if (cfg.hedging_enabled and cfg.max_clones_per_part > 0
                and length >= cfg.hedge_min_part_bytes):
            return (yield from self._hedged_part(ctx, task, pool, worker_key,
                                                 start, idx, offset, length))
        t0 = ctx.now
        status = yield from self._part_attempt(ctx, task, pool, idx,
                                               offset, length)
        if cfg.hedging_enabled and status == "ok":
            self._hedge_samples.record(ctx.now, ctx.now - t0)
        return (yield from self._settle_part(ctx, task, pool, worker_key,
                                             start, idx, status))

    def _part_attempt(self, ctx, task, pool, idx, offset, length):
        """Process: download, verify, and upload one part range.

        Returns ``"ok"`` | ``"stale"`` | ``"aborted"`` |
        ``("quarantined", stage, first)`` — never raising
        :class:`PartQuarantined` itself — so a hedged coordinator can
        race two attempts and settle the combined outcome exactly once
        (platform faults still propagate and fail the attempt).
        """
        retransfers = 0
        while True:
            try:
                blob, version = yield from ctx.get_object(
                    self.src_bucket, task["key"], offset, length,
                    concurrency=task["plan_n"],
                )
            except (NoSuchKey, ValueError):
                return "stale"
            verdict = self._verify_download(task, version, blob, offset,
                                            length, "part-get", part=idx)
            if verdict == "stale":
                # Optimistic validation (§5.2): the source changed under
                # us; parts from different versions must never mix.
                return "stale"
            if verdict == "ok":
                break
            if retransfers >= self.config.retransfer_budget:
                first = yield from self._kv(
                    ctx, lambda: pool.mark_quarantined(idx))
                return ("quarantined", "part-get", first)
            retransfers += 1
            self.stats["retransfers"] += 1
        while True:
            try:
                part_etag = yield from ctx.upload_part(
                    self.dst_bucket, task["upload_id"], idx + 1, blob,
                    concurrency=task["plan_n"])
            except NoSuchUpload:
                # The upload vanished under us: a fencing-loss (or abort)
                # cleanup ran elsewhere while this part was in flight.
                # Confirm and stand down quietly instead of failing the
                # whole attempt into the platform retry path.
                aborted = yield from self._kv(ctx, pool.is_aborted)
                if aborted:
                    return "aborted"
                raise
            if part_etag == blob.etag:
                break
            # The store durably recorded a payload other than the one
            # we sent (a miswritten part); re-upload it in place.
            self._record_corruption(task, "part-put", "payload", part=idx)
            if retransfers >= self.config.retransfer_budget:
                first = yield from self._kv(
                    ctx, lambda: pool.mark_quarantined(idx))
                return ("quarantined", "part-put", first)
            retransfers += 1
            self.stats["retransfers"] += 1
        return "ok"

    def _settle_part(self, ctx, task, pool, worker_key, start, idx, status):
        """Process: translate one part attempt's outcome into the worker
        protocol — completion and finalization on success, task abort on
        staleness, quarantine escalation on poison.  Split from the
        attempt itself so the hedged race settles whichever contender's
        outcome won, exactly once."""
        if status == "stale":
            yield from self._abort_task(ctx, task)
            return None
        if status == "aborted":
            return None
        if status != "ok":
            _, stage, first = status
            self._quarantine(task, stage, part=idx, count=first)
        self.worker_parts[worker_key] += 1
        self.worker_spans[worker_key] = (start, ctx.now)
        finished = yield from self._kv(ctx, lambda: pool.complete(idx))
        if finished:
            yield from self._try_finalize(ctx, task)
            self.worker_spans[worker_key] = (start, ctx.now)
            return True
        return False

    # -- speculative hedging: straggler cloning for tail latency -------------------

    def _hedge_deadline(self, now: float) -> Optional[float]:
        """Hedge deadline in seconds for a part starting ``now``, or None.

        The deadline is the windowed ``hedge_deadline_quantile`` of
        recent part completion durations.  Too few samples — cold
        start, or a window the trailing completions have aged out of —
        yields the explicit ``None`` sentinel meaning *never hedge*.
        Never NaN: every comparison against NaN is False, so a NaN
        deadline would silently decide the overrun check in whichever
        direction the comparison happens to be written; the sentinel
        keeps the fail-safe direction explicit.
        """
        cfg = self.config
        cutoff = now - cfg.hedge_window_s
        _times, values = self._hedge_samples.window(cutoff)
        if len(values) < cfg.hedge_min_samples:
            return None
        # Bound the sample buffer: anything older than a full window
        # behind the cutoff can never be read again.
        self._hedge_samples.discard_before(cutoff - cfg.hedge_window_s)
        return self._hedge_samples.window_percentile(
            cfg.hedge_deadline_quantile, cfg.hedge_window_s, now)

    def _fire_hedge(self, ctx, task, idx, seq, deadline_s, elapsed):
        """Process: launch one speculative clone of part ``idx``.

        The invocation forces a cold start — the point of cloning is
        drawing a fresh per-instance channel factor, not re-landing on
        a warm (and possibly just-as-slow) instance — and its request
        fee is charged to the cloning-aware HEDGE_CLONES ledger line so
        hedging's spend is readable separately from ordinary
        replication traffic.
        """
        self.stats["hedges"] += 1
        task_id = task["task_id"]
        if self.tracer is not None:
            self.tracer.event("hedge-start", "engine", task_id,
                              key=task["key"], part=idx, seq=seq,
                              deadline_s=deadline_s, elapsed_s=elapsed)
        faas = self._faas_at(ctx.region.key)
        faas.ledger.charge(ctx.now, CostCategory.HEDGE_CLONES,
                           faas.prices.faas[faas.provider].per_request,
                           f"{faas.region.key}:{self._rep_name}:part{idx}",
                           task=task_id)
        payload = dict(task, mode="hedge-clone", hedge_part=idx,
                       hedge_seq=seq, worker_index=f"hedge{seq}")
        invocation = yield from ctx.invoke(faas, self._rep_name, payload,
                                           fresh_instance=True)
        return invocation

    @staticmethod
    def _clone_guard(invocation):
        """Process: join a clone invocation, mapping platform-level
        failure (a clone that dead-lettered) onto a result value — a
        losing contender must never fail the race's combined future."""
        try:
            result = yield invocation
        except Interrupt:
            raise
        except Exception:
            return {"part_done": False, "status": "error",
                    "finished": False}
        if not isinstance(result, dict):
            return {"part_done": False, "status": "error",
                    "finished": False}
        return result

    def _hedged_part(self, ctx, task, pool, worker_key, start, idx,
                     offset, length):
        """Process: one part under speculative hedging.

        The primary attempt runs as a child process raced against a
        deadline gate derived from the windowed percentile of recent
        completions (:meth:`_hedge_deadline`).  When the part overruns
        its deadline, the range is cloned onto a fresh FaaS instance;
        whichever contender's completion enters the pool's done-set
        first wins, and the loser is cancelled in flight (an O(1)
        interrupt on the timer-wheel kernel).  Every fired hedge
        resolves exactly once — ``won`` (a clone delivered the part),
        ``lost`` (the primary did, or the clone failed while the part
        still completed), or ``cancelled`` (the race was abandoned:
        task abort, quarantine, or this worker itself dying) — and
        double-finalize is excluded structurally: only the done-set's
        first writer can observe the finished transition.
        """
        sim = self.cloud.sim
        cfg = self.config
        t0 = ctx.now
        task_id = task["task_id"]
        deadline_s = self._hedge_deadline(t0)
        primary = ctx.spawn(
            self._part_attempt(ctx, task, pool, idx, offset, length),
            name=f"hedge-primary:{task_id}:{idx}")
        pending: dict[int, object] = {}    # seq -> clone guard process
        fired_at: dict[int, float] = {}    # seq -> fire time
        outcomes: dict[int, str] = {}      # seq -> resolved outcome
        gate_at = None if deadline_s is None else t0 + deadline_s
        status = None
        clone_won = None
        clone_q_first = False
        settled = False
        try:
            while True:
                contenders = []
                if primary is not None:
                    contenders.append(("primary", primary))
                contenders.extend(pending.items())
                if (primary is not None and gate_at is not None
                        and len(fired_at) < cfg.max_clones_per_part):
                    contenders.append(("gate", sim.timeout_at(gate_at)))
                if not contenders:
                    break
                which, value = yield sim.any_of(
                    [fut for _tag, fut in contenders])
                tag = contenders[which][0]
                if tag == "gate":
                    if primary is None or primary.done:
                        continue
                    seq = next(self._hedge_seq)
                    inv = yield from self._fire_hedge(ctx, task, idx, seq,
                                                      deadline_s,
                                                      ctx.now - t0)
                    pending[seq] = ctx.spawn(
                        self._clone_guard(inv),
                        name=f"hedge-guard:{task_id}:{idx}:{seq}")
                    fired_at[seq] = ctx.now
                    gate_at = ctx.now + deadline_s
                    continue
                if tag == "primary":
                    status = value
                    primary = None
                    if status == "ok":
                        for s in fired_at:
                            outcomes.setdefault(s, "lost")
                        settled = True
                        break
                    if not pending:
                        break
                    # The primary failed but a clone is still in flight:
                    # an independent transfer can still deliver the part
                    # (it dodges the primary's per-transfer fault draws).
                    continue
                seq, res = tag, value
                del pending[seq]
                if res.get("part_done"):
                    outcomes[seq] = "won"
                    for s in fired_at:
                        outcomes.setdefault(s, "lost")
                    clone_won = res
                    settled = True
                    break
                if res.get("status") == "quarantined":
                    clone_q_first = clone_q_first or bool(
                        res.get("first_quarantine"))
                if primary is None and not pending:
                    break
        finally:
            if primary is not None and not primary.done:
                # O(1) in-flight cancellation of the losing side.
                primary.interrupt("hedge-lost" if settled else
                                  "hedge-unwound")
            if settled:
                for s in pending:
                    body = self._hedge_live.get((task_id, idx, s))
                    if body is not None and not body.done:
                        body.interrupt("hedge-lost")
            if fired_at:
                for s, at in fired_at.items():
                    outcome = outcomes.get(s, "cancelled")
                    if outcome == "won":
                        self.stats["hedge_wins"] += 1
                    elif outcome == "lost":
                        self.stats["hedge_losses"] += 1
                    else:
                        self.stats["hedge_cancelled"] += 1
                    if self.tracer is not None:
                        self.tracer.event("hedge-resolved", "engine",
                                          task_id, key=task["key"],
                                          part=idx, seq=s, outcome=outcome)
                        self.tracer.span("hedge", "engine", task_id, at,
                                         sim.now, part=idx, seq=s,
                                         outcome=outcome)
        if clone_won is not None:
            self._hedge_samples.record(ctx.now, ctx.now - t0)
            self.worker_spans[worker_key] = (start, ctx.now)
            return bool(clone_won.get("finished"))
        if status == "ok":
            self._hedge_samples.record(ctx.now, ctx.now - t0)
        elif isinstance(status, tuple) and clone_q_first:
            # Merge the rival's first-marker signal so the quarantine
            # count stays exactly-once per (task, part).
            status = (status[0], status[1], True)
        return (yield from self._settle_part(ctx, task, pool, worker_key,
                                             start, idx, status))

    def _run_hedge_clone(self, ctx, payload):
        """Process: one speculative clone invocation (mode "hedge-clone").

        Runs on a cold-started instance whose channel drew an
        independent speed factor, re-transfers exactly one part range,
        and races the original through the done-set's first-writer-wins
        — the integrity layer verifies the winner's bytes exactly once
        and the loser's are discarded by the dedupe.  A clone arriving
        after the part (or task) concluded — including a DLQ redrive
        long after completion — stands down on a one-read snapshot.
        """
        idx = payload["hedge_part"]
        seq = payload["hedge_seq"]
        task_id = payload["task_id"]
        pool = PartPool(self._state_table(ctx.region.key), task_id,
                        payload["num_parts"])
        state = yield from self._kv(ctx, lambda: pool.part_state(idx))
        if not state.exists or state.aborted or state.done:
            return {"part_done": False, "status": "stood-down",
                    "finished": False}
        offset = idx * payload["part_size"]
        length = min(payload["part_size"], payload["size"] - offset)
        live_key = (task_id, idx, seq)
        body = ctx.spawn(
            self._part_attempt(ctx, payload, pool, idx, offset, length),
            name=f"hedge-clone:{task_id}:{idx}:{seq}")
        self._hedge_live[live_key] = body
        try:
            try:
                status = yield body
            except Interrupt as intr:
                if intr.cause not in ("hedge-lost", "hedge-unwound"):
                    # A chaos crash or watchdog kill of this clone — not
                    # a race cancellation — must still fail the function
                    # so the platform's own retry machinery sees it.
                    raise
                return {"part_done": False, "status": "cancelled",
                        "finished": False}
        finally:
            self._hedge_live.pop(live_key, None)
            if not body.done:
                body.interrupt("clone-died")
        if status != "ok":
            if isinstance(status, tuple):
                return {"part_done": False, "status": "quarantined",
                        "first_quarantine": status[2], "finished": False}
            return {"part_done": False, "status": status,
                    "finished": False}
        outcome = yield from self._kv(ctx, lambda: pool.complete_part(idx))
        if outcome.first and outcome.finished:
            # The clone is the exactly-one finisher: the done-set's
            # first writer observed the finished transition.
            yield from self._try_finalize(ctx, payload)
        return {"part_done": outcome.first, "status": "ok",
                "finished": outcome.finished}

    #: A finalizer that crashed mid-finalization loses its claim after
    #: this long; a recovering worker then takes over.
    finalize_lease_s = 60.0

    @staticmethod
    def _claim_lease(table, item_key: str, now: float, lease_s: float,
                     owner: str):
        """Process: atomically claim a leased, single-holder role.

        Returns True for the claimant.  Re-entrant per ``owner`` — a
        platform-retried function resumes its own role — and a holder
        whose lease expired (crashed mid-role) is superseded.

        ``now`` is advisory only: lease expiry is evaluated against the
        clock *at admission time* inside the closure, because under
        injected KV admission delay the round-trip itself consumes
        lease time (the same stale-clock hazard as
        ``ReplicationLockManager.lock``).
        """
        state = {"won": False}

        def attempt(item):
            at = table.sim.now
            if (item is None or item.get("owner") == owner
                    or at - item["at"] > lease_s):
                state["won"] = True
                return {"at": at, "owner": owner}
            return item

        yield table.update_item(item_key, attempt)
        return state["won"]

    @staticmethod
    def _worker_identity(task) -> str:
        return f"w{task.get('worker_index', 0)}"

    def _try_finalize(self, ctx, task):
        """Process: complete the multipart upload and finish the task,
        guarded by a leased claim so exactly one live function
        finalizes, and a crashed finalizer can be superseded."""
        won = yield from self._kv(ctx, lambda: self._claim_lease(
            self._state_table(ctx.region.key), f"finalize:{task['task_id']}",
            ctx.now, self.finalize_lease_s, self._worker_identity(task)))
        if not won:
            return
        # The zombie-writer check, distributed flavour: all parts may be
        # uploaded, but if the task's lease was stolen meanwhile, the
        # assembled object is stale — completing it would publish it
        # over the thief's newer version.  Abort the upload and mark the
        # pool so janitor workers stop resurrecting it.
        ok = yield from self._fence_ok(ctx, task["key"], task["task_id"],
                                       task.get("fence"),
                                       task.get("lock_at"))
        if not ok:
            pool = PartPool(self._state_table(ctx.region.key),
                            task["task_id"], task["num_parts"])
            yield from self._kv(ctx, pool.abort)
            self._abort_upload(task["upload_id"])
            return
        own_write = True
        try:
            version = yield from ctx.complete_multipart(self.dst_bucket,
                                                        task["upload_id"])
        except NoSuchUpload:
            # A previous finalizer completed the upload, then crashed
            # before recording; the object is already at the
            # destination — pick it up and record it.  Not our write:
            # on an ETag mismatch the object may be a newer task's, so
            # the verify failure must stand down, never delete.
            own_write = False
            try:
                version = yield from ctx.head_object(self.dst_bucket,
                                                     task["key"])
            except NoSuchKey:
                return
        yield from self._finish_replicated(ctx, task, version,
                                           own_write=own_write)

    def _recover_orphaned_parts(self, ctx, task, pool, worker_key, start):
        """Fault tolerance (§6): parts claimed by a replicator that died
        mid-execution would otherwise never complete.  After a grace
        period, a surviving replicator that drained the pool re-claims
        any still-missing parts and replicates them itself."""
        aborted = yield from self._kv(ctx, pool.is_aborted)
        if aborted:
            return
        missing = yield from self._kv(ctx, pool.missing_parts)
        if not missing:
            yield from self._recover_finalization(ctx, task)
            return
        # Exactly one drained worker stays behind as the task's janitor;
        # the rest exit immediately (idle function time is billed, so a
        # task on a slow link must not keep n-1 instances waiting).  The
        # claim is leased: a crashed janitor is superseded by the next
        # worker that comes through (e.g. a platform retry).
        janitor = yield from self._kv(ctx, lambda: self._claim_lease(
            self._state_table(ctx.region.key), f"janitor:{task['task_id']}",
            ctx.now, self.recovery_grace_s * 3 + self.finalize_lease_s,
            self._worker_identity(task)))
        if not janitor:
            return
        # Poll with backoff: in the common case the missing parts are
        # merely in flight on other instances and drain within a poll
        # or two; only a genuinely stuck task waits out the full grace.
        deadline = ctx.now + self.recovery_grace_s
        backoff = 0.5
        while ctx.now < deadline:
            yield ctx.sleep(min(backoff, max(0.0, deadline - ctx.now)))
            backoff *= 2
            missing = yield from self._kv(ctx, pool.missing_parts)
            if not missing:
                yield from self._recover_finalization(ctx, task)
                return
        reclaim_lease_s = 60.0
        while True:
            stalled = False
            for idx in missing:
                won = yield from self._kv(ctx, lambda i=idx: pool.try_reclaim(
                    i, self._worker_identity(task), ctx.now,
                    lease_s=reclaim_lease_s))
                if not won:
                    # Another recoverer holds a live reclaim lease on
                    # this part — possibly this janitor's own crashed
                    # predecessor, now that same-owner rewins require
                    # lease expiry too.  Note the stall and retry once
                    # the incumbent's lease can have expired, instead
                    # of abandoning the task to a dead owner.
                    stalled = True
                    continue
                self.stats["recovered_parts"] = (
                    self.stats.get("recovered_parts", 0) + 1)
                done = yield from self._replicate_part(ctx, task, pool,
                                                       worker_key, start, idx)
                if done or done is None:
                    return
            if not stalled:
                return
            yield ctx.sleep(reclaim_lease_s + 1.0)
            aborted = yield from self._kv(ctx, pool.is_aborted)
            if aborted:
                return
            missing = yield from self._kv(ctx, pool.missing_parts)
            if not missing:
                yield from self._recover_finalization(ctx, task)
                return

    def _recover_finalization(self, ctx, task):
        """Process: if all parts are done but nobody recorded the task —
        the finalizer crashed — take over finalization after its lease
        expires."""
        done = yield from self._kv(
            ctx, lambda: self._lock_table.get_item(f"done:{task['key']}"))
        if done is not None and done["seq"] >= task["seq"]:
            return
        fin = yield from self._kv(
            ctx, lambda: self._state_table(ctx.region.key).get_item(
                f"finalize:{task['task_id']}"))
        if (fin is not None
                and fin.get("owner") != self._worker_identity(task)
                and ctx.now - fin["at"] <= self.finalize_lease_s):
            # A live finalizer owns it — but only a *different* one.
            # ``_claim_lease`` is reentrant per owner precisely so a
            # platform-retried finalizer resumes its own crashed
            # finalize; standing down on our own lease would strand the
            # task (the crashed incarnation never comes back, and this
            # retry is the only survivor that will ever look).
            return
        if fin is not None:
            self.stats["recovered_finalize"] = (
                self.stats.get("recovered_finalize", 0) + 1)
        yield from self._try_finalize(ctx, task)

    def _abort_task(self, ctx, task):
        pool = PartPool(self._state_table(ctx.region.key), task["task_id"],
                        task["num_parts"])
        first = yield from self._kv(ctx, pool.abort)
        if not first:
            return
        self.stats["aborted"] += 1
        if self.tracer is not None:
            self.tracer.event("abort", "engine", task["task_id"],
                              key=task["key"], etag=task["etag"])
        self.recorder.record_abort(task["key"], task["etag"])
        # The yield must sit *outside* any exception guard: an Interrupt
        # (chaos crash, watchdog) delivered here must kill this function
        # so the platform retries it — a bare except swallowing it would
        # leave a crashed worker running on as a zombie.  The abort
        # itself is best-effort with failures counted (_abort_upload).
        yield ctx.sleep(0.0)
        self._abort_upload(task["upload_id"])
        # Release the lock and re-trigger so the newest version is
        # replicated by a fresh task ("we expect a retry will go
        # through", §5.2).
        yield from self._finish(ctx, task["task_id"], task["key"], None,
                                retrigger_if_unreplicated=True)

    # -- completion plumbing ------------------------------------------------------------------

    def _finish_replicated(self, ctx, task, version: ObjectVersion,
                           kind: str = "created", own_write: bool = True):
        if self.config.verify_after_finalize:
            # Verify-after-finalize: the destination's ETag must match
            # the content the task set out to replicate *before* the
            # done marker vouches for it forever.  On the clean path
            # both sides are already-cached hash strings.
            verify_from = ctx.now
            verified = version.etag == task["etag"]
            if self.tracer is not None:
                self.tracer.span("verify", "engine", task["task_id"],
                                 verify_from, ctx.now, key=task["key"],
                                 expected=task["etag"], actual=version.etag,
                                 ok=verified)
            if not verified:
                self.stats["finalize_verify_failed"] += 1
                if own_write:
                    # Our own assembly is poisoned: count it, withdraw
                    # it (the destination must not serve bytes nobody
                    # vouches for), and hand the key to a fresh task.
                    # A mismatch on an *adopted* object (the crashed-
                    # finalizer fallback) is a newer task's write, not
                    # corruption — stand down without deleting.
                    self._record_corruption(task, "finalize", "payload")
                    yield ctx.sleep(0.0)
                    try:
                        self.dst_bucket.delete_object(task["key"], ctx.now,
                                                      notify=False)
                    except Exception:
                        pass
                yield from self._finish(ctx, task["task_id"], task["key"],
                                        None, retrigger_if_unreplicated=True)
                return
        if self.health is not None:
            # A completed replication read the source and wrote the
            # destination: both stores answered — the successes that
            # walk a half-open ("store", region) breaker closed.
            self.health.record(("store", self.src_bucket.region.key), True)
            self.health.record(("store", self.dst_bucket.region.key), True)
        if self.tracer is not None:
            self.tracer.event("finalize", "engine", task["task_id"],
                              key=task["key"], seq=task["seq"],
                              etag=task["etag"], fence=task.get("fence"),
                              op="put", loc=ctx.region.key,
                              verified=self.config.verify_after_finalize)
        superseded = yield from self._mark_done(ctx, task["key"],
                                                task["etag"], task["seq"],
                                                ctx.now)
        if superseded is not None:
            yield from self._reconverge_after_superseded(
                ctx, task["task_id"], task["key"],
                task["etag"] if own_write else None)
        plan = None
        if "plan_n" in task:
            plan = Plan(
                n=task["plan_n"], loc_key=task.get("loc_key", ctx.region.key),
                path=(task.get("loc_key", ctx.region.key),
                      self.src_bucket.region.key, self.dst_bucket.region.key),
                predicted_s=task.get("predicted_s", 0.0),
                percentile=self.config.percentile,
                compliant=True, inline=task.get("mode") is None,
                predicted_median_s=task.get("predicted_median_s", 0.0),
            )
        self._record_visible(task["task_id"], TaskResult(
            key=task["key"], etag=task["etag"], seq=task["seq"],
            event_time=task["event_time"], visible_time=ctx.now,
            plan=plan, kind=kind, started=task.get("started", task["event_time"]),
        ))
        yield from self._finish(ctx, task["task_id"], task["key"], task["seq"])

    def _finish(self, ctx, task_id: str, key: str,
                replicated_seq: Optional[int],
                retrigger_if_unreplicated: bool = False):
        """Unlock and re-trigger replication of any newer pending version
        (Algorithm 2's UNLOCK)."""
        outcome = yield from self._kv(
            ctx, lambda: self.locks.release(key, owner=task_id))
        if not outcome.released:
            # The lease was stolen while we worked: the record (and any
            # pending registration on it) now belongs to the thief, who
            # owns this key's convergence.  Surface the loss instead of
            # silently no-oping — it is the observable trace of every
            # zombie-writer interleaving.
            self.stats["lock_lost"] += 1
            if self.tracer is not None:
                self.tracer.event("lock-lost", "engine", task_id, key=key)
            return
        pending = outcome.pending
        needs_retrigger = False
        if pending is not None:
            if replicated_seq is None or pending.seq > replicated_seq:
                needs_retrigger = True
        elif retrigger_if_unreplicated:
            # Aborted without a registered pending version: the newer
            # version's own notification may still be in flight, but we
            # re-check the source now to bound the replication delay.
            needs_retrigger = key in self.src_bucket
        if not needs_retrigger:
            return
        try:
            current = yield from ctx.head_object(self.src_bucket, key)
        except NoSuchKey:
            if pending is not None:
                # A newer version was registered while we held the lock,
                # but the object has since been deleted at the source.
                # The pending writer quit when it registered, so nobody
                # else will converge the destination: propagate the
                # deletion (idempotent with the DELETE event's own task).
                self.stats["retriggered"] += 1
                if self.tracer is not None:
                    self.tracer.event("retrigger", "engine", task_id,
                                      key=key, seq=pending.seq,
                                      kind="deleted")
                self._dispatch_event({
                    "kind": "deleted", "key": key, "etag": pending.etag,
                    "seq": pending.seq, "size": 0,
                    "event_time": ctx.now,
                })
            return
        if replicated_seq is not None and current.sequencer <= replicated_seq:
            return
        self.stats["retriggered"] += 1
        if self.tracer is not None:
            self.tracer.event("retrigger", "engine", task_id, key=key,
                              seq=current.sequencer, kind="created")
        self._dispatch_event({
            "kind": "created", "key": key, "etag": current.etag,
            "seq": current.sequencer, "size": current.size,
            "event_time": current.put_time,
        })
