"""Consistent-hash sharding of the replication key-space.

The multi-tenant service splits each tenant's key-space across ``N``
engine workers, one per shard: every shard owns its own lock domain
(a per-``{tenant}-s{shard}`` KV table), outage backlog, and stats, so
shards never contend on control-plane state and a future per-shard
parallel runner needs no further refactoring.

Placement uses a **consistent hash ring** with virtual nodes.  Hashes
come from :mod:`hashlib` (MD5, used purely as a mixer) — never from
Python's ``hash()``, whose per-process randomization would break the
simulator's replay determinism.  With ``V`` virtual nodes per shard,
growing the ring from ``N`` to ``N+1`` shards remaps only ``≈ 1/(N+1)``
of the key-space — the property :meth:`ShardRouter.rebalance` measures
as ``shard_migrations``.

Routing keys are ``"{tenant}:{key}"``, so one object's events always
land on one shard (its lock and done marker live in exactly one lock
domain) while a tenant's keys spread across shards.  A 1-shard ring
routes everything to shard 0; the shard-equivalence tests assert that
the *outcomes* (final objects, done markers, tenant ledger spend) of a
1-shard and an N-shard run are identical even though the interleaving
is not.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "ShardRouter"]


def _ring_hash(value: str) -> int:
    """Stable 64-bit position on the ring (process-independent)."""
    return int.from_bytes(
        hashlib.md5(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hash ring mapping string keys to shard indices."""

    def __init__(self, shards: int, vnodes: int = 64):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards = shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(vnodes):
                points.append((_ring_hash(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise)."""
        if self.shards == 1:
            return 0
        index = bisect.bisect_right(self._positions, _ring_hash(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]


class ShardRouter:
    """Tracks live key → shard assignments over a :class:`HashRing`.

    The router remembers every routing decision so a later
    :meth:`rebalance` can report how many live assignments the new ring
    moved (``shard_migrations`` — per tenant and in total).  Assignments
    are plain dict state; nothing here consumes simulated time.
    """

    def __init__(self, shards: int, vnodes: int = 64):
        self.ring = HashRing(shards, vnodes)
        self._assignments: dict[str, int] = {}

    @property
    def shards(self) -> int:
        return self.ring.shards

    @staticmethod
    def routing_key(tenant_id: str, key: str) -> str:
        return f"{tenant_id}:{key}"

    def route(self, tenant_id: str, key: str) -> int:
        """Shard for one (tenant, object-key) pair, recorded."""
        rkey = f"{tenant_id}:{key}"
        shard = self._assignments.get(rkey)
        if shard is None:
            shard = self.ring.shard_of(rkey)
            self._assignments[rkey] = shard
        return shard

    def assignments(self) -> dict[str, int]:
        return dict(self._assignments)

    def rebalance(self, shards: int) -> dict[str, int]:
        """Swap in a ``shards``-wide ring; report moved assignments.

        Returns ``{tenant_id: moved_count}`` for every tenant that had
        at least one live assignment change shards (the service folds
        these into the per-tenant ``shard_migrations`` counters).
        Assignments are updated in place: subsequent :meth:`route`
        calls see the new placement.
        """
        new_ring = HashRing(shards, self.ring.vnodes)
        moved: dict[str, int] = {}
        for rkey, old_shard in sorted(self._assignments.items()):
            new_shard = new_ring.shard_of(rkey)
            if new_shard != old_shard:
                tenant_id = rkey.split(":", 1)[0]
                moved[tenant_id] = moved.get(tenant_id, 0) + 1
                self._assignments[rkey] = new_shard
        self.ring = new_ring
        return moved
