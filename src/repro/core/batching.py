"""SLO-bounded batching (§5.4, Algorithm 4).

When the SLO is loose relative to an object's replication time, AReplica
delays replication toward the deadline so that multiple updates of a hot
object aggregate into one transfer.  Each arriving version computes its
latest safe trigger instant, ``deadline − T_rep(obj) − ε``, and parks on
a durable workflow timer.  When a timer fires for a version that is
still pending (not superseded by an earlier flush), the **newest**
version of the object is replicated; versions that find themselves (or
a newer version) already flushed simply quit.  Cost therefore scales
with the SLO, not with the update frequency (Fig 22).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import ReplicaConfig
from repro.simcloud.objectstore import Bucket, ObjectEvent
from repro.simcloud.sim import Simulator
from repro.simcloud.workflow import WorkflowTimers

__all__ = ["BatchingBuffer"]


class BatchingBuffer:
    """Algorithm 4 over durable workflow timers."""

    def __init__(
        self,
        sim: Simulator,
        timers: WorkflowTimers,
        config: ReplicaConfig,
        src_bucket: Bucket,
        estimate_s: Callable[[int], float],
        flush: Callable[[ObjectEvent], None],
    ):
        """``estimate_s(size)`` is the planner's percentile replication-
        time estimate; ``flush(event)`` hands an event to the engine."""
        self.sim = sim
        self.timers = timers
        self.config = config
        self.src_bucket = src_bucket
        self.estimate_s = estimate_s
        self.flush = flush
        self._pending: dict[str, set[str]] = {}
        self.stats = {"immediate": 0, "delayed": 0, "superseded": 0, "flushes": 0}

    def on_event(self, event: ObjectEvent) -> None:
        """Admit one created/deleted notification (Algorithm 4's BATCH)."""
        if event.kind == "deleted":
            # Deletes are not aggregated; propagate on schedule like any
            # other version so ordering with pending PUTs is preserved.
            self._flush_latest(event)
            return
        deadline = event.event_time + self.config.slo_seconds
        trigger = deadline - self.estimate_s(event.size) - self.config.batching_epsilon
        if trigger <= self.sim.now:
            self.stats["immediate"] += 1
            self._flush_latest(event)
            return
        self.stats["delayed"] += 1
        self._pending.setdefault(event.key, set()).add(event.etag)
        self.timers.schedule_at(trigger, lambda: self._on_deadline(event),
                                detail=f"batch:{event.key}")

    def _on_deadline(self, event: ObjectEvent) -> None:
        pending = self._pending.get(event.key, set())
        if event.etag not in pending:
            # A flush triggered by an older sibling already covered this
            # version (it replicated the newest object at that time, or
            # a newer event will) — nothing to do.
            self.stats["superseded"] += 1
            return
        self._flush_latest(event)

    def _flush_latest(self, event: ObjectEvent) -> None:
        """Replicate the newest state of the object right now."""
        self._pending.pop(event.key, None)
        self.stats["flushes"] += 1
        self.flush(event)

    def pending_count(self, key: Optional[str] = None) -> int:
        if key is not None:
            return len(self._pending.get(key, ()))
        return sum(len(v) for v in self._pending.values())
