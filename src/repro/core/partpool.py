"""Decentralized part-granularity scheduling (§5.1, Algorithm 1).

A replication task's data parts live in a shared pool backed by a
serverless cloud database.  Replicator functions autonomously claim
parts as they become available, so fast instances naturally process
more parts than slow ones and the per-instance finish times even out
(Fig 12/17).  The protocol costs exactly **two database accesses per
part**: one atomic counter increment to claim the part, and one to
record its completion; the replicator that records the final
completion learns it is the finisher and concludes the task.

The module also provides the *fair dispatch* ablation (Fig 17's
baseline): a static, equal pre-assignment of parts computed at
invocation time with no shared state.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.simcloud.kvstore import KvTable

__all__ = ["PartPool", "PartCompletion", "PartState", "FairAssignment"]


class PartCompletion(NamedTuple):
    """Outcome of one :meth:`PartPool.complete_part` call."""

    #: True for the writer whose completion entered the done-set —
    #: the first-writer-wins signal a hedged race settles on.
    first: bool
    #: True for the exactly-one caller that observed the transition to
    #: fully-complete (that caller finalizes the task).
    finished: bool


class PartState(NamedTuple):
    """Snapshot of one part for a clone's stand-down check."""

    exists: bool
    aborted: bool
    done: bool


class PartPool:
    """Shared pool of part indices for one replication task."""

    def __init__(self, table: KvTable, task_id: str, num_parts: int):
        if num_parts < 1:
            raise ValueError("a task needs at least one part")
        self.table = table
        self.task_id = task_id
        self.num_parts = num_parts

    @property
    def _key(self) -> str:
        return f"pool:{self.task_id}"

    def create(self):
        """Process: initialize the pool record (one DB write)."""
        yield self.table.put_item(
            self._key,
            {"num_parts": self.num_parts, "claimed": 0, "completed": 0,
             "aborted": False},
        )

    def claim(self):
        """Process: atomically claim the next part index.

        Returns the zero-based part index, or None when the pool is
        exhausted (the replicator should then stop or enter recovery).
        """
        claimed = yield self.table.increment(self._key, "claimed")
        if claimed > self.num_parts:
            return None
        if self.table.tracer is not None:
            self.table.tracer.event("part-claim", "pool", self.task_id,
                                    idx=claimed - 1)
        return claimed - 1

    def complete(self, part_index: int):
        """Process: record ``part_index`` done; True for the finisher.

        Completion is recorded in a per-task done-set, so duplicated
        work — a recovered part whose original owner was merely slow,
        or a platform-retried function redoing its parts — counts once.
        Exactly one call observes the transition to fully-complete.
        """
        outcome = yield from self.complete_part(part_index)
        return outcome.finished

    def complete_part(self, part_index: int):
        """Process: like :meth:`complete`, but returns the full
        :class:`PartCompletion` — ``first`` tells a hedged contender
        whether *its* bytes entered the done-set (first-writer-wins)
        or a rival already completed the part.  Same single KV update.
        """
        state = {"finished": False, "first": False}

        def mark(item):
            done = item.setdefault("done_parts", [])
            if part_index in done:
                item["duplicates"] = item.get("duplicates", 0) + 1
                return item
            done.append(part_index)
            item["completed"] += 1
            state["first"] = True
            state["finished"] = item["completed"] == self.num_parts
            return item

        yield self.table.update_item(self._key, mark)
        if self.table.tracer is not None:
            self.table.tracer.event("part-complete", "pool", self.task_id,
                                    idx=part_index,
                                    first=state["first"],
                                    finished=state["finished"])
        return PartCompletion(state["first"], state["finished"])

    def mark_quarantined(self, part_index: int):
        """Process: record that ``part_index`` was poison-quarantined;
        True only for the first marker of this part.

        The part stays *missing* — a later redrive (after the fault
        clears) re-claims and completes it — but the durable record
        lets operators and the corruption drill see which parts burned
        their retransfer budget, and janitor workers deprioritize them.
        The first-marker return makes quarantine accounting idempotent
        per (task, part): when a hedged clone and its original both
        burn the budget on the same poisoned range, exactly one caller
        counts it (and emits the trace event).
        """
        state = {"first": False}

        def mark(item):
            item = item or {}
            quarantined = item.setdefault("quarantined_parts", [])
            if part_index not in quarantined:
                quarantined.append(part_index)
                state["first"] = True
            return item

        yield self.table.update_item(self._key, mark)
        if state["first"] and self.table.tracer is not None:
            self.table.tracer.event("part-quarantine", "pool", self.task_id,
                                    idx=part_index)
        return state["first"]

    def quarantined_parts(self):
        """Process: part indices recorded as poison-quarantined."""
        item = yield self.table.get_item(self._key)
        return sorted(item.get("quarantined_parts", [])) if item else []

    def missing_parts(self):
        """Process: part indices not yet recorded as done (recovery)."""
        item = yield self.table.get_item(self._key)
        done = set(item.get("done_parts", [])) if item else set()
        return [i for i in range(self.num_parts) if i not in done]

    def try_reclaim(self, part_index: int, owner: str, now: float,
                    lease_s: float = 60.0):
        """Process: atomically take over an orphaned part.

        A crashed replicator's claimed-but-never-completed part is
        recovered by whichever surviving replicator wins this leased
        conditional write; a recoverer that crashed mid-part is itself
        superseded once its lease expires.

        A same-owner rewin is only granted under the same expiry rule.
        The earlier unconditional ``owner == incumbent`` re-entrancy
        clause let a *superseded* former owner — one whose lease had
        expired and whose part another recoverer already took over —
        silently "win" the reclaim back, refreshing ``at`` and racing
        two live writers on one part.  Re-entrancy was only ever needed
        for a retried recoverer resuming work it still holds, and that
        caller's own lease record has expired by the time the platform
        retries it (retry backoff starts at 1 s only for transient
        faults; a crashed recoverer's record ages past ``lease_s``
        before the pool drains again), so expiry alone covers it
        without the rewin hole.
        """
        state = {"won": False}

        def attempt(item):
            if item is None or now - item["at"] > lease_s:
                state["won"] = True
                return {"owner": owner, "at": now}
            return item

        yield self.table.update_item(f"reclaim:{self.task_id}:{part_index}",
                                     attempt)
        return state["won"]

    def part_state(self, part_index: int):
        """Process: one-read (exists, aborted, done) snapshot of a part.

        The hedge clone's stand-down check: a clone invoked for a part
        that has since completed (or a task that aborted, or a pool
        record already cleaned up) must do nothing — one GET instead of
        the two reads ``is_aborted`` + ``missing_parts`` would cost.
        """
        item = yield self.table.get_item(self._key)
        if item is None:
            return PartState(exists=False, aborted=False, done=False)
        return PartState(exists=True,
                         aborted=bool(item.get("aborted")),
                         done=part_index in item.get("done_parts", []))

    def abort(self):
        """Process: mark the task aborted (optimistic-validation failure).

        Returns True for the replicator that flipped the flag — that
        one replicator performs the cleanup/re-trigger, the rest simply
        stop (avoids a thundering herd of retries).
        """
        def flip(item):
            item = item or {}
            item["abort_claims"] = item.get("abort_claims", 0) + 1
            item["aborted"] = True
            return item

        item = yield self.table.update_item(self._key, flip)
        first = item["abort_claims"] == 1
        if first and self.table.tracer is not None:
            self.table.tracer.event("pool-abort", "pool", self.task_id)
        return first

    def is_aborted(self):
        """Process: read the abort flag."""
        item = yield self.table.get_item(self._key)
        return bool(item and item.get("aborted"))

    def peek_progress(self) -> dict:
        """Zero-cost snapshot for tests/metrics."""
        return self.table.peek(self._key) or {}


class FairAssignment:
    """Static equal dispatch — the ablation baseline of Fig 17.

    Part indices are split into contiguous equal ranges at invocation
    time; each replicator receives its fixed range and no coordination
    happens afterwards.  A slow instance therefore drags the task's
    completion time to its own finish time.
    """

    def __init__(self, num_parts: int, num_functions: int):
        if num_functions < 1:
            raise ValueError("need at least one function")
        self.num_parts = num_parts
        self.num_functions = num_functions

    def parts_for(self, worker_index: int) -> list[int]:
        """The fixed part indices assigned to ``worker_index``."""
        if not 0 <= worker_index < self.num_functions:
            raise IndexError(worker_index)
        base, extra = divmod(self.num_parts, self.num_functions)
        start = worker_index * base + min(worker_index, extra)
        count = base + (1 if worker_index < extra else 0)
        return list(range(start, start + count))

    def all_assignments(self) -> list[list[int]]:
        return [self.parts_for(i) for i in range(self.num_functions)]
