"""Outage-aware health tracking (degraded-mode routing, §6 extended).

The paper's planner (§5.3, Algorithm 3) assumes every execution
location is live; PR 2's retries and fencing cover *transient* faults
but a sustained outage — a FaaS platform, a regional KV database, or a
WAN path dark for minutes — just burns retry budget and piles up dead
letters.  This module is the substrate-health ledger the rest of the
system consults to degrade gracefully instead:

* a :class:`CircuitBreaker` per health *target* — ``("faas", region)``,
  ``("kv", region)``, ``("store", region)``, or a replication path —
  with the classic closed → open → half-open state machine, opened by
  either a consecutive-failure run or a sustained EWMA error rate;
* a :class:`HealthTracker` that owns the breakers, notifies
  subscribers on every transition (the engine parks/probes/drains off
  these), and schedules the open → half-open cooldown on the *sim
  clock* so that recovery is deterministic and happens even when the
  outage has scared all traffic away.

Everything is driven off recorded successes/failures — there is no
background prober; the half-open probe is the engine re-dispatching one
parked task.  All timestamps come from the injected ``clock`` (the
simulator), never the wall clock, so a seeded run replays exactly.

Besides the fault-driven breaker states there is one *administrative*
state: a target may be **cordoned** (``cordon`` / ``uncordon``) by a
planned operation — a region evacuation or an orchestration
switchover.  A cordoned target is healthy but closed to new traffic:
``available()`` is False, the planner treats it as no-route-with-
intent, and — crucially — the breaker's half-open machinery must not
re-admit traffic while the cordon holds (cordon wins over cooldown
expiry).  In-flight work is unaffected; cordoning stops *admission*,
not execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

__all__ = ["BreakerConfig", "BreakerState", "CircuitBreaker",
           "HealthTracker", "NoRouteAvailable"]

#: A health target: ("faas"|"kv"|"store"|"path", key...).  Any hashable
#: tuple works; the first element names the substrate.
Target = tuple


class NoRouteAvailable(RuntimeError):
    """Every candidate execution location sits behind an open circuit.

    Raised by the planner when degraded-mode filtering leaves no ladder
    candidate; the engine catches it and parks the task in the backlog
    instead of dispatching into a known-dark region.
    """


class BreakerState:
    """The circuit states, as stable string constants.

    ``CORDONED`` is not a breaker transition — it is the administrative
    overlay :meth:`HealthTracker.cordon` applies on top of whatever the
    underlying breaker is doing; :meth:`HealthTracker.state` reports it
    with priority over the breaker's own state.  ``UNCORDONED`` is the
    notification subscribers receive when the overlay lifts (the
    effective state reverts to the breaker's).
    """

    CLOSED = "closed"          # healthy: traffic flows, failures counted
    OPEN = "open"              # dark: no traffic routed until cooldown
    HALF_OPEN = "half-open"    # probing: limited traffic decides the verdict
    CORDONED = "cordoned"      # administratively closed to new admission
    UNCORDONED = "uncordoned"  # notification only: the cordon lifted


@dataclass(frozen=True)
class BreakerConfig:
    """Per-target circuit-breaker tuning (one config for all targets).

    A breaker opens on either signal: ``failure_threshold`` consecutive
    failures (a hard outage fails everything immediately), or an EWMA
    error rate above ``ewma_threshold`` once ``ewma_min_samples``
    results have been seen (a brown-out fails *most* things).  The
    consecutive threshold is deliberately high enough that a background
    chaos storm (crash_prob ≈ 0.1) essentially never strings together a
    run by luck: 0.1**8 ≈ 1e-8 per attempt.
    """

    failure_threshold: int = 8
    ewma_alpha: float = 0.2
    ewma_threshold: float = 0.9
    ewma_min_samples: int = 25
    #: Seconds an open circuit waits before admitting a half-open probe.
    cooldown_s: float = 30.0
    #: Cooldown growth per re-open within one incident (a failed probe
    #: re-opens with a longer wait), capped at ``cooldown_max_s``.
    cooldown_backoff: float = 2.0
    cooldown_max_s: float = 480.0
    #: Successes required in half-open before the circuit closes.
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.ewma_threshold <= 1.0:
            raise ValueError("ewma_threshold must be in (0, 1]")
        if self.ewma_min_samples < 1:
            raise ValueError("ewma_min_samples must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.cooldown_backoff < 1.0:
            raise ValueError("cooldown_backoff must be >= 1")
        if self.cooldown_max_s < self.cooldown_s:
            raise ValueError("cooldown_max_s must be >= cooldown_s")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")


class CircuitBreaker:
    """One target's state machine; transitions are applied by the tracker."""

    __slots__ = ("state", "consecutive_failures", "ewma", "samples",
                 "opens_total", "streak_opens", "opened_seq", "open_until",
                 "half_open_successes", "last_failure_at", "last_success_at")

    def __init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.ewma = 0.0
        self.samples = 0
        #: Lifetime open count (observability).
        self.opens_total = 0
        #: Opens within the current incident — drives cooldown backoff,
        #: reset when the circuit finally closes.
        self.streak_opens = 0
        #: Monotonic guard for scheduled half-open timers: a timer fires
        #: only if the breaker is still in the OPEN epoch it was armed in.
        self.opened_seq = 0
        self.open_until = 0.0
        self.half_open_successes = 0
        self.last_failure_at: Optional[float] = None
        self.last_success_at: Optional[float] = None


class HealthTracker:
    """Per-target circuit breakers over the sim clock.

    ``clock`` is a zero-argument callable returning simulated time;
    ``schedule(delay_s, fn)`` (optional, normally ``sim.call_later``)
    arms the open → half-open cooldown timer so recovery fires even
    with zero ongoing traffic.  Without ``schedule`` the transition
    happens lazily on the next :meth:`state`/:meth:`available` query.
    """

    def __init__(self, clock: Callable[[], float],
                 schedule: Optional[Callable[[float, Callable[[], None]], object]] = None,
                 config: Optional[BreakerConfig] = None):
        self._clock = clock
        self._schedule = schedule
        self.config = config or BreakerConfig()
        self._breakers: dict[Target, CircuitBreaker] = {}
        self._open_count = 0
        #: Administrative cordons: target -> sim time the cordon was
        #: applied.  Orthogonal to the breakers — a target can be
        #: cordoned while its breaker is in any state.
        self._cordoned: dict[Target, float] = {}
        self._subscribers: list[Callable[[Target, str], None]] = []
        #: Every state transition as ``(sim_time, target, new_state)`` —
        #: the drill's recovery-time stats and the determinism tests
        #: read this log.
        self.transitions: list[tuple[float, Target, str]] = []

    # -- recording -----------------------------------------------------------

    def record(self, target: Target, ok: bool) -> None:
        """Fold one operation outcome into ``target``'s breaker."""
        cfg = self.config
        b = self._breakers.get(target)
        if b is None:
            b = self._breakers[target] = CircuitBreaker()
        now = self._clock()
        if b.state == BreakerState.OPEN:
            # No traffic is *supposed* to reach an open target; results
            # that still arrive (in-flight stragglers) are ignored so a
            # straggler's success cannot short-circuit the cooldown.
            return
        if ok:
            b.last_success_at = now
            b.samples += 1
            b.consecutive_failures = 0
            b.ewma += cfg.ewma_alpha * (0.0 - b.ewma)
            if b.state == BreakerState.HALF_OPEN:
                b.half_open_successes += 1
                if b.half_open_successes >= cfg.half_open_successes:
                    self._close(target, b)
            return
        b.last_failure_at = now
        b.samples += 1
        b.consecutive_failures += 1
        b.ewma += cfg.ewma_alpha * (1.0 - b.ewma)
        if b.state == BreakerState.HALF_OPEN:
            self._open(target, b, now)
        elif (b.consecutive_failures >= cfg.failure_threshold
                or (b.samples >= cfg.ewma_min_samples
                    and b.ewma >= cfg.ewma_threshold)):
            self._open(target, b, now)

    def record_success(self, target: Target) -> None:
        self.record(target, True)

    def record_failure(self, target: Target) -> None:
        self.record(target, False)

    # -- queries -------------------------------------------------------------

    @property
    def any_open(self) -> bool:
        """Cheap hot-path gate: is any circuit open — or cordoned?

        The count is maintained on transitions, so the healthy case is
        one integer compare plus one empty-dict check.  It stays
        conservatively True between the cooldown expiring and the
        (scheduled or lazy) half-open transition — callers then take
        the filtering path, whose per-target :meth:`available` checks
        apply lazy transitions.  Administrative cordons engage the same
        filtering path: a cordon is NoRoute-with-intent, so the planner
        and router must consult :meth:`available` while one exists.
        """
        return self._open_count > 0 or bool(self._cordoned)

    def state(self, target: Target) -> str:
        """Current effective state; absent targets are healthy (closed).

        A cordon overrides everything — including the lazy cooldown
        expiry below, so an OPEN breaker whose cooldown lapses under a
        cordon does *not* slip into half-open (no probe re-admission
        while cordoned).  The lazy transition resumes on the first
        query after :meth:`uncordon`.
        """
        if self._cordoned and target in self._cordoned:
            return BreakerState.CORDONED
        b = self._breakers.get(target)
        if b is None:
            return BreakerState.CLOSED
        if (b.state == BreakerState.OPEN
                and self._clock() >= b.open_until):
            # Lazy cooldown expiry (backup for trackers without a
            # scheduler, and for queries racing the timer).
            self._half_open(target, b)
        return b.state

    def available(self, target: Target) -> bool:
        """Routable?  Closed and half-open admit traffic; an open
        circuit or an administrative cordon does not."""
        return self.state(target) not in (BreakerState.OPEN,
                                          BreakerState.CORDONED)

    def snapshot(self) -> dict[str, dict]:
        """JSON-friendly per-target state (CLI/machine-checkable drills)."""
        out: dict[str, dict] = {}
        for target in sorted(set(self._breakers) | set(self._cordoned),
                             key=str):
            b = self._breakers.get(target)
            entry = {
                "state": b.state if b is not None else BreakerState.CLOSED,
                "ewma_error_rate": round(b.ewma, 4) if b is not None else 0.0,
                "consecutive_failures":
                    b.consecutive_failures if b is not None else 0,
                "samples": b.samples if b is not None else 0,
                "opens": b.opens_total if b is not None else 0,
            }
            if target in self._cordoned:
                entry["state"] = BreakerState.CORDONED
                entry["cordoned_at"] = self._cordoned[target]
            out[":".join(str(part) for part in target)] = entry
        return out

    def open_targets(self) -> list[Target]:
        return [t for t, b in self._breakers.items()
                if b.state == BreakerState.OPEN]

    # -- administrative cordons ------------------------------------------------

    def cordon(self, target: Target) -> bool:
        """Administratively close ``target`` to new admission.

        Distinct from a chaos-opened breaker: the substrate is healthy
        and in-flight work keeps running, but the router and planner
        treat the target as unavailable until :meth:`uncordon`.  Returns
        False (and does nothing) if already cordoned.  Subscribers are
        notified with :data:`BreakerState.CORDONED`.
        """
        if target in self._cordoned:
            return False
        self._cordoned[target] = self._clock()
        self._notify(target, BreakerState.CORDONED)
        return True

    def uncordon(self, target: Target) -> bool:
        """Lift an administrative cordon; False if none was in place.

        Subscribers are notified with :data:`BreakerState.UNCORDONED`
        (the engine re-admits its backlog off this signal); the
        effective state reverts to the underlying breaker's.
        """
        if target not in self._cordoned:
            return False
        del self._cordoned[target]
        self._notify(target, BreakerState.UNCORDONED)
        return True

    def is_cordoned(self, target: Target) -> bool:
        return target in self._cordoned

    def cordoned_targets(self) -> list[Target]:
        return sorted(self._cordoned, key=str)

    # -- subscriptions ---------------------------------------------------------

    def subscribe(self, fn: Callable[[Target, str], None]) -> None:
        """``fn(target, new_state)`` on every transition, synchronously,
        in subscription order (determinism matters: the engine drains
        backlogs from these callbacks)."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[Target, str], None]) -> None:
        """Withdraw a subscriber (idempotent).  A rolling engine restart
        detaches the torn-down engine here so the replacement — not the
        husk — reacts to subsequent transitions."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    # -- transitions -----------------------------------------------------------

    def _notify(self, target: Target, state: str) -> None:
        self.transitions.append((self._clock(), target, state))
        for fn in list(self._subscribers):
            fn(target, state)

    def _open(self, target: Target, b: CircuitBreaker, now: float) -> None:
        cfg = self.config
        if b.state != BreakerState.OPEN:
            self._open_count += 1
        b.state = BreakerState.OPEN
        b.opens_total += 1
        b.streak_opens += 1
        b.opened_seq += 1
        b.half_open_successes = 0
        cooldown = min(cfg.cooldown_max_s,
                       cfg.cooldown_s
                       * cfg.cooldown_backoff ** (b.streak_opens - 1))
        b.open_until = now + cooldown
        self._notify(target, BreakerState.OPEN)
        if self._schedule is not None:
            seq = b.opened_seq

            def try_half_open() -> None:
                # Cordon wins: a cooldown expiring under an
                # administrative cordon must not re-admit traffic.  The
                # lazy path in state() resumes recovery after uncordon
                # (any_open stays True while the breaker is open, so
                # routing keeps consulting state()).
                if (b.state == BreakerState.OPEN and b.opened_seq == seq
                        and target not in self._cordoned
                        and self._clock() >= b.open_until):
                    self._half_open(target, b)

            self._schedule(cooldown, try_half_open)

    def _half_open(self, target: Target, b: CircuitBreaker) -> None:
        self._open_count -= 1
        b.state = BreakerState.HALF_OPEN
        b.half_open_successes = 0
        self._notify(target, BreakerState.HALF_OPEN)

    def _close(self, target: Target, b: CircuitBreaker) -> None:
        b.state = BreakerState.CLOSED
        b.consecutive_failures = 0
        # A recovered target starts with a clean slate: the pre-outage
        # error history must not re-trip the EWMA on the first hiccup.
        b.ewma = 0.0
        b.samples = 0
        b.streak_opens = 0
        self._notify(target, BreakerState.CLOSED)
