"""Runtime logger and model drift correction (§4 "Logger").

Transfer rates between regions change after offline profiling.  The
logger tracks the (predicted, actual) replication time of completed
tasks per path and keeps an exponentially-weighted estimate of the
actual/predicted ratio.  When the ratio deviates persistently — not
just for one noisy task — the model's path parameters are rescaled and
its Monte-Carlo caches invalidated, which is exactly the "significant,
persistent deviation" trigger the paper describes for re-running the
on-demand simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.model import PathKey, PerformanceModel

__all__ = ["TaskTiming", "RuntimeLogger"]


@dataclass(frozen=True)
class TaskTiming:
    """One completed task's timing observation."""

    path: PathKey
    n: int
    size: int
    predicted_s: float
    actual_s: float
    time: float


@dataclass
class _PathDrift:
    ewma_log_ratio: float = 0.0
    consecutive_drifts: int = 0
    observations: int = 0
    corrections: int = 0


class RuntimeLogger:
    """Streams task timings into the performance model."""

    def __init__(
        self,
        model: PerformanceModel,
        alpha: float = 0.25,
        drift_threshold: float = 0.30,
        patience: int = 5,
        keep_timings: bool = True,
    ):
        """``drift_threshold`` is on |log(actual/predicted)| — 0.30 means
        a persistent ~35 % deviation; ``patience`` is how many
        consecutive drifting observations trigger a correction."""
        self.model = model
        self.alpha = alpha
        self.drift_threshold = drift_threshold
        self.patience = patience
        self.keep_timings = keep_timings
        self.timings: list[TaskTiming] = []
        self._drift: dict[PathKey, _PathDrift] = {}

    def record(self, path: PathKey, n: int, size: int,
               predicted_s: float, actual_s: float, time: float) -> None:
        """Log one completed task; may rescale the model's path."""
        if self.keep_timings:
            self.timings.append(TaskTiming(path, n, size, predicted_s,
                                           actual_s, time))
        if predicted_s <= 0 or actual_s <= 0:
            return
        state = self._drift.setdefault(path, _PathDrift())
        state.observations += 1
        log_ratio = math.log(actual_s / predicted_s)
        state.ewma_log_ratio = (
            self.alpha * log_ratio + (1 - self.alpha) * state.ewma_log_ratio
        )
        if abs(state.ewma_log_ratio) > self.drift_threshold:
            state.consecutive_drifts += 1
        else:
            state.consecutive_drifts = 0
        if state.consecutive_drifts >= self.patience:
            ratio = math.exp(state.ewma_log_ratio)
            self.model.scale_path(path, ratio)
            state.corrections += 1
            state.ewma_log_ratio = 0.0
            state.consecutive_drifts = 0

    def corrections(self, path: PathKey) -> int:
        state = self._drift.get(path)
        return state.corrections if state else 0

    def observations(self, path: PathKey) -> int:
        state = self._drift.get(path)
        return state.observations if state else 0
