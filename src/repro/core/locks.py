"""Object-granularity replication lock (§5.2, Algorithm 2).

Object storage has no deterministic behaviour for concurrent writes to
the same key, so AReplica serializes replication tasks per object with
a distributed lock in a cloud database (the DynamoDB lock-client
pattern).  While a task holds the lock, later versions of the object
register themselves as *pending* on the lock record (keeping only the
newest, by sequencer).  On release, the unlocker compares the pending
ETag with the ETag it just replicated; a mismatch re-triggers
replication so the newest version is never lost — this is what makes
eventual consistency hold without bucket versioning.

Leases alone are not enough for safety: a holder whose lease expired
(a *zombie* — stalled, not dead) may still be mid-upload when the next
claimant takes over, and without further protection it would finalize
its stale version at the destination *after* the new holder wrote a
newer one.  Each lock record therefore carries a monotonically
increasing **fencing token**, bumped on every change of ownership; a
holder re-validates its token (:meth:`verify`) before any destination
finalize, and :meth:`release` reports whether the caller still owned
the lock so the engine can surface the loss instead of silently
no-oping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simcloud.kvstore import KvTable

__all__ = ["LockOutcome", "PendingVersion", "UnlockOutcome",
           "ReplicationLockManager"]


@dataclass(frozen=True)
class LockOutcome:
    """Result of a lock attempt."""

    acquired: bool
    #: When not acquired: True if this version was recorded as pending,
    #: False if a newer version was already pending (we can just quit).
    registered_pending: bool = False
    #: The fencing token of the acquired lock (0 when not acquired).
    #: Stable across a holder's re-entrant re-acquisitions — a
    #: platform-retried function resumes with its original token.
    fence: int = 0
    #: True when the acquisition re-entered a record this owner already
    #: held — the platform-retry signal: a crashed predecessor may have
    #: left state (a part pool, a multipart upload) behind.
    reentrant: bool = False


@dataclass(frozen=True)
class PendingVersion:
    """The newest version that arrived while the lock was held."""

    etag: str
    seq: int


@dataclass(frozen=True)
class UnlockOutcome:
    """Result of a release attempt."""

    #: False when the caller no longer owned the lock (lease stolen) —
    #: the zombie-writer signal; nothing was released in that case.
    released: bool
    pending: Optional[PendingVersion] = None


class ReplicationLockManager:
    """Per-object replication locks over a serverless KV table.

    Locks carry a lease (like the DynamoDB lock client): a lock whose
    holder died mid-task (function crash past its auto-retries) is
    stolen by the next claimant once the lease expires, so a single
    failure can never wedge an object's replication forever.
    """

    def __init__(self, table: KvTable, lease_s: float = 300.0):
        self.table = table
        self.lease_s = lease_s
        #: Optional :class:`~repro.core.tracing.Tracer`; acquire/release
        #: events are emitted *inside* the KV admission closures so
        #: their timestamps are the serialization points the fencing
        #: oracle replays (under injected admission delay those are
        #: later than the call).
        self.tracer = None

    @staticmethod
    def _key(obj_key: str) -> str:
        return f"lock:{obj_key}"

    def lock(self, obj_key: str, etag: str, seq: int, owner: str):
        """Process implementing Algorithm 2's LOCK.

        Returns a :class:`LockOutcome`.  On contention, the (etag, seq)
        pair is recorded as pending iff it is newer than any pending
        version already registered.
        """
        state = {"registered": False, "acquired": False, "fence": 0,
                 "reentrant": False}

        def attempt(item):
            # The clock must be read *inside* the closure: the KV store
            # applies it at admission, which under injected admission
            # delay is later than the call.  A timestamp captured before
            # the round-trip would judge a lease unexpired with a stale
            # clock — and symmetrically stamp acquired_at in the past,
            # shortening the new holder's own lease.
            now = self.table.sim.now
            expired = (item is not None
                       and now - item.get("acquired_at", now) > self.lease_s)
            reentrant = item is not None and item.get("owner") == owner
            if item is None or expired or reentrant:
                # Fresh acquisition, lease takeover from a dead holder,
                # or a platform-retried function re-entering its own
                # lock (task ids are deterministic per object version,
                # so a retry resumes rather than deadlocks on itself).
                pending_etag = item.get("pending_etag") if item else None
                pending_seq = item.get("pending_seq") if item else None
                # The fence bumps only on ownership *change*.  A retried
                # holder re-entering its own lock keeps its token —
                # state it persisted before crashing (e.g. a distributed
                # task descriptor) stays valid for the retry.
                fence = (item.get("fence", 0) if reentrant
                         else item.get("fence", 0) + 1 if item is not None
                         else 1)
                state["acquired"] = True
                state["fence"] = fence
                state["reentrant"] = reentrant
                if self.tracer is not None:
                    self.tracer.event(
                        "lock-acquire", "lock", owner, key=obj_key,
                        owner=owner, fence=fence,
                        mode=("reentrant" if reentrant
                              else "takeover" if item is not None
                              else "fresh"))
                return {"owner": owner, "held_etag": etag, "held_seq": seq,
                        "acquired_at": now, "fence": fence,
                        "pending_etag": pending_etag, "pending_seq": pending_seq}
            pending_seq = item.get("pending_seq")
            if pending_seq is None or pending_seq < seq:
                item["pending_etag"] = etag
                item["pending_seq"] = seq
                state["registered"] = True
            return item

        yield self.table.update_item(self._key(obj_key), attempt)
        return LockOutcome(state["acquired"], state["registered"],
                           state["fence"], state["reentrant"])

    def verify(self, obj_key: str, owner: str, fence: int):
        """Process: does ``owner`` still hold the lock with ``fence``?

        The fencing check a holder performs before irreversible
        destination writes: False means the lease was stolen (or the
        record is gone) and the caller must abort instead of finalizing
        a now-stale version.
        """
        item = yield self.table.get_item(self._key(obj_key))
        return (item is not None and item.get("owner") == owner
                and item.get("fence", 0) == fence)

    def release(self, obj_key: str, owner: str):
        """Process implementing Algorithm 2's UNLOCK.

        Returns an :class:`UnlockOutcome`: ``released`` is False when
        the caller no longer owned the lock (its lease was stolen while
        it worked — the engine surfaces this as ``lock_lost`` instead of
        silently ignoring it); ``pending`` carries the newest
        :class:`PendingVersion` registered during the critical section.
        The caller compares the pending ETag with the one it just
        replicated and re-triggers the orchestrator on mismatch.
        """
        captured: dict[str, Optional[object]] = {
            "etag": None, "seq": None, "released": False}

        def attempt(item):
            if item is None or item.get("owner") != owner:
                # Lost/expired lock: nothing to release; the new owner's
                # record must not be deleted.
                if self.tracer is not None:
                    self.tracer.event("lock-release", "lock", owner,
                                      key=obj_key, owner=owner,
                                      released=False)
                return item
            captured["released"] = True
            captured["etag"] = item.get("pending_etag")
            captured["seq"] = item.get("pending_seq")
            if self.tracer is not None:
                self.tracer.event("lock-release", "lock", owner, key=obj_key,
                                  owner=owner, released=True,
                                  fence=item.get("fence", 0))
            return None  # delete the lock record

        yield self.table.update_item(self._key(obj_key), attempt)
        pending = None
        if captured["etag"] is not None:
            pending = PendingVersion(str(captured["etag"]),
                                     int(captured["seq"]))  # type: ignore[arg-type]
        return UnlockOutcome(bool(captured["released"]), pending)

    def unlock(self, obj_key: str, owner: str):
        """Process: release and return just the pending version.

        Thin compatibility wrapper over :meth:`release` for callers that
        only care about Algorithm 2's pending-version hand-off.
        """
        outcome = yield from self.release(obj_key, owner)
        return outcome.pending

    def is_locked(self, obj_key: str) -> bool:
        """Zero-cost probe for tests/metrics."""
        return self.table.peek(self._key(obj_key)) is not None
