"""Object-granularity replication lock (§5.2, Algorithm 2).

Object storage has no deterministic behaviour for concurrent writes to
the same key, so AReplica serializes replication tasks per object with
a distributed lock in a cloud database (the DynamoDB lock-client
pattern).  While a task holds the lock, later versions of the object
register themselves as *pending* on the lock record (keeping only the
newest, by sequencer).  On release, the unlocker compares the pending
ETag with the ETag it just replicated; a mismatch re-triggers
replication so the newest version is never lost — this is what makes
eventual consistency hold without bucket versioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simcloud.kvstore import KvTable

__all__ = ["LockOutcome", "PendingVersion", "ReplicationLockManager"]


@dataclass(frozen=True)
class LockOutcome:
    """Result of a lock attempt."""

    acquired: bool
    #: When not acquired: True if this version was recorded as pending,
    #: False if a newer version was already pending (we can just quit).
    registered_pending: bool = False


@dataclass(frozen=True)
class PendingVersion:
    """The newest version that arrived while the lock was held."""

    etag: str
    seq: int


class ReplicationLockManager:
    """Per-object replication locks over a serverless KV table.

    Locks carry a lease (like the DynamoDB lock client): a lock whose
    holder died mid-task (function crash past its auto-retries) is
    stolen by the next claimant once the lease expires, so a single
    failure can never wedge an object's replication forever.
    """

    def __init__(self, table: KvTable, lease_s: float = 300.0):
        self.table = table
        self.lease_s = lease_s

    @staticmethod
    def _key(obj_key: str) -> str:
        return f"lock:{obj_key}"

    def lock(self, obj_key: str, etag: str, seq: int, owner: str):
        """Process implementing Algorithm 2's LOCK.

        Returns a :class:`LockOutcome`.  On contention, the (etag, seq)
        pair is recorded as pending iff it is newer than any pending
        version already registered.
        """
        state = {"registered": False, "acquired": False}
        now = self.table.sim.now

        def attempt(item):
            expired = (item is not None
                       and now - item.get("acquired_at", now) > self.lease_s)
            reentrant = item is not None and item.get("owner") == owner
            if item is None or expired or reentrant:
                # Fresh acquisition, lease takeover from a dead holder,
                # or a platform-retried function re-entering its own
                # lock (task ids are deterministic per object version,
                # so a retry resumes rather than deadlocks on itself).
                pending_etag = item.get("pending_etag") if item else None
                pending_seq = item.get("pending_seq") if item else None
                state["acquired"] = True
                return {"owner": owner, "held_etag": etag, "held_seq": seq,
                        "acquired_at": now,
                        "pending_etag": pending_etag, "pending_seq": pending_seq}
            pending_seq = item.get("pending_seq")
            if pending_seq is None or pending_seq < seq:
                item["pending_etag"] = etag
                item["pending_seq"] = seq
                state["registered"] = True
            return item

        yield self.table.update_item(self._key(obj_key), attempt)
        return LockOutcome(state["acquired"], state["registered"])

    def unlock(self, obj_key: str, owner: str):
        """Process implementing Algorithm 2's UNLOCK.

        Releases the lock and returns the newest :class:`PendingVersion`
        registered during the critical section, or None.  The caller
        (the replication engine) compares the pending ETag with the one
        it just replicated and re-triggers the orchestrator on mismatch.
        """
        captured: dict[str, Optional[object]] = {"etag": None, "seq": None}

        def release(item):
            if item is None or item.get("owner") != owner:
                # Lost/expired lock: nothing to release.
                return item
            captured["etag"] = item.get("pending_etag")
            captured["seq"] = item.get("pending_seq")
            return None  # delete the lock record

        yield self.table.update_item(self._key(obj_key), release)
        if captured["etag"] is None:
            return None
        return PendingVersion(str(captured["etag"]), int(captured["seq"]))  # type: ignore[arg-type]

    def is_locked(self, obj_key: str) -> bool:
        """Zero-cost probe for tests/metrics."""
        return self.table.peek(self._key(obj_key)) is not None
