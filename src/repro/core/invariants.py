"""Trace-invariant oracle — ``fsck`` for a finished causal trace.

Where the :class:`~repro.core.audit.ReplicationAuditor` inspects the
*end state* of a rule (buckets, lock tables, measurements), the
:class:`TraceChecker` validates the *execution itself*, offline, from
the spans and events a :class:`~repro.core.tracing.Tracer` recorded:

* **clock** — the recorder's times must be non-decreasing in record
  order and every span must close after it opens (the kernel never
  runs the clock backwards; a violation means an emission site used a
  stale timestamp);
* **lifecycle** — per task: lock acquisition precedes plan selection's
  outcome, which precedes the fenced finalize, which precedes the
  visibility report;
* **unfenced-visible** — every destination-mutating visibility
  (``created`` / ``changelog`` / ``deleted``) must be preceded by a
  finalize event carrying a valid fencing token;
* **superseded-fence** — no finalize may use a token that a later
  lock acquisition had already superseded *before* the finalize ran
  (the zombie-writer interleaving, §5.2);
* **lock-order** — per key, lock events must replay through a legal
  state machine: fresh acquisitions start at fence 1, re-entrant
  re-acquisitions keep their token, lease takeovers bump it by one,
  and only the current holder can successfully release;
* **park-leak** — every parked task must eventually drain (chaos and
  outage suites call the checker at quiescence);
* **done-mismatch** — the newest done marker per key must agree with
  the destination bucket (PUT ⇒ ETag match, DELETE ⇒ key absent);
* **unverified-finalize** — every destination PUT finalize must carry
  the verify-after-finalize verdict: no visibility without a verified
  finalize;
* **silent-corruption** — every corruption the engine detected must be
  either repaired (a later verified finalize of the task) or surfaced
  (quarantine, dead-letter, abort/retrigger, park) — never silently
  marked done;
* **cost-gap / cost-orphan** — the charges mirrored through the
  tracer's cost sink must sum to the ledger's growth since install,
  and task-attributed charges must reference tasks the trace knows;
* **hedge discipline** — every speculative hedge fired
  (``hedge-start``) must resolve exactly once with a legal outcome
  (``won`` / ``lost`` / ``cancelled``), and no part may admit two
  first writers to its done-set (the double-finalize hazard a hedged
  race must exclude);
* **switchover discipline** — per task epoch (one lock generation and
  fence), every finalize must come from a single orchestrator
  location: a planned switchover hands orchestration over through the
  fencing tokens, and two locations finalizing the same epoch would be
  the split-brain the handoff exists to exclude;
* **cordon discipline** — no new admission (dispatch, probe, or drain
  re-dispatch) may route into a FaaS region while an administrative
  cordon window is open on it (in-flight work finishing there is
  legitimate; *admitting* more is the violation);
* **tenant isolation** — in a multi-tenant service every tenant-tagged
  record must agree with the rule registry about which tenant owns the
  task (one task id maps to exactly one tenant), and lock-domain
  traffic must stay inside the owning tenant's rules — a record
  claiming tenant A on tenant B's rule is control-plane bleed between
  tenants, the failure mode sharding exists to exclude;
* **autopilot discipline** — every ``autopilot`` actuation span must
  keep its knob inside the declared ``[lo, hi]`` guardrails, respect
  the declared post-actuation cooldown against the previous actuation
  of the same knob, and never land strictly inside an administrative
  cordon window (planned operations own the system; a controller
  retuning knobs mid-evacuation is the guarded-rollout violation).

A clean report turns every chaos/outage scenario into a *checked
execution*: the oracle is the property, not a per-scenario assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.tracing import Tracer

__all__ = ["TraceFinding", "TraceReport", "TraceChecker"]

_EPS = 1e-9

#: Visibility kinds that actually mutated the destination and therefore
#: require a fenced finalize.  ``already-replicated``, ``content-match``
#: and ``duplicate-delivery`` report visibility of work done earlier.
_WRITING_KINDS = frozenset({"created", "changelog", "deleted"})


@dataclass(frozen=True)
class TraceFinding:
    """One violated trace invariant."""

    kind: str   # clock | lifecycle | unfenced-visible | superseded-fence
                # | lock-order | park-leak | done-mismatch | cost-gap
                # | cost-orphan | unverified-finalize | silent-corruption
                # | hedge-unresolved | hedge-double-resolve
                # | hedge-outcome | double-finalize
                # | switchover-discipline | cordon-violation
                # | tenant-isolation | autopilot-bounds
                # | autopilot-cooldown | autopilot-cordon
    subject: str   # task id, object key, or backlog id
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class TraceReport:
    """All findings from one checker pass."""

    findings: list[TraceFinding] = field(default_factory=list)
    #: How much work the pass validated (for "did it even look" asserts).
    checked: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[TraceFinding]:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        head = (f"trace: {len(self.findings)} finding(s), "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items())))
        if self.clean:
            return f"trace: clean ({head.split(', ', 1)[-1]})"
        return "\n".join([head] + [f"  {f}" for f in self.findings])


class TraceChecker:
    """Validates lifecycle invariants from a finished trace.

    Built on a service so the done-marker check can compare against the
    live destination buckets; the trace itself defaults to the
    service's installed tracer.
    """

    def __init__(self, service, tracer: Optional[Tracer] = None):
        self.service = service
        self.tracer = tracer if tracer is not None else service.tracer
        if self.tracer is None:
            raise ValueError("service has no tracer installed "
                             "(ReplicaConfig.tracing_enabled)")

    def check(self) -> TraceReport:
        report = TraceReport()
        tr = self.tracer
        self._check_clock(tr, report)
        self._check_locks(tr, report)
        self._check_lifecycle(tr, report)
        self._check_backlog(tr, report)
        self._check_done_markers(tr, report)
        self._check_integrity(tr, report)
        self._check_costs(tr, report)
        self._check_hedges(tr, report)
        self._check_switchover(tr, report)
        self._check_cordons(tr, report)
        self._check_tenants(tr, report)
        self._check_autopilot(tr, report)
        return report

    # -- 1. clock sanity ---------------------------------------------------

    def _check_clock(self, tr: Tracer, report: TraceReport) -> None:
        report.checked["spans"] = len(tr.spans)
        report.checked["events"] = len(tr.events)
        prev = -math.inf
        for s in tr.spans:
            if s.end < s.start - _EPS:
                report.findings.append(TraceFinding(
                    "clock", s.task or s.name,
                    f"span {s.name} closes before it opens "
                    f"({s.start:.6f} -> {s.end:.6f})"))
            if s.end < prev - _EPS:
                report.findings.append(TraceFinding(
                    "clock", s.task or s.name,
                    f"span {s.name} recorded out of clock order"))
            prev = max(prev, s.end)
        prev = -math.inf
        for e in tr.events:
            if e.time < prev - _EPS:
                report.findings.append(TraceFinding(
                    "clock", e.task or e.name,
                    f"event {e.name} recorded out of clock order"))
            prev = max(prev, e.time)

    # -- 2/3. fencing and lock state machine -------------------------------

    def _check_locks(self, tr: Tracer, report: TraceReport) -> None:
        # holder per lock *domain*: lock tables are per-rule
        # (areplica-state-{rule_id}), so two rules — e.g. two tenants —
        # may legally hold "the same" object key at once.  The owner is
        # the task id, whose prefix is the rule id, which names the
        # domain.
        holders: dict[tuple[str, str], tuple[str, int]] = {}
        acquires = 0
        for e in tr.events:
            if e.cat != "lock":
                continue
            owner_id = e.attrs["owner"]
            # Task-id owners ({rule}:{key}:{seq}:{kind}) carry their
            # domain as the rule prefix; opaque owners (synthetic
            # traces, tooling) share one anonymous domain.
            domain = owner_id.split(":", 1)[0] if ":" in owner_id else ""
            key = (domain, e.attrs["key"])
            subj = f"{domain}/{e.attrs['key']}" if domain else e.attrs["key"]
            if e.name == "lock-acquire":
                acquires += 1
                owner, fence = e.attrs["owner"], e.attrs["fence"]
                mode = e.attrs["mode"]
                held = holders.get(key)
                if mode == "fresh":
                    if held is not None:
                        report.findings.append(TraceFinding(
                            "lock-order", subj,
                            f"fresh acquire by {owner!r} while "
                            f"{held[0]!r} holds fence {held[1]}"))
                    elif fence != 1:
                        report.findings.append(TraceFinding(
                            "lock-order", subj,
                            f"fresh acquire with fence {fence} != 1"))
                elif mode == "reentrant":
                    if held != (owner, fence):
                        report.findings.append(TraceFinding(
                            "lock-order", subj,
                            f"re-entrant acquire by {owner!r} fence {fence} "
                            f"but holder is {held!r}"))
                elif mode == "takeover":
                    if held is None:
                        report.findings.append(TraceFinding(
                            "lock-order", subj,
                            f"takeover by {owner!r} of an unheld lock"))
                    elif fence != held[1] + 1:
                        report.findings.append(TraceFinding(
                            "lock-order", subj,
                            f"takeover fence {fence} does not supersede "
                            f"{held[1]}"))
                holders[key] = (owner, fence)
            elif e.name == "lock-release":
                owner, released = e.attrs["owner"], e.attrs["released"]
                held = holders.get(key)
                if released:
                    if held is None or held[0] != owner:
                        report.findings.append(TraceFinding(
                            "lock-order", subj,
                            f"{owner!r} released a lock held by "
                            f"{held and held[0]!r}"))
                    holders.pop(key, None)
                elif held is not None and held[0] == owner:
                    report.findings.append(TraceFinding(
                        "lock-order", subj,
                        f"holder {owner!r} failed to release its own lock"))
        report.checked["lock_acquires"] = acquires

    # -- lifecycle ordering + fenced finalize before visible ----------------

    def _check_lifecycle(self, tr: Tracer, report: TraceReport) -> None:
        first_acquire: dict[str, float] = {}
        finalizes: dict[str, list] = {}
        acquires_by_key: dict[str, list[tuple[float, int]]] = {}
        plan_end: dict[str, float] = {}
        for e in tr.events:
            if e.cat == "lock" and e.name == "lock-acquire":
                task = e.attrs["owner"]
                first_acquire.setdefault(task, e.time)
                acquires_by_key.setdefault(e.attrs["key"], []).append(
                    (e.time, e.attrs["fence"]))
            elif e.cat == "engine" and e.name == "finalize":
                if e.task is not None:
                    finalizes.setdefault(e.task, []).append(e)
        for s in tr.spans:
            if s.cat == "engine" and s.name == "plan" and s.task is not None:
                plan_end.setdefault(s.task, s.end)
        visibles = 0
        for e in tr.events:
            if e.cat != "engine" or e.name != "visible":
                continue
            visibles += 1
            task, kind = e.task, e.attrs["kind"]
            if kind not in _WRITING_KINDS or task is None:
                continue
            cands = [f for f in finalizes.get(task, ())
                     if f.time <= e.time + _EPS]
            if not cands:
                report.findings.append(TraceFinding(
                    "unfenced-visible", task,
                    f"{kind} visible at t={e.time:.3f} with no prior "
                    f"finalize"))
                continue
            fin = cands[-1]
            fence = fin.attrs.get("fence")
            if not isinstance(fence, int) or fence < 1:
                report.findings.append(TraceFinding(
                    "unfenced-visible", task,
                    f"finalize carries invalid fence {fence!r}"))
                continue
            # The zombie-writer interleaving: someone acquired this key
            # with a higher token before our finalize ran.  The scan is
            # bounded below by our own acquire: fences restart at 1
            # whenever a release deletes the lock record, so an earlier
            # *generation's* takeover token says nothing about ours.
            lo = first_acquire.get(task, -math.inf)
            for at, f2 in acquires_by_key.get(fin.attrs["key"], ()):
                if f2 > fence and lo - _EPS <= at < fin.time - _EPS:
                    report.findings.append(TraceFinding(
                        "superseded-fence", task,
                        f"finalize with fence {fence} at t={fin.time:.3f} "
                        f"after fence {f2} was issued at t={at:.3f}"))
                    break
            if task in first_acquire and \
                    first_acquire[task] > fin.time + _EPS:
                report.findings.append(TraceFinding(
                    "lifecycle", task,
                    "finalize precedes the task's first lock acquire"))
            if task in plan_end and plan_end[task] > fin.time + _EPS:
                report.findings.append(TraceFinding(
                    "lifecycle", task,
                    "finalize precedes the task's plan selection"))
        report.checked["visibles"] = visibles

    # -- park/drain accounting ---------------------------------------------

    def _check_backlog(self, tr: Tracer, report: TraceReport) -> None:
        parked: dict[object, str] = {}
        drained: set = set()
        for e in tr.events:
            if e.cat != "engine":
                continue
            if e.name == "park":
                parked[(e.attrs["rule"], e.attrs["backlog_id"])] = \
                    e.attrs.get("key", "?")
            elif e.name == "drain":
                ref = (e.attrs["rule"], e.attrs["backlog_id"])
                if ref in drained:
                    report.findings.append(TraceFinding(
                        "park-leak", str(ref[1]),
                        "backlog entry drained twice"))
                if ref not in parked:
                    report.findings.append(TraceFinding(
                        "park-leak", str(ref[1]),
                        "drain of a backlog entry never parked"))
                drained.add(ref)
        report.checked["parked"] = len(parked)
        for ref, key in sorted(parked.items(), key=lambda kv: str(kv[0])):
            if ref not in drained:
                report.findings.append(TraceFinding(
                    "park-leak", str(ref[1]),
                    f"task for key {key!r} parked but never drained"))

    # -- done marker vs destination state ----------------------------------

    def _check_done_markers(self, tr: Tracer, report: TraceReport) -> None:
        newest: dict[tuple[str, str], object] = {}
        for e in tr.events:
            if e.cat == "engine" and e.name == "done-marker":
                ref = (e.attrs["rule"], e.attrs["key"])
                cur = newest.get(ref)
                if cur is None or e.attrs["seq"] >= cur.attrs["seq"]:
                    newest[ref] = e
        report.checked["done_markers"] = len(newest)
        for (rule_id, key), e in newest.items():
            rule = self.service.rules.get(rule_id)
            if rule is None:
                continue
            dst = rule.dst_bucket
            if e.attrs["op"] == "delete":
                if key in dst:
                    report.findings.append(TraceFinding(
                        "done-mismatch", key,
                        f"marker records deletion (seq {e.attrs['seq']}) "
                        f"but key survives at destination"))
            else:
                if key not in dst:
                    report.findings.append(TraceFinding(
                        "done-mismatch", key,
                        f"marker seq {e.attrs['seq']} but key missing at "
                        f"destination"))
                elif dst.head(key).etag != e.attrs["etag"]:
                    report.findings.append(TraceFinding(
                        "done-mismatch", key,
                        f"marker etag {e.attrs['etag']} != destination "
                        f"etag {dst.head(key).etag}"))

    # -- end-to-end integrity: verified finalizes, surfaced corruption ------

    def _check_integrity(self, tr: Tracer, report: TraceReport) -> None:
        """No visibility without verification; no corruption goes silent.

        Every destination PUT finalize must carry ``verified=True`` (the
        engine re-read the destination ETag before the done marker).
        Every ``corrupt-detected`` must be *resolved*: either a later
        verified finalize of the same task (the retransfer healed it) or
        an explicit surfacing — quarantine, dead-letter, abort,
        retrigger, lock-lost, or park — that hands the key to recovery.
        A detection with neither is a silent finalize, the exact failure
        mode the integrity machinery exists to rule out.
        """
        verified_finalizes = 0
        last_verified_fin: dict[str, float] = {}
        last_corrupt: dict[str, float] = {}
        surfaced: set[str] = set()
        detections = 0
        for e in tr.events:
            if e.cat == "engine" and e.name == "finalize":
                if e.attrs.get("op") == "put":
                    if e.attrs.get("verified"):
                        verified_finalizes += 1
                        if e.task is not None:
                            last_verified_fin[e.task] = e.time
                    else:
                        report.findings.append(TraceFinding(
                            "unverified-finalize", e.task or "?",
                            f"put finalize at t={e.time:.3f} without a "
                            f"destination verification verdict"))
                elif e.task is not None:
                    # Deletes leave nothing to verify; their finalize
                    # still resolves any corruption the task observed.
                    last_verified_fin[e.task] = e.time
            elif (e.cat == "engine" and e.name == "corrupt-detected"
                    and e.task is not None):
                detections += 1
                last_corrupt[e.task] = max(
                    last_corrupt.get(e.task, -math.inf), e.time)
            elif (e.name in ("quarantine", "abort", "retrigger",
                             "lock-lost", "park") and e.task is not None):
                surfaced.add(e.task)
            elif e.name == "dead-letter" and e.task is not None:
                surfaced.add(e.task)
        report.checked["verified_finalizes"] = verified_finalizes
        report.checked["corruption_detections"] = detections
        for task in sorted(last_corrupt):
            t_corrupt = last_corrupt[task]
            t_fin = last_verified_fin.get(task)
            if t_fin is not None and t_fin >= t_corrupt - _EPS:
                continue
            if task in surfaced:
                continue
            report.findings.append(TraceFinding(
                "silent-corruption", task,
                f"corruption detected at t={t_corrupt:.3f} was neither "
                f"re-verified by a later finalize nor surfaced"))

    # -- speculative-hedging discipline ------------------------------------

    def _check_hedges(self, tr: Tracer, report: TraceReport) -> None:
        """Every hedge resolves exactly once; no part double-finalizes.

        A ``hedge-start`` (task, part, seq) with no matching
        ``hedge-resolved`` is a leaked race (a clone nobody ever
        settled); more than one resolution means two coordination paths
        both claimed the hedge; an outcome outside
        {won, lost, cancelled} is a protocol bug.  Independently, the
        part pool's done-set must admit at most one ``first=True``
        completion per (task, part) — two first writers would mean two
        contenders both believed their bytes won, the exact
        double-finalize hazard first-writer-wins exists to exclude.
        """
        started: dict[tuple, float] = {}
        resolved: dict[tuple, int] = {}
        first_writers: dict[tuple, int] = {}
        for e in tr.events:
            if e.cat == "engine" and e.name == "hedge-start":
                started[(e.task, e.attrs["part"], e.attrs["seq"])] = e.time
            elif e.cat == "engine" and e.name == "hedge-resolved":
                ref = (e.task, e.attrs["part"], e.attrs["seq"])
                resolved[ref] = resolved.get(ref, 0) + 1
                outcome = e.attrs.get("outcome")
                if outcome not in ("won", "lost", "cancelled"):
                    report.findings.append(TraceFinding(
                        "hedge-outcome", str(e.task),
                        f"hedge of part {ref[1]} seq {ref[2]} resolved "
                        f"with invalid outcome {outcome!r}"))
                if ref not in started:
                    report.findings.append(TraceFinding(
                        "hedge-unresolved", str(e.task),
                        f"hedge of part {ref[1]} seq {ref[2]} resolved "
                        f"but never started"))
            elif (e.cat == "pool" and e.name == "part-complete"
                    and e.attrs.get("first") and e.task is not None):
                ref = (e.task, e.attrs["idx"])
                first_writers[ref] = first_writers.get(ref, 0) + 1
        report.checked["hedges"] = len(started)
        for ref, t in sorted(started.items(), key=lambda kv: str(kv[0])):
            n = resolved.get(ref, 0)
            if n == 0:
                report.findings.append(TraceFinding(
                    "hedge-unresolved", str(ref[0]),
                    f"hedge of part {ref[1]} seq {ref[2]} fired at "
                    f"t={t:.3f} but never resolved"))
            elif n > 1:
                report.findings.append(TraceFinding(
                    "hedge-double-resolve", str(ref[0]),
                    f"hedge of part {ref[1]} seq {ref[2]} resolved "
                    f"{n} times"))
        for (task, idx), n in sorted(first_writers.items(),
                                     key=lambda kv: str(kv[0])):
            if n > 1:
                report.findings.append(TraceFinding(
                    "double-finalize", str(task),
                    f"part {idx} admitted {n} first writers to the "
                    f"done-set"))

    # -- planned-operations discipline --------------------------------------

    def _check_switchover(self, tr: Tracer, report: TraceReport) -> None:
        """Exactly one orchestrator *location* finalizes per task epoch.

        Finalize events carry ``loc`` (the region whose FaaS platform
        ran the finalizing orchestrator).  A task's finalizes are
        grouped into epochs keyed by (last own lock-acquire at or
        before the finalize, fence): fences restart at 1 whenever a
        release deletes the lock record, so the acquire time — not the
        bare fence — identifies the lock generation, and a repair task
        re-acquiring fresh months later is a *new* epoch, not a
        split-brain.  Within one epoch, two distinct locations both
        finalizing means the switchover handoff failed to fence off the
        old orchestrator — the exact hazard the fencing tokens exist to
        exclude.  Same-location duplicates (a platform-retried
        finalizer redoing its own idempotent finalize) are benign.
        """
        own_acquires: dict[str, list[float]] = {}
        for e in tr.events:
            if e.cat == "lock" and e.name == "lock-acquire":
                own_acquires.setdefault(e.attrs["owner"], []).append(e.time)
        epochs: dict[tuple, set] = {}
        for e in tr.events:
            if e.cat != "engine" or e.name != "finalize":
                continue
            loc = e.attrs.get("loc")
            if loc is None or e.task is None:
                continue
            gen = max((t for t in own_acquires.get(e.task, ())
                       if t <= e.time + _EPS), default=-math.inf)
            epochs.setdefault(
                (e.task, gen, e.attrs.get("fence")), set()).add(loc)
        report.checked["finalize_epochs"] = len(epochs)
        for (task, gen, fence), locs in sorted(
                epochs.items(), key=lambda kv: str(kv[0])):
            if len(locs) > 1:
                report.findings.append(TraceFinding(
                    "switchover-discipline", str(task),
                    f"epoch (acquire t={gen:.3f}, fence {fence}) was "
                    f"finalized from {len(locs)} locations: "
                    f"{sorted(locs)}"))

    def _check_cordons(self, tr: Tracer, report: TraceReport) -> None:
        """No admission into a FaaS region while its cordon is open.

        Builds cordon windows per region from the lifecycle
        cordon/uncordon events and flags any engine admission —
        ``dispatch`` (new orchestration), ``probe`` (half-open
        re-dispatch), or ``drain`` (backlog re-dispatch) — whose
        ``region`` lands strictly inside a window.  Events *at* the
        window edges are legal: the uncordon notification triggers the
        re-admission drain at the uncordon instant itself.
        """
        windows: dict[str, list[list[float]]] = {}
        for e in tr.events:
            if e.cat != "lifecycle" or e.attrs.get("substrate") != "faas":
                continue
            region = e.attrs["region"]
            if e.name == "cordon":
                windows.setdefault(region, []).append([e.time, math.inf])
            elif e.name == "uncordon":
                open_windows = windows.get(region, ())
                if open_windows and open_windows[-1][1] == math.inf:
                    open_windows[-1][1] = e.time
        report.checked["cordon_windows"] = sum(
            len(w) for w in windows.values())
        if not windows:
            return
        for e in tr.events:
            if e.cat != "engine" or e.name not in ("dispatch", "probe",
                                                   "drain"):
                continue
            region = e.attrs.get("region")
            for start, end in windows.get(region, ()):
                if start + _EPS < e.time < end - _EPS:
                    report.findings.append(TraceFinding(
                        "cordon-violation", e.task or "?",
                        f"{e.name} admitted into cordoned faas region "
                        f"{region!r} at t={e.time:.3f} (window "
                        f"[{start:.3f}, {end:.3f}))"))
                    break

    # -- autopilot discipline -----------------------------------------------

    def _check_autopilot(self, tr: Tracer, report: TraceReport) -> None:
        """Actuations stay in-bounds, cooled-down, and outside cordons.

        Every actuation is a zero-width ``autopilot`` span carrying the
        knob's declared guardrails (``lo``/``hi``), the value moved from
        and to, and the controller's ``cooldown_s`` — which makes the
        guarded-rollout contract checkable offline: a value outside the
        declared bounds means a clamp was bypassed; two actuations of
        one knob closer than the cooldown means the rate limit failed;
        an actuation strictly inside *any* administrative cordon window
        (any substrate — the autopilot must hold while planned
        operations own the system) is a controller fighting an
        operator.  Actuations at a window's edges are legal, mirroring
        the admission-cordon rule.
        """
        acts = [s for s in tr.spans if s.cat == "autopilot"]
        report.checked["autopilot_actuations"] = len(acts)
        if not acts:
            return
        last_by_knob: dict[str, float] = {}
        for s in acts:
            knob = s.attrs.get("knob", "?")
            lo, hi = s.attrs.get("lo"), s.attrs.get("hi")
            for label, value in (("old", s.attrs.get("old")),
                                 ("new", s.attrs.get("new"))):
                if value is None or lo is None or hi is None or \
                        lo - _EPS <= value <= hi + _EPS:
                    continue
                report.findings.append(TraceFinding(
                    "autopilot-bounds", knob,
                    f"actuation at t={s.start:.3f} has {label} value "
                    f"{value!r} outside declared [{lo}, {hi}]"))
            cooldown = s.attrs.get("cooldown_s", 0.0)
            prev = last_by_knob.get(knob)
            if prev is not None and s.start - prev < cooldown - _EPS:
                report.findings.append(TraceFinding(
                    "autopilot-cooldown", knob,
                    f"actuations at t={prev:.3f} and t={s.start:.3f} "
                    f"violate the {cooldown:g}s cooldown"))
            last_by_knob[knob] = s.start
        # Cordon windows across every substrate: the autopilot holds
        # globally while any planned operation is in flight.
        windows: dict[tuple, list[list[float]]] = {}
        for e in tr.events:
            if e.cat != "lifecycle" or e.name not in ("cordon", "uncordon"):
                continue
            ref = (e.attrs.get("substrate"), e.attrs.get("region"))
            if e.name == "cordon":
                windows.setdefault(ref, []).append([e.time, math.inf])
            else:
                open_windows = windows.get(ref, ())
                if open_windows and open_windows[-1][1] == math.inf:
                    open_windows[-1][1] = e.time
        for s in acts:
            for ref, spans in windows.items():
                hit = next((w for w in spans
                            if w[0] + _EPS < s.start < w[1] - _EPS), None)
                if hit is not None:
                    report.findings.append(TraceFinding(
                        "autopilot-cordon", s.attrs.get("knob", "?"),
                        f"actuation at t={s.start:.3f} inside cordon "
                        f"window [{hit[0]:.3f}, {hit[1]:.3f}) on "
                        f"{ref[1]!r}"))
                    break

    # -- tenant isolation ---------------------------------------------------

    def _check_tenants(self, tr: Tracer, report: TraceReport) -> None:
        """Tenant-tagged records agree with the rule registry's ownership.

        Engines in a multi-tenant service trace through a scoped
        :class:`~repro.core.tracing.TenantTracer` that stamps
        ``tenant=`` on every record; task ids carry the rule id as their
        prefix; and the registry knows which tenant owns each rule.
        Cross-checking the three catches control-plane bleed: a
        scheduler lane dispatching another tenant's work, a shard engine
        adopted by the wrong tenant, or one task id claimed by two
        tenants.  Untagged records (classic single-tenant rules, infra
        spans) are out of scope by construction.
        """
        svc = self.service
        rule_owner = {rid: getattr(rule, "tenant", None)
                      for rid, rule in svc.rules.items()}
        tenant_ids = set(getattr(svc, "tenants", ()) or ())
        claimed: dict[str, str] = {}   # task id -> tenant attr seen
        tagged = 0

        def owner_of(prefix: str):
            # A task prefix is either a rule id (engine records) or a
            # bare tenant id (the admission router's records).
            if prefix in rule_owner:
                return rule_owner[prefix]
            if prefix in tenant_ids:
                return prefix
            return None

        for rec in list(tr.spans) + list(tr.events):
            tenant = rec.attrs.get("tenant")
            if tenant is None:
                continue
            tagged += 1
            subjects = []
            if rec.task is not None:
                subjects.append(rec.task)
            owner = rec.attrs.get("owner")
            if isinstance(owner, str) and ":" in owner:
                subjects.append(owner)
            for task in subjects:
                expected = owner_of(task.split(":", 1)[0])
                if expected is not None and expected != tenant:
                    report.findings.append(TraceFinding(
                        "tenant-isolation", task,
                        f"record {rec.name!r} tagged tenant {tenant!r} "
                        f"but the registry owns the task's rule under "
                        f"{expected!r}"))
                prev = claimed.get(task)
                if prev is None:
                    claimed[task] = tenant
                elif prev != tenant:
                    report.findings.append(TraceFinding(
                        "tenant-isolation", task,
                        f"task claimed by two tenants: {prev!r} and "
                        f"{tenant!r}"))
        report.checked["tenant_records"] = tagged

    # -- attributed cost completeness --------------------------------------

    def _check_costs(self, tr: Tracer, report: TraceReport) -> None:
        recorded = tr.recorded_cost()
        billed = tr.billed_delta()
        report.checked["cost_records"] = len(tr.costs)
        if not math.isclose(recorded, billed, rel_tol=1e-9, abs_tol=1e-9):
            report.findings.append(TraceFinding(
                "cost-gap", "ledger",
                f"trace mirrors ${recorded:.9f} but the ledger grew "
                f"${billed:.9f} since install"))
        known = set(tr.tasks())
        orphans = sorted({c.task for c in tr.costs
                          if c.task is not None and c.task not in known})
        for task in orphans:
            report.findings.append(TraceFinding(
                "cost-orphan", task,
                "charge attributed to a task the trace never saw"))
