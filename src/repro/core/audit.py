"""Replication consistency auditor — ``fsck`` for a rule.

After (or during) a workload, the auditor walks a rule's buckets and
control state and reports every violated invariant:

* **divergence** — a source object missing or byte-different at the
  destination, or a destination object surviving its source's deletion;
* **silent-divergence** — the destination *reports* the source's ETag
  but its stored bytes differ (bit rot lying to HEAD): the corruption
  an ETag-only diff cannot see, checked here against the stores' true
  content hashes;
* **stale locks** — replication locks still held past their lease
  (a dead task nobody superseded yet);
* **done-marker drift** — a done marker recording a sequencer above
  anything the source ever issued (bookkeeping corruption);
* **upload leaks** — multipart uploads on the destination bucket that
  were neither completed nor aborted (real money on real clouds);
* **measurement gaps** — source writes with no resolved measurement.

A healthy, quiescent rule audits clean; the test suite asserts this
after every adversarial workload, and operators would run it after an
incident before trusting a replica for fail-over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.service import AReplicaService, ReplicationRule

__all__ = ["AuditFinding", "AuditReport", "ReplicationAuditor"]


@dataclass(frozen=True)
class AuditFinding:
    """One violated invariant."""

    kind: str  # divergence | silent-divergence | stale-lock | leaked-lock
               # | done-drift | upload-leak | gap
    key: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.key}: {self.detail}"


@dataclass
class AuditReport:
    """All findings for one rule."""

    rule_id: str
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[AuditFinding]:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        if self.clean:
            return f"rule {self.rule_id}: clean"
        lines = [f"rule {self.rule_id}: {len(self.findings)} finding(s)"]
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)


class ReplicationAuditor:
    """Audits the rules of one service."""

    def __init__(self, service: AReplicaService):
        self.service = service

    def audit(self, rule: Optional[ReplicationRule] = None,
              quiescent: bool = False) -> AuditReport:
        """Audit ``rule`` (or all rules).

        With ``quiescent=True`` the workload is declared over: every
        surviving lock record is a leak (a correct engine releases all
        locks once traffic stops and retries drain), not just those past
        their lease — this is the convergence check the chaos harness
        runs after the fault storm.
        """
        rules = [rule] if rule is not None else list(self.service.rules.values())
        report = AuditReport("+".join(r.rule_id for r in rules))
        for r in rules:
            self._audit_rule(r, report, quiescent)
        return report

    # -- checks ------------------------------------------------------------

    def _audit_rule(self, rule: ReplicationRule, report: AuditReport,
                    quiescent: bool = False) -> None:
        src, dst = rule.src_bucket, rule.dst_bucket
        now = self.service.cloud.now
        # 1. content divergence
        for key in src.keys():
            if key in dst:
                if dst.head(key).etag != src.head(key).etag:
                    report.findings.append(AuditFinding(
                        "divergence", key, "destination content differs"))
                elif dst.head(key).blob.etag != src.head(key).blob.etag:
                    # Reported ETags agree but the stored bytes do not:
                    # exactly what deep scrub exists to catch.  Both
                    # sides are cached hashes, so the check is free.
                    report.findings.append(AuditFinding(
                        "silent-divergence", key,
                        "destination bytes differ behind a matching "
                        "reported ETag"))
            else:
                report.findings.append(AuditFinding(
                    "divergence", key, "missing at destination"))
        src_keys = set(src.keys())
        for key in dst.keys():
            if key not in src_keys:
                report.findings.append(AuditFinding(
                    "divergence", key, "lingers at destination after delete"))
        # 2. stale locks & 3. done-marker drift
        lock_table = rule.engine._lock_table
        lease = rule.engine.locks.lease_s
        max_seq = src.last_sequencer
        for item_key, item in list(lock_table._items.items()):
            if item_key.startswith("lock:"):
                age = now - item.get("acquired_at", now)
                if quiescent:
                    report.findings.append(AuditFinding(
                        "leaked-lock", item_key[len("lock:"):],
                        f"survives quiescence, held {age:.0f}s "
                        f"by {item.get('owner')!r}"))
                elif age > lease:
                    report.findings.append(AuditFinding(
                        "stale-lock", item_key[len("lock:"):],
                        f"held {age:.0f}s by {item.get('owner')!r}"))
            elif item_key.startswith("done:"):
                if item["seq"] > max_seq:
                    report.findings.append(AuditFinding(
                        "done-drift", item_key[len("done:"):],
                        f"marker seq {item['seq']} exceeds source seq {max_seq}"))
        # 4. multipart upload leaks at the destination
        for upload_id in dst.pending_uploads():
            report.findings.append(AuditFinding(
                "upload-leak", upload_id,
                "multipart upload never completed or aborted"))
        # 5. measurement gaps
        for key, waiting in rule.outstanding.items():
            for seq, event_time, kind in waiting:
                report.findings.append(AuditFinding(
                    "gap", key,
                    f"{kind} seq {seq} from t={event_time:.1f} never measured"))
