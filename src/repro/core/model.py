"""Distribution-aware performance model (§5.3).

Predicts the replication time

    T_rep = T_func + T_transfer

where, for a plan with ``n`` replicator functions executing at location
``loc`` (the source or destination region):

    T_func     = 0                          (inline, small objects)
               = I(loc) + D(loc)            (single remote replicator)
               = I(loc)·n + D(loc) + P(loc) (parallel replicators)

    T_transfer = S + C·k                    (single function, k chunks)
               = max_i ( S_i + C'_i·⌈k/n⌉ ) (distributed)

All parameters — invocation latency *I*, instance readiness delay *D*,
scheduler postponement *P*, client startup *S*, per-chunk time *C*
(single) and *C'* (distributed, including the two KV accesses per
part) — are **distributions**, not point estimates, because certain
clouds and regions have high performance variability (Fig 9).  Samples
are fitted to normals; weighted sums of the parameters stay normal, so
percentiles are closed-form.  The one exception is the distributed
``T_transfer``: the max of n i.i.d. normals, obtained by Monte-Carlo
resampling for moderate n and by the Gumbel limit from extreme-value
theory for large n (significantly faster than resampling).

Chunks of one task share the same function instance, so per-chunk
times are modelled as fully correlated within an instance: ``C·k`` has
mean ``k·μ_C`` and standard deviation ``k·σ_C``.  This errs on the side
of overestimation, which the paper accepts ("the model is allowed to
overestimate the replication time to some extent").

Every prediction depends on the object size only through its chunk
count ``num_chunks(size)`` — auxiliary seeded draws are keyed on the
chunk count too, so two sizes in the same chunk bucket yield
bit-identical predictions.  That exactness is what lets the planner
cache whole plans per size bucket (see ``core.planner.PlanCache``);
parameter updates are broadcast to registered invalidation listeners.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["NormalParam", "LocParams", "PathParams", "PerformanceModel", "PathKey"]

PathKey = tuple[str, str, str]  # (exec loc key, src key, dst key)

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)

# Acklam's rational approximation to the inverse standard-normal CDF.
_PPF_A = (-3.969683028665376e+01, 2.209460984245205e+02,
          -2.759285104469687e+02, 1.383577518672690e+02,
          -3.066479806614716e+01, 2.506628277459239e+00)
_PPF_B = (-5.447609879822406e+01, 1.615858368580409e+02,
          -1.556989798598866e+02, 6.680131188771972e+01,
          -1.328068155288572e+01)
_PPF_C = (-7.784894002430293e-03, -3.223964580411365e-01,
          -2.400758277161838e+00, -2.549732539343734e+00,
          4.374664141464968e+00, 2.938163982698783e+00)
_PPF_D = (7.784695709041462e-03, 3.224671290700398e-01,
          2.445134137142996e+00, 3.754408661907416e+00)
_PPF_LOW = 0.02425


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF without scipy.

    Acklam's rational approximation (|ε| < 1.15e-9) polished by one
    Halley step against ``math.erfc``, which brings the result to
    within a few ULP of ``scipy.stats.norm.ppf`` — the previous
    per-call scipy import dominated planner cost.
    """
    if not 0.0 < p < 1.0:
        if p == 0.0:
            return -math.inf
        if p == 1.0:
            return math.inf
        raise ValueError(f"percentile must be in [0, 1], got {p}")
    if p < _PPF_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = ((((((_PPF_C[0] * q + _PPF_C[1]) * q + _PPF_C[2]) * q + _PPF_C[3])
               * q + _PPF_C[4]) * q + _PPF_C[5])
             / ((((_PPF_D[0] * q + _PPF_D[1]) * q + _PPF_D[2]) * q
                 + _PPF_D[3]) * q + 1.0))
    elif p <= 1.0 - _PPF_LOW:
        q = p - 0.5
        r = q * q
        x = ((((((_PPF_A[0] * r + _PPF_A[1]) * r + _PPF_A[2]) * r + _PPF_A[3])
               * r + _PPF_A[4]) * r + _PPF_A[5]) * q
             / (((((_PPF_B[0] * r + _PPF_B[1]) * r + _PPF_B[2]) * r
                  + _PPF_B[3]) * r + _PPF_B[4]) * r + 1.0))
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -((((((_PPF_C[0] * q + _PPF_C[1]) * q + _PPF_C[2]) * q + _PPF_C[3])
                * q + _PPF_C[4]) * q + _PPF_C[5])
              / ((((_PPF_D[0] * q + _PPF_D[1]) * q + _PPF_D[2]) * q
                  + _PPF_D[3]) * q + 1.0))
    # One Halley refinement: e = Φ(x) − p, u = e / φ(x).
    e = 0.5 * math.erfc(-x / _SQRT2) - p
    u = e * _SQRT_2PI * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


@dataclass(frozen=True)
class NormalParam:
    """A parameter described as a (truncated-at-zero) normal."""

    mean: float
    std: float

    @staticmethod
    def from_samples(samples) -> "NormalParam":
        xs = np.asarray(list(samples), dtype=float)
        if xs.size == 0:
            raise ValueError("cannot fit a parameter to zero samples")
        std = float(xs.std(ddof=1)) if xs.size > 1 else 0.0
        return NormalParam(float(xs.mean()), std)

    @staticmethod
    def zero() -> "NormalParam":
        return _ZERO

    def scaled(self, k: float) -> "NormalParam":
        """The distribution of ``k · X`` (fully correlated repetition)."""
        return NormalParam(self.mean * k, self.std * abs(k))

    def iid_sum(self, n: int) -> "NormalParam":
        """The distribution of the sum of ``n`` independent draws."""
        return NormalParam(self.mean * n, self.std * math.sqrt(n))

    def plus(self, other: "NormalParam") -> "NormalParam":
        """Sum of two independent normals."""
        return NormalParam(self.mean + other.mean,
                           math.hypot(self.std, other.std))

    def percentile(self, p: float) -> float:
        if self.std == 0:
            return self.mean
        return self.mean + self.std * _norm_ppf(p)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.maximum(rng.normal(self.mean, self.std, size), 0.0)


_ZERO = NormalParam(0.0, 0.0)


@dataclass(frozen=True)
class LocParams:
    """Function-platform parameters at one execution location."""

    invoke: NormalParam          # I(loc)
    startup: NormalParam         # D(loc)
    postponement: NormalParam    # P(loc)


@dataclass(frozen=True)
class PathParams:
    """Transfer parameters for one (exec loc, src, dst) path."""

    client_startup: NormalParam     # S(src, dst, loc)
    chunk: NormalParam              # C(src, dst, loc), single-function
    chunk_distributed: NormalParam  # C'(src, dst, loc), incl. KV accesses

    def scaled(self, ratio: float) -> "PathParams":
        """Uniformly rescale the path (runtime drift correction)."""
        return PathParams(
            self.client_startup.scaled(ratio),
            self.chunk.scaled(ratio),
            self.chunk_distributed.scaled(ratio),
        )


@lru_cache(maxsize=4096)
def _gumbel_constants(n: int) -> tuple[float, float]:
    """Extreme-value normalizing constants for the max of n std normals."""
    ln_n = math.log(n)
    a = math.sqrt(2 * ln_n) - (math.log(ln_n) + math.log(4 * math.pi)) / (
        2 * math.sqrt(2 * ln_n)
    )
    b = 1.0 / math.sqrt(2 * ln_n)
    return a, b


@dataclass
class PerformanceModel:
    """The two-fold (single / parallel) distribution-aware model."""

    chunk_size: int
    mc_samples: int = 2000
    gumbel_threshold: int = 64
    seed: int = 0
    loc_params: dict[str, LocParams] = field(default_factory=dict)
    path_params: dict[PathKey, PathParams] = field(default_factory=dict)
    _mc_cache: dict[tuple, np.ndarray] = field(default_factory=dict, repr=False)
    mc_runs: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._seed_table: dict[tuple, int] = {}
        self._listeners: list[Callable[[Optional[PathKey]], None]] = []

    # -- parameter management --------------------------------------------------

    def subscribe_invalidation(
            self, fn: Callable[[Optional[PathKey]], None]) -> None:
        """Register a listener called whenever predictions may change.

        The listener receives the affected :data:`PathKey`, or ``None``
        when every cached prediction must be dropped (location-level
        parameter changes affect all paths through that location).
        """
        self._listeners.append(fn)

    def _notify(self, key: Optional[PathKey]) -> None:
        for fn in self._listeners:
            fn(key)

    def set_loc_params(self, loc_key: str, params: LocParams) -> None:
        self.loc_params[loc_key] = params
        self._notify(None)

    def set_path_params(self, key: PathKey, params: PathParams) -> None:
        self.path_params[key] = params
        self._invalidate(key)

    def has_path(self, key: PathKey) -> bool:
        return key in self.path_params and key[0] in self.loc_params

    def scale_path(self, key: PathKey, ratio: float) -> None:
        """Drift correction: rescale a path's transfer parameters."""
        if ratio <= 0:
            raise ValueError("scale ratio must be positive")
        self.path_params[key] = self.path_params[key].scaled(ratio)
        self._invalidate(key)

    def _invalidate(self, key: PathKey) -> None:
        stale = [k for k in self._mc_cache if k[:3] == key]
        for k in stale:
            del self._mc_cache[k]
        self._notify(key)

    # -- chunk math ------------------------------------------------------------

    def num_chunks(self, size: int) -> int:
        return max(1, math.ceil(size / self.chunk_size))

    def chunks_per_function(self, size: int, n: int) -> int:
        return math.ceil(self.num_chunks(size) / n)

    # -- T_func -----------------------------------------------------------------

    def t_func(self, n: int, loc_key: str, inline: bool = False) -> NormalParam:
        """Distribution of the function-readiness time.

        ``inline`` means the orchestrator handles the object locally
        (small objects), so T_func is identically zero.
        """
        if inline:
            return _ZERO
        lp = self.loc_params[loc_key]
        if n == 1:
            return lp.invoke.plus(lp.startup)
        return lp.invoke.iid_sum(n).plus(lp.startup).plus(lp.postponement)

    # -- T_transfer ----------------------------------------------------------------

    def t_transfer_single(self, key: PathKey, size: int) -> NormalParam:
        pp = self.path_params[key]
        k = self.num_chunks(size)
        return pp.client_startup.plus(pp.chunk.scaled(k))

    def _per_instance(self, key: PathKey, size: int, n: int) -> NormalParam:
        pp = self.path_params[key]
        m = self.chunks_per_function(size, n)
        return pp.client_startup.plus(pp.chunk_distributed.scaled(m))

    def transfer_tail_samples(self, key: PathKey, size: int, n: int) -> np.ndarray:
        """Monte-Carlo samples of ``max_i(S_i + C'_i·m)`` (cached).

        The simulation is an on-demand process: it runs when the cache
        is cold (bootstrap) and after :meth:`scale_path` /
        :meth:`set_path_params` invalidate the entry (drift detected).
        """
        m = self.chunks_per_function(size, n)
        cache_key = (*key, n, m)
        cached = self._mc_cache.get(cache_key)
        if cached is None:
            per_inst = self._per_instance(key, size, n)
            draws = per_inst.sample(self._rng, (self.mc_samples, n))  # type: ignore[arg-type]
            cached = np.asarray(draws).reshape(self.mc_samples, n).max(axis=1)
            self._mc_cache[cache_key] = cached
            self.mc_runs += 1
        return cached

    def t_transfer_parallel_percentile(self, key: PathKey, size: int, n: int,
                                       p: float) -> float:
        if n >= self.gumbel_threshold:
            return self._gumbel_percentile(key, size, n, p)
        samples = self.transfer_tail_samples(key, size, n)
        return float(np.quantile(samples, p))

    def _gumbel_percentile(self, key: PathKey, size: int, n: int, p: float) -> float:
        """EVT approximation: the max of n i.i.d. normals converges to a
        Gumbel with location ``μ + σ·a_n`` and scale ``σ·b_n``."""
        per_inst = self._per_instance(key, size, n)
        a_n, b_n = _gumbel_constants(n)
        location = per_inst.mean + per_inst.std * a_n
        scale = per_inst.std * b_n
        return location - scale * math.log(-math.log(p))

    # -- full prediction ----------------------------------------------------------

    def predict_percentile(self, key: PathKey, size: int, n: int, p: float,
                           inline: bool = False) -> float:
        """The time ``t`` such that ``P(T_rep <= t) >= p`` for this plan."""
        t_func = self.t_func(n, key[0], inline=inline)
        if n == 1:
            return t_func.plus(self.t_transfer_single(key, size)).percentile(p)
        # Sum a percentile-matched T_func with the transfer tail.  For
        # large n the Gumbel shortcut is used; otherwise combine the
        # Monte-Carlo transfer samples with T_func draws for an exact
        # empirical percentile of the sum.  The T_func draws are seeded
        # by the plan key so repeated queries of the same plan are
        # consistent (percentiles stay monotone across calls).
        if n >= self.gumbel_threshold:
            return t_func.percentile(p) + self._gumbel_percentile(key, size, n, p)
        transfer = self.transfer_tail_samples(key, size, n)
        func_rng = np.random.default_rng(self._stable_seed(key, size, n, inline))
        func_draws = t_func.sample(func_rng, transfer.size)
        return float(np.quantile(transfer + func_draws, p))

    def predict_percentiles(self, key: PathKey, size: int,
                            candidates: Sequence[tuple[int, bool]],
                            ps: Sequence[float]) -> np.ndarray:
        """Percentiles for many candidate plans in one NumPy pass.

        ``candidates`` is a sequence of ``(n, inline)`` pairs; the
        result has shape ``(len(candidates), len(ps))`` and is
        bit-identical to calling :meth:`predict_percentile` per entry.
        Monte-Carlo candidates share a single stacked ``np.quantile``
        call; closed-form (n == 1) and Gumbel-range candidates never
        touch the Monte-Carlo machinery.
        """
        ps = list(ps)
        out = np.empty((len(candidates), len(ps)), dtype=float)
        mc_rows: list[int] = []
        mc_totals: list[np.ndarray] = []
        for i, (n, inline) in enumerate(candidates):
            t_func = self.t_func(n, key[0], inline=inline)
            if n == 1:
                total = t_func.plus(self.t_transfer_single(key, size))
                out[i] = [total.percentile(p) for p in ps]
            elif n >= self.gumbel_threshold:
                out[i] = [t_func.percentile(p)
                          + self._gumbel_percentile(key, size, n, p)
                          for p in ps]
            else:
                transfer = self.transfer_tail_samples(key, size, n)
                func_rng = np.random.default_rng(
                    self._stable_seed(key, size, n, inline))
                mc_rows.append(i)
                mc_totals.append(transfer + t_func.sample(func_rng, transfer.size))
        if mc_rows:
            stacked = np.vstack(mc_totals)
            # axis=1 quantiles for all candidates at once; float64
            # quantile of each row equals the per-row scalar quantile.
            q = np.quantile(stacked, ps, axis=1)
            for j, i in enumerate(mc_rows):
                out[i] = q[:, j]
        return out

    def _stable_seed(self, key: PathKey, size: int, n: int,
                     inline: bool) -> int:
        """Process-independent seed for per-plan auxiliary draws.

        Keyed on the chunk count, not the raw size: predictions depend
        on size only through ``num_chunks``, and keeping the seed in
        the same equivalence class makes plan-level caching exact.
        """
        k = self.num_chunks(size)
        table_key = (key, k, n, inline)
        seed = self._seed_table.get(table_key)
        if seed is None:
            token = f"{self.seed}:{key}:{k}:{n}:{inline}".encode()
            seed = int.from_bytes(hashlib.sha256(token).digest()[:8], "little")
            self._seed_table[table_key] = seed
        return seed

    def predict_stats(self, key: PathKey, size: int, n: int,
                      inline: bool = False) -> tuple[float, float]:
        """(mean, std) of the predicted replication time (Table 4)."""
        t_func = self.t_func(n, key[0], inline=inline)
        if n == 1:
            total = t_func.plus(self.t_transfer_single(key, size))
            return total.mean, total.std
        transfer = self.transfer_tail_samples(key, size, n)
        func_draws = t_func.sample(self._rng, transfer.size)
        total = transfer + func_draws
        return float(total.mean()), float(total.std())

    def predict_samples(self, key: PathKey, size: int, n: int,
                        inline: bool = False,
                        count: Optional[int] = None) -> np.ndarray:
        """Raw predicted-T_rep samples (for Fig 18/19 density overlays)."""
        count = count or self.mc_samples
        t_func = self.t_func(n, key[0], inline=inline)
        func_draws = t_func.sample(self._rng, count)
        if n == 1:
            transfer = self.t_transfer_single(key, size).sample(self._rng, count)
            return func_draws + transfer
        per_inst = self._per_instance(key, size, n)
        draws = np.asarray(per_inst.sample(self._rng, (count, n))).reshape(count, n)  # type: ignore[arg-type]
        return func_draws + draws.max(axis=1)
