"""Dynamic replication strategy planning (§5.3, Algorithm 3).

Given an object, the remaining SLO budget (the user SLO minus the time
already consumed by the cloud notification), and a target percentile,
the planner scans parallelism levels exponentially (1, 2, 4, …,
``n_max``) and, at each level, compares executing the replicators at
the **source** region against the **destination** region.  The first
SLO-compliant plan wins — fewer functions means fewer API calls and
less aggregate execution time, so the scan order doubles as a cost
order and the exact cost of each plan never needs computing.  If no
plan complies, the fastest plan found is returned (best effort).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import ReplicaConfig
from repro.core.model import PathKey, PerformanceModel

__all__ = ["Plan", "StrategyPlanner"]


@dataclass(frozen=True)
class Plan:
    """An executable replication strategy."""

    n: int                    # number of replicator functions
    loc_key: str              # execution region (functions run here)
    path: PathKey             # (loc, src, dst)
    predicted_s: float        # predicted replication time at percentile p
    percentile: float
    compliant: bool           # predicted_s fits the remaining SLO budget
    inline: bool              # orchestrator replicates by itself (T_func=0)
    #: Median prediction — the runtime logger compares actual task times
    #: against this (comparing against the p99 estimate would read a
    #: healthy model as persistently overestimating).
    predicted_median_s: float = 0.0

    @property
    def distributed(self) -> bool:
        return self.n > 1


class StrategyPlanner:
    """Algorithm 3 over a fitted :class:`PerformanceModel`."""

    def __init__(self, model: PerformanceModel, config: ReplicaConfig):
        self.model = model
        self.config = config
        self.plans_generated = 0

    def _candidate_locs(self, src_key: str, dst_key: str) -> list[str]:
        locs = [src_key]
        if dst_key != src_key:
            locs.append(dst_key)
        return locs

    def _is_inline(self, n: int, loc_key: str, src_key: str, size: int) -> bool:
        """The orchestrator (at the source region) can replicate small
        objects itself, skipping the extra invocation entirely."""
        return n == 1 and loc_key == src_key and size <= self.config.local_threshold

    def _max_useful_parallelism(self, size: int, fastest: bool = False) -> int:
        """No more functions than data parts; in SLO mode, no
        distribution at all below the distributed-replication threshold
        (a single function is cheaper and compliant).  In fastest mode
        (SLO = 0) every multi-part object may be parallelized — that is
        how the trace replay absorbs bursts of medium objects."""
        if not fastest and size < self.config.distributed_threshold:
            return 1
        return max(1, min(self.config.max_parallelism,
                          self.model.num_chunks(size)))

    def generate(self, size: int, src_key: str, dst_key: str,
                 slo_remaining: float, percentile: float | None = None) -> Plan:
        """Produce the cheapest SLO-compliant plan, else the fastest.

        ``slo_remaining`` is ``SLO - (now - obj.timestamp)``; it may be
        negative when the notification alone blew the budget, in which
        case the fastest plan is returned (the SLO is already violated,
        per the paper's note on unreasonably tight SLOs).
        """
        p = percentile if percentile is not None else self.config.percentile
        self.plans_generated += 1
        fastest_mode = slo_remaining == -math.inf
        n_cap = self._max_useful_parallelism(size, fastest=fastest_mode)
        best: Plan | None = None
        n = 1
        while n <= n_cap:
            for loc_key in self._candidate_locs(src_key, dst_key):
                path: PathKey = (loc_key, src_key, dst_key)
                if not self.model.has_path(path):
                    continue
                inline = self._is_inline(n, loc_key, src_key, size)
                predicted = self.model.predict_percentile(path, size, n, p,
                                                          inline=inline)
                plan = Plan(
                    n=n, loc_key=loc_key, path=path, predicted_s=predicted,
                    percentile=p, compliant=predicted <= slo_remaining,
                    inline=inline,
                )
                if best is None or plan.predicted_s < best.predicted_s:
                    best = plan
            # Return as soon as this parallelism level has a compliant
            # plan: it is the cheapest level that can meet the SLO.
            if best is not None and best.compliant:
                return self._with_median(best, size)
            n *= 2
        if best is None:
            raise RuntimeError(
                f"no profiled path between {src_key} and {dst_key}"
            )
        return self._with_median(best, size)

    def _with_median(self, plan: Plan, size: int) -> Plan:
        from dataclasses import replace

        median = self.model.predict_percentile(plan.path, size, plan.n, 0.5,
                                               inline=plan.inline)
        return replace(plan, predicted_median_s=median)

    def fastest(self, size: int, src_key: str, dst_key: str) -> Plan:
        """SLO = 0 mode (§8.1): scan everything, return the fastest."""
        return self.generate(size, src_key, dst_key, slo_remaining=-math.inf)
