"""Dynamic replication strategy planning (§5.3, Algorithm 3).

Given an object, the remaining SLO budget (the user SLO minus the time
already consumed by the cloud notification), and a target percentile,
the planner scans parallelism levels exponentially (1, 2, 4, …,
``n_max``) and, at each level, compares executing the replicators at
the **source** region against the **destination** region.  The first
SLO-compliant plan wins — fewer functions means fewer API calls and
less aggregate execution time, so the scan order doubles as a cost
order and the exact cost of each plan never needs computing.  If no
plan complies, the fastest plan found is returned (best effort).

Plans are memoized.  Every model prediction depends on the object size
only through its chunk count, so a plan query is fully determined by
``(src, dst, percentile, chunk count, parallelism cap, inline
eligibility)`` — :class:`PlanCache` stores the predicted percentiles of
every ladder candidate under that key and replays the (cheap)
Algorithm-3 selection against the caller's actual SLO budget.  The
cache subscribes to the model's invalidation feed: drift-triggered
``scale_path``/``set_path_params`` drop the affected (src, dst)
entries, and location-parameter changes clear everything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import ReplicaConfig
from repro.core.health import HealthTracker, NoRouteAvailable
from repro.core.model import PathKey, PerformanceModel

__all__ = ["Plan", "PlanCache", "StrategyPlanner"]


@dataclass(frozen=True)
class Plan:
    """An executable replication strategy."""

    n: int                    # number of replicator functions
    loc_key: str              # execution region (functions run here)
    path: PathKey             # (loc, src, dst)
    predicted_s: float        # predicted replication time at percentile p
    percentile: float
    compliant: bool           # predicted_s fits the remaining SLO budget
    inline: bool              # orchestrator replicates by itself (T_func=0)
    #: Median prediction — the runtime logger compares actual task times
    #: against this (comparing against the p99 estimate would read a
    #: healthy model as persistently overestimating).
    predicted_median_s: float = 0.0

    @property
    def distributed(self) -> bool:
        return self.n > 1


#: A scored ladder candidate: (n, loc_key, path, inline, predicted at
#: the target percentile, predicted median).
_Candidate = tuple[int, str, PathKey, bool, float, float]


class PlanCache:
    """Memoized Algorithm-3 candidate tables, keyed per size bucket.

    The key ``(src, dst, p, chunks, n_cap, inline_ok)`` captures every
    way the inputs can influence a prediction, so cached entries are
    exact, not approximate.  Entries hold the scored ladder candidates
    (in scan order); selection against a concrete SLO budget is
    replayed per query, which keeps SLO-mode calls with different
    remaining budgets sharing one entry.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, list[_Candidate]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[list[_Candidate]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: tuple, candidates: list[_Candidate]) -> None:
        self._entries[key] = candidates

    def invalidate(self, path: Optional[PathKey] = None) -> None:
        """Drop entries affected by a model-parameter change.

        ``path`` is the updated :data:`PathKey`; ``None`` (location
        parameters changed) clears the whole cache.
        """
        if path is None:
            self._entries.clear()
            return
        _loc, src, dst = path
        stale = [k for k in self._entries if k[0] == src and k[1] == dst]
        for k in stale:
            del self._entries[k]


class StrategyPlanner:
    """Algorithm 3 over a fitted :class:`PerformanceModel`."""

    def __init__(self, model: PerformanceModel, config: ReplicaConfig,
                 health: Optional[HealthTracker] = None):
        self.model = model
        self.config = config
        #: Optional substrate-health ledger; while any circuit is open,
        #: ladder candidates whose execution location is dark are
        #: skipped (degraded-mode routing).
        self.health = health
        #: Optional :class:`~repro.core.tracing.Tracer`; only the
        #: degraded-routing decisions emit (the per-plan span belongs to
        #: the engine, which knows the task id).
        self.tracer = None
        self.plans_generated = 0
        self.degraded_plans = 0
        self.cache = PlanCache()
        # Fastest-mode selection ignores the SLO budget, so the chosen
        # Plan itself (frozen, safely shared) can be memoized on top of
        # the candidate tables — the trace replay calls nothing else.
        self._fastest_plans: dict[tuple, Plan] = {}
        model.subscribe_invalidation(self._invalidate)

    def _invalidate(self, path) -> None:
        self.cache.invalidate(path)
        if path is None:
            self._fastest_plans.clear()
            return
        _loc, src, dst = path
        stale = [k for k in self._fastest_plans
                 if k[0] == src and k[1] == dst]
        for k in stale:
            del self._fastest_plans[k]

    def _candidate_locs(self, src_key: str, dst_key: str) -> list[str]:
        locs = [src_key]
        if dst_key != src_key:
            locs.append(dst_key)
        return locs

    def _is_inline(self, n: int, loc_key: str, src_key: str, size: int) -> bool:
        """The orchestrator (at the source region) can replicate small
        objects itself, skipping the extra invocation entirely."""
        return n == 1 and loc_key == src_key and size <= self.config.local_threshold

    def _max_useful_parallelism(self, size: int, fastest: bool = False) -> int:
        """No more functions than data parts; in SLO mode, no
        distribution at all below the distributed-replication threshold
        (a single function is cheaper and compliant).  In fastest mode
        (SLO = 0) every multi-part object may be parallelized — that is
        how the trace replay absorbs bursts of medium objects."""
        if not fastest and size < self.config.distributed_threshold:
            return 1
        return max(1, min(self.config.max_parallelism,
                          self.model.num_chunks(size)))

    def _scored_candidates(self, size: int, src_key: str, dst_key: str,
                           p: float, n_cap: int,
                           inline_ok: bool) -> list[_Candidate]:
        """Score every ladder candidate, batching the model queries.

        Candidates are returned in Algorithm-3 scan order (level-major,
        source location before destination).  Each carries both the
        target-percentile and the median prediction so selection never
        goes back to the model.
        """
        locs = self._candidate_locs(src_key, dst_key)
        slots: list[tuple[int, str, PathKey, bool]] = []
        n = 1
        while n <= n_cap:
            for loc_key in locs:
                path: PathKey = (loc_key, src_key, dst_key)
                if not self.model.has_path(path):
                    continue
                inline = inline_ok and n == 1 and loc_key == src_key
                slots.append((n, loc_key, path, inline))
            n *= 2
        # One vectorized percentile pass per path (candidate queries for
        # the same path share Monte-Carlo state).
        by_path: dict[PathKey, list[int]] = {}
        for i, (_n, _loc, path, _inline) in enumerate(slots):
            by_path.setdefault(path, []).append(i)
        scored: list[Optional[_Candidate]] = [None] * len(slots)
        for path, indices in by_path.items():
            queries = [(slots[i][0], slots[i][3]) for i in indices]
            preds = self.model.predict_percentiles(path, size, queries, (p, 0.5))
            for row, i in enumerate(indices):
                n_i, loc_i, path_i, inline_i = slots[i]
                scored[i] = (n_i, loc_i, path_i, inline_i,
                             float(preds[row, 0]), float(preds[row, 1]))
        return [c for c in scored if c is not None]

    def generate(self, size: int, src_key: str, dst_key: str,
                 slo_remaining: float, percentile: float | None = None) -> Plan:
        """Produce the cheapest SLO-compliant plan, else the fastest.

        ``slo_remaining`` is ``SLO - (now - obj.timestamp)``; it may be
        negative when the notification alone blew the budget, in which
        case the fastest plan is returned (the SLO is already violated,
        per the paper's note on unreasonably tight SLOs).
        """
        p = percentile if percentile is not None else self.config.percentile
        self.plans_generated += 1
        fastest_mode = slo_remaining == -math.inf
        n_cap = self._max_useful_parallelism(size, fastest=fastest_mode)
        inline_ok = size <= self.config.local_threshold
        key = (src_key, dst_key, p, self.model.num_chunks(size), n_cap,
               inline_ok)
        candidates = self.cache.get(key)
        if candidates is None:
            candidates = self._scored_candidates(size, src_key, dst_key, p,
                                                 n_cap, inline_ok)
            self.cache.put(key, candidates)
        if not candidates:
            raise RuntimeError(
                f"no profiled path between {src_key} and {dst_key}"
            )
        health = self.health
        if health is not None and health.any_open:
            # Degraded mode: drop candidates whose execution location's
            # FaaS platform sits behind an open circuit.  Filtering
            # happens on a copy — the cache stays health-agnostic so
            # recovery needs no invalidation.
            filtered = [c for c in candidates
                        if health.available(("faas", c[1]))]
            # Distinguish NoRoute-with-intent (an operator cordoned the
            # location) from NoRoute-by-failure (a breaker opened) in
            # the trace: the cordon invariant and operators both need
            # to see *why* a plan degraded.
            cordoned_drops = sum(
                1 for c in candidates
                if not health.available(("faas", c[1]))
                and health.is_cordoned(("faas", c[1])))
            if not filtered:
                if self.tracer is not None:
                    self.tracer.event("plan-no-route", "engine", None,
                                      src=src_key, dst=dst_key,
                                      cordoned=cordoned_drops)
                raise NoRouteAvailable(
                    f"every execution location for {src_key}->{dst_key} "
                    f"is behind an open circuit or cordon")
            if len(filtered) != len(candidates):
                self.degraded_plans += 1
                if self.tracer is not None:
                    self.tracer.event(
                        "plan-degraded", "engine", None, src=src_key,
                        dst=dst_key,
                        dropped=len(candidates) - len(filtered),
                        cordoned=cordoned_drops)
            candidates = filtered
        # Replay Algorithm 3 against this call's SLO budget: walk the
        # ladder, keep the global best, stop at the first level whose
        # best plan complies.
        best: Optional[_Candidate] = None
        level = candidates[0][0]
        for cand in candidates:
            if cand[0] != level:
                if best is not None and best[4] <= slo_remaining:
                    break
                level = cand[0]
            if best is None or cand[4] < best[4]:
                best = cand
        assert best is not None
        n, loc_key, path, inline, predicted, median = best
        return Plan(
            n=n, loc_key=loc_key, path=path, predicted_s=predicted,
            percentile=p, compliant=predicted <= slo_remaining,
            inline=inline, predicted_median_s=median,
        )

    def _with_median(self, plan: Plan, size: int) -> Plan:
        median = self.model.predict_percentile(plan.path, size, plan.n, 0.5,
                                               inline=plan.inline)
        return replace(plan, predicted_median_s=median)

    def fastest(self, size: int, src_key: str, dst_key: str) -> Plan:
        """SLO = 0 mode (§8.1): scan everything, return the fastest."""
        if self.health is not None and self.health.any_open:
            # The memoized Plan may route into a dark region; bypass it
            # (without poisoning it) until every circuit closes.
            return self.generate(size, src_key, dst_key,
                                 slo_remaining=-math.inf)
        key = (src_key, dst_key, self.config.percentile,
               self.model.num_chunks(size), size <= self.config.local_threshold,
               size >= self.config.distributed_threshold)
        plan = self._fastest_plans.get(key)
        if plan is None:
            plan = self.generate(size, src_key, dst_key, slo_remaining=-math.inf)
            self._fastest_plans[key] = plan
        else:
            self.plans_generated += 1
            self.cache.hits += 1
        return plan
