"""Anti-entropy repair — the last line of defense behind at-least-once.

Every recovery mechanism upstream of this module assumes the *event*
survived somewhere: the notification bus redelivers drops, platforms
retry crashes into dead-letter queues, the engine parks no-route tasks
in a durable backlog.  An event lost beyond all of that (operator
deleted a DLQ entry, a backlog mirror write raced a KV outage and the
process died) would leave the destination silently diverged forever.

The :class:`AntiEntropyScanner` closes that hole the way production
replicators do (DynamoDB global tables, Cassandra repair): it diffs the
source and destination listings directly and re-drives the differences
as synthetic events through the normal orchestration path — so repairs
take locks, respect done markers, and are idempotent just like live
traffic.  Three divergence kinds are detected:

* **missing** — a source object absent at the destination;
* **stale** — present but byte-different (ETag mismatch);
* **lingering** — a destination object whose source was deleted.

Re-driven deletes are stamped with the source's current top sequencer,
so a repaired marker can never exceed anything the source issued (the
auditor's done-drift invariant holds across repairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.service import AReplicaService, ReplicationRule

__all__ = ["RepairFinding", "RepairReport", "AntiEntropyScanner"]


@dataclass(frozen=True)
class RepairFinding:
    """One detected source/destination divergence."""

    rule_id: str
    kind: str  # missing | stale | lingering
    key: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.key}: {self.detail}"


@dataclass
class RepairReport:
    """Outcome of one anti-entropy scan."""

    rule_id: str
    #: Source + destination keys examined.
    scanned: int = 0
    findings: list[RepairFinding] = field(default_factory=list)
    #: Synthetic events dispatched to heal the findings (0 when the
    #: scan ran in detect-only mode).
    redriven: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[RepairFinding]:
        return [f for f in self.findings if f.kind == kind]

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "scanned": self.scanned,
            "missing": len(self.by_kind("missing")),
            "stale": len(self.by_kind("stale")),
            "lingering": len(self.by_kind("lingering")),
            "redriven": self.redriven,
            "clean": self.clean,
        }

    def render(self) -> str:
        if self.clean:
            return (f"repair scan {self.rule_id}: clean "
                    f"({self.scanned} key(s) examined)")
        lines = [f"repair scan {self.rule_id}: {len(self.findings)} "
                 f"divergence(s), {self.redriven} re-driven"]
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)


class AntiEntropyScanner:
    """Diff a rule's buckets and re-drive the differences."""

    def __init__(self, service: AReplicaService):
        self.service = service

    def scan(self, rule: Optional[ReplicationRule] = None,
             redrive: bool = True) -> RepairReport:
        """Scan ``rule`` (or every rule) and return a :class:`RepairReport`.

        With ``redrive=True`` each finding is handed back to the
        engine as a synthetic event (parked like live traffic if the
        route is still down); run the simulation afterwards to let the
        repairs complete.  The scan itself consumes no simulated time —
        it is the operator-side listing pass, not a workload.
        """
        rules = [rule] if rule is not None else list(self.service.rules.values())
        report = RepairReport("+".join(r.rule_id for r in rules))
        for r in rules:
            self._scan_rule(r, report, redrive)
        return report

    def _scan_rule(self, rule: ReplicationRule, report: RepairReport,
                   redrive: bool) -> None:
        src, dst = rule.src_bucket, rule.dst_bucket
        now = self.service.cloud.now
        engine = rule.engine
        src_keys = set(src.keys())
        for key in sorted(src_keys):
            report.scanned += 1
            current = src.head(key)
            if key not in dst:
                finding = RepairFinding(rule.rule_id, "missing", key,
                                        "absent at destination")
            elif dst.head(key).etag != current.etag:
                finding = RepairFinding(rule.rule_id, "stale", key,
                                        "destination content differs")
            else:
                continue
            report.findings.append(finding)
            if redrive:
                # The "repair" flag bypasses the engine's done-marker
                # short-circuit: the marker is exactly what masks this
                # divergence (the version *was* replicated once).
                engine.redrive_event({
                    "kind": "created", "key": key, "etag": current.etag,
                    "seq": current.sequencer, "size": current.size,
                    "event_time": now, "repair": True,
                })
                report.redriven += 1
        for key in dst.keys():
            if key in src_keys:
                continue
            report.scanned += 1
            report.findings.append(RepairFinding(
                rule.rule_id, "lingering", key,
                "survives at destination after source delete"))
            if redrive:
                # The source's top sequencer bounds the repaired done
                # marker (the auditor's done-drift invariant); ordering
                # is safe because the key verifiably no longer exists.
                engine.redrive_event({
                    "kind": "deleted", "key": key,
                    "etag": dst.head(key).etag,
                    "seq": src.last_sequencer, "size": 0,
                    "event_time": now,
                })
                report.redriven += 1
