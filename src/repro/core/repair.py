"""Anti-entropy repair — the last line of defense behind at-least-once.

Every recovery mechanism upstream of this module assumes the *event*
survived somewhere: the notification bus redelivers drops, platforms
retry crashes into dead-letter queues, the engine parks no-route tasks
in a durable backlog.  An event lost beyond all of that (operator
deleted a DLQ entry, a backlog mirror write raced a KV outage and the
process died) would leave the destination silently diverged forever.

The :class:`AntiEntropyScanner` closes that hole the way production
replicators do (DynamoDB global tables, Cassandra repair): it diffs the
source and destination listings directly and re-drives the differences
as synthetic events through the normal orchestration path — so repairs
take locks, respect done markers, and are idempotent just like live
traffic.  Three divergence kinds are detected:

* **missing** — a source object absent at the destination;
* **stale** — present but byte-different (ETag mismatch);
* **lingering** — a destination object whose source was deleted;
* **corrupt** — (deep scrub only) the destination *reports* the right
  ETag but its stored bytes differ from the source: silent bit rot that
  lies to HEAD and therefore to the shallow diff above.  Scrub re-reads
  every ETag-matching destination object byte-for-byte, re-reading once
  on anomaly so a transient medium fault (injected read rot) is not
  escalated to a repair.

Re-driven deletes are stamped with the source's current top sequencer,
so a repaired marker can never exceed anything the source issued (the
auditor's done-drift invariant holds across repairs).

Anti-entropy is not free, and the cost model says so: every scan
charges its LIST pages and per-finding done-marker reads to the
ledger, and deep scrub additionally pays the GET request plus egress
for each destination object it re-reads — so cost reports reflect the
repair overhead instead of pretending background verification rides
for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.service import AReplicaService, ReplicationRule
from repro.simcloud.cost import CostCategory

__all__ = ["RepairFinding", "RepairReport", "AntiEntropyScanner"]

#: Keys returned per metered LIST page (the S3/GCS/Azure page size).
_LIST_PAGE = 1000


@dataclass(frozen=True)
class RepairFinding:
    """One detected source/destination divergence."""

    rule_id: str
    kind: str  # missing | stale | lingering | corrupt
    key: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.key}: {self.detail}"


@dataclass
class RepairReport:
    """Outcome of one anti-entropy scan."""

    rule_id: str
    #: Source + destination keys examined.
    scanned: int = 0
    findings: list[RepairFinding] = field(default_factory=list)
    #: Synthetic events dispatched to heal the findings (0 when the
    #: scan ran in detect-only mode).
    redriven: int = 0
    #: Destination objects byte-verified by deep scrub.
    scrubbed: int = 0
    #: Scrub anomalies that vanished on re-read (transient medium
    #: faults, not durable rot) — observed, but not repair findings.
    transient_anomalies: int = 0
    #: Abandoned destination multipart uploads aborted by the scan
    #: (the lifecycle-rule cleanup; 0 unless ``reap_uploads=True``).
    aborted_uploads: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[RepairFinding]:
        return [f for f in self.findings if f.kind == kind]

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "scanned": self.scanned,
            "missing": len(self.by_kind("missing")),
            "stale": len(self.by_kind("stale")),
            "lingering": len(self.by_kind("lingering")),
            "corrupt": len(self.by_kind("corrupt")),
            "scrubbed": self.scrubbed,
            "transient_anomalies": self.transient_anomalies,
            "aborted_uploads": self.aborted_uploads,
            "redriven": self.redriven,
            "clean": self.clean,
        }

    def render(self) -> str:
        if self.clean:
            scrub = (f", {self.scrubbed} scrubbed" if self.scrubbed else "")
            reaped = (f", {self.aborted_uploads} upload(s) reaped"
                      if self.aborted_uploads else "")
            return (f"repair scan {self.rule_id}: clean "
                    f"({self.scanned} key(s) examined{scrub}{reaped})")
        lines = [f"repair scan {self.rule_id}: {len(self.findings)} "
                 f"divergence(s), {self.redriven} re-driven"]
        lines += [f"  {f}" for f in self.findings]
        return "\n".join(lines)


class AntiEntropyScanner:
    """Diff a rule's buckets and re-drive the differences."""

    def __init__(self, service: AReplicaService):
        self.service = service

    def scan(self, rule: Optional[ReplicationRule] = None,
             redrive: bool = True, scrub: bool = False,
             reap_uploads: bool = False) -> RepairReport:
        """Scan ``rule`` (or every rule) and return a :class:`RepairReport`.

        With ``redrive=True`` each finding is handed back to the
        engine as a synthetic event (parked like live traffic if the
        route is still down); run the simulation afterwards to let the
        repairs complete.  The scan itself consumes no simulated time —
        it is the operator-side listing pass, not a workload — but its
        metered operations (LIST pages, done-marker reads, and scrub
        GETs/egress) are charged to the ledger.

        With ``scrub=True`` every destination object whose reported
        ETag matches the source is additionally re-read byte-for-byte:
        the deep pass that catches silent bit rot hiding behind a
        truthful-looking HEAD (finding kind ``corrupt``).

        With ``reap_uploads=True`` every destination multipart upload
        still pending at scan time is aborted — the lifecycle-rule
        cleanup for uploads abandoned by crashed tasks.  Only safe when
        the system is quiescent (an in-flight task's live upload is
        indistinguishable from an abandoned one), so it is opt-in.
        """
        rules = [rule] if rule is not None else list(self.service.rules.values())
        report = RepairReport("+".join(r.rule_id for r in rules))
        for r in rules:
            self._scan_rule(r, report, redrive, scrub)
            if reap_uploads:
                self._reap_uploads(r, report)
        return report

    def _reap_uploads(self, rule: ReplicationRule, report: RepairReport) -> None:
        """Abort abandoned destination uploads (metered, like LIST)."""
        cloud = self.service.cloud
        dst = rule.dst_bucket
        price = cloud.prices.store[dst.region.provider]
        for upload_id in dst.pending_uploads():
            dst.abort_multipart(upload_id)
            cloud.ledger.charge(cloud.now, CostCategory.STORAGE_REQUESTS,
                                price.put, "repair:abort-upload")
            report.aborted_uploads += 1

    # -- metered-operation charging ----------------------------------------

    def _charge_list(self, bucket, num_keys: int) -> None:
        cloud = self.service.cloud
        pages = max(1, -(-num_keys // _LIST_PAGE))
        price = cloud.prices.store[bucket.region.provider]
        # LIST bills at the PUT/mutating request tier on all three clouds.
        cloud.ledger.charge(cloud.now, CostCategory.STORAGE_REQUESTS,
                            pages * price.put,
                            f"repair:list:{bucket.region.key}")

    def _charge_marker_read(self, rule: ReplicationRule) -> None:
        cloud = self.service.cloud
        price = cloud.prices.kv[rule.dst_bucket.region.provider]
        cloud.ledger.charge(cloud.now, CostCategory.KV_OPS, price.read,
                            "repair:marker")

    def _scrub_read(self, rule: ReplicationRule, key: str):
        """One metered byte-level read of a destination object."""
        cloud = self.service.cloud
        dst = rule.dst_bucket
        price = cloud.prices.store[dst.region.provider]
        payload, obj = dst.get_object(key)
        cloud.ledger.charge(cloud.now, CostCategory.STORAGE_REQUESTS,
                            price.get, "repair:scrub-get")
        cloud.ledger.charge(
            cloud.now, CostCategory.EGRESS,
            cloud.prices.egress_cost(dst.region, rule.src_bucket.region,
                                     payload.size),
            "repair:scrub-bytes")
        return payload, obj

    def _scrub_key(self, rule: ReplicationRule, key: str, current,
                   report: RepairReport) -> Optional[RepairFinding]:
        """Byte-verify one ETag-matching destination object.

        Reads pass through the bucket's chaos layer, so a transient
        medium fault can surface here too; one verifying re-read keeps
        those from being escalated to (harmless but costly) repairs.
        Returns a ``corrupt`` finding only when the anomaly persists.
        """
        report.scrubbed += 1
        for attempt in range(2):
            payload, dst_obj = self._scrub_read(rule, key)
            if (payload.size == current.size
                    and payload.segments == current.blob.segments
                    and dst_obj.etag == current.etag):
                if attempt:
                    report.transient_anomalies += 1
                return None
        return RepairFinding(
            rule.rule_id, "corrupt", key,
            "destination bytes differ behind a matching reported ETag")

    # -- the diff itself ----------------------------------------------------

    def _scan_rule(self, rule: ReplicationRule, report: RepairReport,
                   redrive: bool, scrub: bool) -> None:
        src, dst = rule.src_bucket, rule.dst_bucket
        now = self.service.cloud.now
        engine = rule.engine
        src_keys = set(src.keys())
        dst_keys = dst.keys()
        self._charge_list(src, len(src_keys))
        self._charge_list(dst, len(dst_keys))
        for key in sorted(src_keys):
            report.scanned += 1
            current = src.head(key)
            if key not in dst:
                finding = RepairFinding(rule.rule_id, "missing", key,
                                        "absent at destination")
            elif dst.head(key).etag != current.etag:
                finding = RepairFinding(rule.rule_id, "stale", key,
                                        "destination content differs")
            elif scrub:
                finding = self._scrub_key(rule, key, current, report)
                if finding is None:
                    continue
            else:
                continue
            self._charge_marker_read(rule)
            report.findings.append(finding)
            if redrive:
                # The "repair" flag bypasses the engine's done-marker
                # short-circuit: the marker is exactly what masks this
                # divergence (the version *was* replicated once).
                engine.redrive_event({
                    "kind": "created", "key": key, "etag": current.etag,
                    "seq": current.sequencer, "size": current.size,
                    "event_time": now, "repair": True,
                })
                report.redriven += 1
        for key in dst_keys:
            if key in src_keys:
                continue
            report.scanned += 1
            self._charge_marker_read(rule)
            report.findings.append(RepairFinding(
                rule.rule_id, "lingering", key,
                "survives at destination after source delete"))
            if redrive:
                # The source's top sequencer bounds the repaired done
                # marker (the auditor's done-drift invariant); ordering
                # is safe because the key verifiably no longer exists.
                engine.redrive_event({
                    "kind": "deleted", "key": key,
                    "etag": dst.head(key).etag,
                    "seq": src.last_sequencer, "size": 0,
                    "event_time": now,
                })
                report.redriven += 1
