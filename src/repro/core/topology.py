"""Multi-region replication topologies.

A single rule replicates one bucket pair.  Real deployments arrange
rules into topologies: a *star* fans a primary out to many replicas
(disaster recovery, model distribution), a *chain* cascades through
regions (cost-tiered geo distribution — each hop pays the cheaper
backbone rate of its segment), and a *mesh* keeps every site writable
with full pairwise propagation (safe because the engine's content
short-circuit quenches echo replication).

This module builds those shapes on an :class:`AReplicaService`,
validates them, and answers fleet-level questions ("is every replica
converged?", "what is each site's delay profile?").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from repro.core.service import AReplicaService, ReplicationRule
from repro.simcloud.objectstore import Bucket

__all__ = ["ReplicationTopology"]


@dataclass
class ReplicationTopology:
    """A named set of rules built on one service."""

    service: AReplicaService
    name: str
    rules: list[ReplicationRule] = field(default_factory=list)
    buckets: list[Bucket] = field(default_factory=list)

    # -- builders -----------------------------------------------------------

    @classmethod
    def star(cls, service: AReplicaService, primary: Bucket,
             replicas: list[Bucket], name: str = "star") -> "ReplicationTopology":
        """Fan-out: primary → every replica."""
        if not replicas:
            raise ValueError("a star needs at least one replica")
        cls._check_distinct([primary, *replicas])
        topo = cls(service, name, buckets=[primary, *replicas])
        for replica in replicas:
            topo.rules.append(service.add_rule(primary, replica))
        return topo

    @classmethod
    def chain(cls, service: AReplicaService, hops: list[Bucket],
              name: str = "chain") -> "ReplicationTopology":
        """Cascade: hops[0] → hops[1] → … → hops[-1].

        Each intermediate bucket's replicated writes emit their own
        notifications, so objects propagate transitively down the chain.
        """
        if len(hops) < 2:
            raise ValueError("a chain needs at least two buckets")
        cls._check_distinct(hops)
        topo = cls(service, name, buckets=list(hops))
        for src, dst in zip(hops, hops[1:]):
            topo.rules.append(service.add_rule(src, dst))
        return topo

    @classmethod
    def mesh(cls, service: AReplicaService, sites: list[Bucket],
             name: str = "mesh") -> "ReplicationTopology":
        """Every-site-writable: a rule for every ordered pair.

        The engine's done-marker/content short-circuits keep the mesh
        quiescent instead of echoing writes around forever.
        """
        if len(sites) < 2:
            raise ValueError("a mesh needs at least two buckets")
        cls._check_distinct(sites)
        topo = cls(service, name, buckets=list(sites))
        for src, dst in itertools.permutations(sites, 2):
            topo.rules.append(service.add_rule(src, dst))
        return topo

    @staticmethod
    def _check_distinct(buckets: list[Bucket]) -> None:
        seen = set()
        for bucket in buckets:
            ident = (bucket.region.key, bucket.name)
            if ident in seen:
                raise ValueError(f"bucket {ident} appears twice in topology")
            seen.add(ident)

    # -- fleet queries -------------------------------------------------------------

    @property
    def primary(self) -> Bucket:
        return self.buckets[0]

    def converged(self) -> bool:
        """True when every rule's destination mirrors its source."""
        if self.service.pending_count() > 0:
            return False
        for rule in self.rules:
            src, dst = rule.src_bucket, rule.dst_bucket
            for key in src.keys():
                if key not in dst or dst.head(key).etag != src.head(key).etag:
                    return False
            for key in dst.keys():
                if key not in src:
                    return False
        return True

    def divergence(self) -> dict[str, list[str]]:
        """Per-rule keys that have not converged yet (for debugging)."""
        out: dict[str, list[str]] = {}
        for rule in self.rules:
            src, dst = rule.src_bucket, rule.dst_bucket
            bad = [k for k in src.keys()
                   if k not in dst or dst.head(k).etag != src.head(k).etag]
            bad += [k for k in dst.keys() if k not in src]
            if bad:
                out[rule.rule_id] = sorted(set(bad))
        return out

    def delay_profile(self) -> dict[str, dict[str, float]]:
        """Per-rule delay summary (count / mean / max seconds)."""
        out = {}
        for rule in self.rules:
            delays = self.service.delays(rule.rule_id)
            label = (f"{rule.src_bucket.region.key}->"
                     f"{rule.dst_bucket.region.key}")
            if delays:
                out[label] = {"count": float(len(delays)),
                              "mean": sum(delays) / len(delays),
                              "max": max(delays)}
            else:
                out[label] = {"count": 0.0, "mean": float("nan"),
                              "max": float("nan")}
        return out
