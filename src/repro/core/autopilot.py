"""SLO autopilot — closed-loop online retuning of engine knobs.

Every resilience mechanism this repo accumulated — breakers, hedging,
parked backlogs, deep scrub, fair-share dispatch, per-tenant budgets —
is governed by *static* config.  The system cannot trade cost for
latency as load shifts: a surge queues work behind a fixed dispatch
gate, a brownout inflates the tail while hedging keeps cloning into a
saturated platform, and the ROADMAP's "self-driving operations" item
stays open.  This module closes the loop.

The :class:`Autopilot` is a feedback controller driven entirely by the
sim clock.  On a configurable cadence it *observes* — a
:class:`~repro.simcloud.monitoring.CloudMonitor` sampling FaaS queue
depth and spend, the per-tenant budget ledgers, and a windowed p99 of
replication delays per tenant — then *decides* per-signal errors:

* **SLO error** per tenant: ``(windowed_p99 - slo_target_s) /
  slo_target_s``, through the same fail-closed
  :meth:`~repro.simcloud.monitoring.TimeSeries.window_percentile`
  accessor the hedge deadline uses (a cold window yields ``None`` —
  never a NaN leaking into a comparison);
* **budget burn error** per tenant: window spend ahead of the budget's
  pro-rata pace (TCDRM's burn-rate economics);
* **saturation**: FaaS queue depth beyond a threshold — the regime
  where request-cloning hurts (processor-sharing: clones of work you
  cannot serve only add load), so hedging must be throttled *back*;

and finally *actuates* a bounded knob registry through AIMD-style
steps: additive moves in the stress direction, multiplicative decay
back to the configured baseline once the signal is healthy.  Guarded
rollouts are structural, not advisory:

* every knob declares hard ``[lo, hi]`` guardrails — proposals are
  clamped (and the clamp counted) before they ever touch the system;
* a hysteresis dead-band holds all knobs while a signal sits within
  ±deadband of target, so the controller cannot oscillate around a
  satisfied SLO;
* a post-actuation cooldown per knob bounds the actuation rate;
* while any administrative cordon is open (a planned operation owns
  the system) the autopilot holds entirely — operators win over
  controllers.

Every actuation is a traced zero-width ``autopilot`` span plus a
:class:`Actuation` changelog entry, which is what lets the
:class:`~repro.core.invariants.TraceChecker` prove the discipline
offline: bounds never left, cooldowns respected, no actuation inside a
cordon window.  A disabled autopilot (``enable_autopilot=False``, the
default) is byte-invisible: nothing is constructed, no timer armed, no
RNG stream opened — the determinism-golden suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.simcloud.monitoring import CloudMonitor, TimeSeries

__all__ = ["AUTOPILOT_STAT_KEYS", "Actuation", "KnobSpec",
           "KnobController", "Autopilot"]

#: The autopilot's operational counters — a closed set pinned by
#: ``tests/core/test_stats_contract.py`` (additions must extend the
#: contract there too).  ``settle_time_s`` is a list with one entry per
#: closed disturbance episode; the rest are plain counters.
AUTOPILOT_STAT_KEYS = ("actuations", "clamps", "cooldown_skips",
                       "cordon_holds", "settle_time_s")

#: FaaS queue depth (summed across watched regions) beyond which the
#: platform counts as saturated and hedging is throttled back.
_SATURATION_QUEUE = 64.0

#: Baseline anti-entropy scrub cadence the scrub knob decays back to.
_SCRUB_BASELINE_S = 1800.0


@dataclass(frozen=True)
class Actuation:
    """One knob change the controller applied (the changelog entry)."""

    time: float
    knob: str
    old: float
    new: float
    #: The error signal that drove the move (positive = stress).
    error: float
    #: True when the raw AIMD proposal had to be clamped to [lo, hi].
    clamped: bool
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"t={self.time:.1f} {self.knob}: {self.old:g} -> "
                f"{self.new:g} ({self.reason})")


@dataclass(frozen=True)
class KnobSpec:
    """One actuatable knob: bounds, AIMD steps, and accessors.

    ``stress_direction`` is +1 for knobs that *grow* under stress
    (dispatch concurrency, batching epsilon) and -1 for knobs that
    *shrink* (clone budget, retry deadline).  Under stress the value
    moves additively by ``step`` in that direction; once the signal is
    healthy it decays multiplicatively back toward ``baseline`` (the
    configured steady-state value), snapping exactly onto it when
    close — so a removed disturbance always converges the knob to a
    fixed point instead of orbiting it.
    """

    name: str
    lo: float
    hi: float
    baseline: float
    step: float
    read: Callable[[], float]
    write: Callable[[float], None]
    stress_direction: int = 1
    #: Multiplicative return-to-baseline factor per healthy tick.
    decay: float = 0.5
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.lo <= self.baseline <= self.hi:
            raise ValueError(
                f"{self.name}: baseline {self.baseline} outside "
                f"[{self.lo}, {self.hi}]")
        if self.step <= 0:
            raise ValueError(f"{self.name}: step must be positive")
        if self.stress_direction not in (1, -1):
            raise ValueError(f"{self.name}: stress_direction must be ±1")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"{self.name}: decay must be in (0, 1]")


class _KnobState:
    """Mutable controller-side state for one registered knob."""

    __slots__ = ("spec", "value", "last_actuated_at")

    def __init__(self, spec: KnobSpec):
        self.spec = spec
        self.value = float(spec.read())
        self.last_actuated_at = float("-inf")


class KnobController:
    """The AIMD core: hysteresis, guardrails, cooldowns, changelog.

    Deliberately service-free — it sees knobs only through their
    read/write closures and time only through the ``now`` its caller
    passes — so the Hypothesis stability suite can drive it with
    synthetic error sequences and prove the control-law properties
    (bounds, no-oscillation-in-band, convergence) without a simulator.
    """

    def __init__(self, deadband: float = 0.15, cooldown_s: float = 120.0,
                 tracer=None, stats: Optional[dict] = None):
        if not 0.0 < deadband < 1.0:
            raise ValueError("deadband must be in (0, 1)")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.deadband = deadband
        self.cooldown_s = cooldown_s
        self.tracer = tracer
        self.stats = stats if stats is not None else {
            k: ([] if k == "settle_time_s" else 0)
            for k in AUTOPILOT_STAT_KEYS}
        self._knobs: dict[str, _KnobState] = {}
        self.changelog: list[Actuation] = []

    # -- registry ----------------------------------------------------------

    def register(self, spec: KnobSpec) -> None:
        if spec.name in self._knobs:
            raise ValueError(f"duplicate knob {spec.name!r}")
        self._knobs[spec.name] = _KnobState(spec)

    def knows(self, name: str) -> bool:
        return name in self._knobs

    def value(self, name: str) -> float:
        return self._knobs[name].value

    def specs(self) -> list[KnobSpec]:
        return [s.spec for s in self._knobs.values()]

    # -- the control law ---------------------------------------------------

    def drive(self, name: str, error: Optional[float], now: float,
              reason: str = "") -> Optional[Actuation]:
        """Apply one controller step to ``name`` for ``error``.

        ``error`` is the normalized signal (positive = stress, negative
        = healthy, ``None`` = cold/no data).  Returns the
        :class:`Actuation` applied, or None when the knob held — by
        hysteresis (|error| within the dead-band), cooldown, an unknown
        knob, a cold signal, or a proposal that lands on the current
        value (already at a guardrail or at baseline).
        """
        state = self._knobs.get(name)
        if state is None or error is None:
            return None
        if abs(error) <= self.deadband:
            return None            # hysteresis hold: no move in-band
        spec = state.spec
        old = state.value
        if error > 0:
            proposal = old + spec.stress_direction * spec.step
        else:
            proposal = old + (spec.baseline - old) * spec.decay
            if abs(proposal - spec.baseline) <= 1e-3 * (spec.hi - spec.lo):
                proposal = spec.baseline
        new = min(spec.hi, max(spec.lo, proposal))
        clamped = new != proposal
        if spec.integer:
            new = float(int(round(new)))
        if new == old:
            if clamped:
                # Saturated at a guardrail under sustained stress: the
                # clamp is the observable fact that the controller
                # wanted more authority than the bounds grant.
                self.stats["clamps"] += 1
            return None
        if now - state.last_actuated_at < self.cooldown_s:
            self.stats["cooldown_skips"] += 1
            return None
        spec.write(int(new) if spec.integer else new)
        state.value = new
        state.last_actuated_at = now
        if clamped:
            self.stats["clamps"] += 1
        self.stats["actuations"] += 1
        act = Actuation(time=now, knob=name, old=old, new=new,
                        error=error, clamped=clamped, reason=reason)
        self.changelog.append(act)
        if self.tracer is not None:
            self.tracer.span("actuate", "autopilot", None, now, now,
                             knob=name, old=old, new=new, lo=spec.lo,
                             hi=spec.hi, cooldown_s=self.cooldown_s,
                             error=round(error, 6), clamped=clamped,
                             reason=reason)
        return act


def _nmax(*values: Optional[float]) -> Optional[float]:
    """max() over the non-None values; None when every input is cold."""
    present = [v for v in values if v is not None]
    return max(present) if present else None


class Autopilot:
    """The service-facing controller: observe, decide, actuate.

    Construction is side-effect free (no timers, probes, or RNG
    streams — the byte-invisibility guarantee); :meth:`start` builds
    the monitor and knob registry and arms the tick loop for a bounded
    duration on the sim clock, mirroring :class:`CloudMonitor`.
    """

    def __init__(self, service):
        self.service = service
        self.cloud = service.cloud
        cfg = service.config
        self.interval_s = cfg.autopilot_interval_s
        self.window_s = cfg.autopilot_window_s
        self.settle_s = cfg.autopilot_settle_s
        self.stats: dict = {k: ([] if k == "settle_time_s" else 0)
                            for k in AUTOPILOT_STAT_KEYS}
        self.controller = KnobController(
            deadband=cfg.autopilot_deadband,
            cooldown_s=cfg.autopilot_cooldown_s,
            tracer=service.tracer, stats=self.stats)
        #: Anti-entropy cadence the scrub knob actuates; consumed by
        #: whoever schedules AntiEntropyScanner passes (docs/operations).
        self.scrub_interval_s = _SCRUB_BASELINE_S
        self.monitor: Optional[CloudMonitor] = None
        #: Disturbance episodes as ``[start, end-or-None]`` pairs; an
        #: episode opens when the worst per-tenant SLO error leaves the
        #: dead-band and closes when the windowed p99 is back under
        #: target.  ``stats["settle_time_s"]`` gains one entry per close.
        self.episodes: list[list] = []
        self._records_seen = 0
        self._delay_series: dict[str, TimeSeries] = {}
        self._running = False
        self._registered = False
        self._timer = None

    # -- lifecycle ---------------------------------------------------------

    def start(self, duration_s: float) -> None:
        """Tick every ``interval_s`` for the next ``duration_s`` of
        simulated time (bounded, so a drained simulation terminates)."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self._running:
            raise RuntimeError("autopilot already started")
        self._running = True
        if self.monitor is None:
            self.monitor = CloudMonitor(self.cloud.sim,
                                        interval_s=self.interval_s,
                                        retention_s=2 * self.window_s)
            self._wire_probes()
        if not self._registered:
            self._register_knobs()
            self._registered = True
        deadline = self.cloud.sim.now + duration_s

        def tick() -> None:
            if not self._running:
                return
            self._tick()
            if self.cloud.sim.now >= deadline:
                self._running = False
                return
            self._timer = self.cloud.sim.call_later(self.interval_s, tick)

        self._tick()
        self._timer = self.cloud.sim.call_later(self.interval_s, tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- wiring ------------------------------------------------------------

    def _regions(self) -> list[str]:
        regions = set()
        for rule in self.service.rules.values():
            regions.add(rule.src_bucket.region.key)
            regions.add(rule.dst_bucket.region.key)
        for state in self.service.tenants.values():
            regions.add(state.src_bucket.region.key)
            regions.add(state.dst_bucket.region.key)
        return sorted(regions)

    def _wire_probes(self) -> None:
        for region in self._regions():
            self.monitor.watch_faas(self.cloud.faas(region), prefix=region)
        self.monitor.watch_ledger(self.cloud.ledger)
        self.monitor.watch_service(self.service)

    def _register_knobs(self) -> None:
        cfg = self.service.config
        C = self.controller
        sched = self.service.scheduler
        if sched is not None:
            base = sched.max_concurrent
            C.register(KnobSpec(
                "dispatch_concurrency", lo=base, hi=4.0 * base,
                baseline=base, step=max(1.0, base / 2.0), integer=True,
                read=lambda: float(sched.max_concurrent),
                write=self._set_dispatch_concurrency))
        catchup = cfg.outage_catchup_concurrency
        C.register(KnobSpec(
            "outage_catchup_concurrency", lo=catchup, hi=4.0 * catchup,
            baseline=catchup, step=max(1.0, catchup / 2.0), integer=True,
            read=lambda: float(catchup),
            write=self._config_writer("outage_catchup_concurrency",
                                      integer=True)))
        eps = cfg.batching_epsilon
        C.register(KnobSpec(
            "batching_epsilon", lo=eps, hi=max(30.0, 10.0 * eps),
            baseline=eps, step=max(1.0, eps),
            read=lambda: eps,
            write=self._config_writer("batching_epsilon")))
        deadline = cfg.retry_policy.deadline_s
        if deadline is not None:
            C.register(KnobSpec(
                "retry_deadline_s", lo=deadline / 4.0, hi=deadline,
                baseline=deadline, step=deadline / 8.0,
                stress_direction=-1,
                read=lambda: deadline,
                write=self._set_retry_deadline))
        q = cfg.hedge_deadline_quantile
        C.register(KnobSpec(
            "hedge_deadline_quantile", lo=q, hi=0.995, baseline=q,
            step=0.01,
            read=lambda: q,
            write=self._config_writer("hedge_deadline_quantile")))
        clones = cfg.max_clones_per_part
        C.register(KnobSpec(
            "max_clones_per_part", lo=0.0, hi=float(clones),
            baseline=float(clones), step=1.0, stress_direction=-1,
            integer=True,
            read=lambda: float(clones),
            write=self._config_writer("max_clones_per_part", integer=True)))
        C.register(KnobSpec(
            "scrub_interval_s", lo=_SCRUB_BASELINE_S / 2.0,
            hi=4.0 * _SCRUB_BASELINE_S, baseline=_SCRUB_BASELINE_S,
            step=_SCRUB_BASELINE_S / 2.0,
            read=lambda: self.scrub_interval_s,
            write=lambda v: setattr(self, "scrub_interval_s", v)))

    def _weight_knob(self, tenant_id: str) -> str:
        """Lazily register the fair-share boost knob for one tenant."""
        name = f"fairshare_boost:{tenant_id}"
        if not self.controller.knows(name):
            self.controller.register(KnobSpec(
                name, lo=1.0, hi=4.0, baseline=1.0, step=0.5,
                read=lambda: 1.0,
                write=lambda mult, tid=tenant_id: self._set_weight(tid,
                                                                   mult)))
        return name

    # -- actuators ---------------------------------------------------------

    def _set_dispatch_concurrency(self, value: int) -> None:
        sched = self.service.scheduler
        sched.max_concurrent = int(value)
        # A raised gate admits queued work immediately; a lowered one
        # simply stops granting slots until in-flight work settles.
        sched._pump()

    def _config_writer(self, field_name: str, integer: bool = False):
        def write(value) -> None:
            value = int(value) if integer else value
            for rule in self.service.rules.values():
                rule.engine.config = replace(rule.engine.config,
                                             **{field_name: value})
                if rule.batcher is not None:
                    rule.batcher.config = replace(rule.batcher.config,
                                                  **{field_name: value})
        return write

    def _set_retry_deadline(self, value: float) -> None:
        for rule in self.service.rules.values():
            rule.engine.retry_policy = replace(rule.engine.retry_policy,
                                               deadline_s=value)

    def _set_weight(self, tenant_id: str, mult: float) -> None:
        state = self.service.tenants[tenant_id]
        self.service.scheduler.add_tenant(
            tenant_id, weight=state.config.weight * mult)

    # -- signals -----------------------------------------------------------

    def _ingest_records(self, now: float) -> None:
        """Fold new replication records into per-tenant delay series.

        Samples are stamped with observation time (this tick), keeping
        each series monotone even when duplicate-delivery records close
        with an older visible time.
        """
        records = self.service.records
        rules = self.service.rules
        for r in records[self._records_seen:]:
            rule = rules.get(r.rule_id)
            tenant = rule.tenant if rule is not None else None
            if tenant is None:
                continue
            series = self._delay_series.get(tenant)
            if series is None:
                series = self._delay_series[tenant] = TimeSeries(
                    f"autopilot-delay:{tenant}")
            series.record(now, r.delay)
        self._records_seen = len(records)

    def tenant_p99(self, tenant_id: str, now: Optional[float] = None):
        """Windowed p99 replication delay for ``tenant_id`` (None=cold)."""
        series = self._delay_series.get(tenant_id)
        if series is None:
            return None
        at = self.cloud.sim.now if now is None else now
        return series.window_percentile(0.99, self.window_s, at)

    def _slo_error(self, tenant_id: str, now: float) -> Optional[float]:
        state = self.service.tenants[tenant_id]
        target = state.config.slo_target_s
        if target <= 0:
            return None
        p99 = self.tenant_p99(tenant_id, now)
        if p99 is None:
            return None
        return (p99 - target) / target

    def _budget_error(self, tenant_id: str, now: float) -> Optional[float]:
        state = self.service.tenants[tenant_id]
        budget = state.config.budget_usd
        if not budget:
            return None
        ledger = state.ledger
        ledger.sync(now)
        elapsed = (now - ledger.window_index * ledger.window_s) \
            / ledger.window_s
        # Spend ahead of the window's pro-rata pace is stress; the 0.25
        # floor keeps the first sliver of a fresh window from reading
        # one admitted task as a runaway burn.
        return ledger.window_spent / budget - max(elapsed, 0.25)

    def _saturation_error(self) -> Optional[float]:
        queued = 0.0
        seen = False
        for name, series in self.monitor.series.items():
            if name.endswith(".queued") and len(series):
                queued += series.latest
                seen = True
        if not seen:
            return None
        return queued / _SATURATION_QUEUE - 1.0

    # -- the tick ----------------------------------------------------------

    def _tick(self) -> None:
        now = self.cloud.sim.now
        self.monitor.sample()
        self._ingest_records(now)
        tracer = self.service.tracer
        health = self.service.health
        if health is not None and health.cordoned_targets():
            # A planned operation owns the system: hold every knob.
            self.stats["cordon_holds"] += 1
            if tracer is not None:
                tracer.event("autopilot-hold", "autopilot", None,
                             reason="cordon",
                             cordons=len(health.cordoned_targets()))
            return
        slo_errors = {tid: self._slo_error(tid, now)
                      for tid in sorted(self.service.tenants)}
        slo_e = _nmax(*slo_errors.values()) if slo_errors else None
        cost_e = _nmax(*(self._budget_error(tid, now)
                         for tid in sorted(self.service.tenants)))
        sat_e = self._saturation_error()
        self._track_episode(slo_e, now, tracer)
        C = self.controller
        C.drive("dispatch_concurrency", slo_e, now, reason="slo")
        C.drive("outage_catchup_concurrency", slo_e, now, reason="slo")
        C.drive("batching_epsilon", slo_e, now, reason="slo")
        C.drive("retry_deadline_s", cost_e, now, reason="budget")
        throttle = _nmax(cost_e, sat_e)
        C.drive("hedge_deadline_quantile", throttle, now,
                reason="saturation")
        C.drive("max_clones_per_part", throttle, now, reason="saturation")
        C.drive("scrub_interval_s", _nmax(slo_e, cost_e), now,
                reason="load-shed")
        if self.service.scheduler is not None:
            for tid, err in slo_errors.items():
                if err is None:
                    continue
                C.drive(self._weight_knob(tid), err, now,
                        reason=f"slo:{tid}")

    def _track_episode(self, slo_e: Optional[float], now: float,
                       tracer) -> None:
        if slo_e is None:
            return
        open_ep = self.episodes and self.episodes[-1][1] is None
        if not open_ep and slo_e > self.controller.deadband:
            self.episodes.append([now, None])
            if tracer is not None:
                tracer.event("autopilot-disturbance", "autopilot", None,
                             error=round(slo_e, 6))
        elif open_ep and slo_e <= 0.0:
            start = self.episodes[-1][0]
            self.episodes[-1][1] = now
            settle = now - start
            self.stats["settle_time_s"].append(round(settle, 3))
            if tracer is not None:
                tracer.event("autopilot-settle", "autopilot", None,
                             settle_s=round(settle, 3),
                             within_bound=settle <= self.settle_s)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly controller state for drill reports."""
        return {
            "stats": {k: (list(v) if isinstance(v, list) else v)
                      for k, v in self.stats.items()},
            "episodes": [[s, e] for s, e in self.episodes],
            "knobs": {
                spec.name: {
                    "value": self.controller.value(spec.name),
                    "baseline": spec.baseline,
                    "lo": spec.lo, "hi": spec.hi,
                } for spec in self.controller.specs()},
            "actuations": [str(a) for a in self.controller.changelog],
            "scrub_interval_s": self.scrub_interval_s,
        }
