"""Weighted fair-share dispatch scheduling across tenants.

One tenant's burst must not starve another's trickle: the CloudSimSC
line of serverless simulators models per-tenant FaaS concurrency
shares as a first-class resource, and this module brings that to the
replication control plane.  A :class:`FairShareScheduler` gates how
many orchestrator invocations may be in flight at once and divides
that concurrency between tenants by **deficit round robin** (DRR) over
per-tenant FIFO queues:

* every tenant with queued work sits in one round-robin ring;
* the front tenant's *deficit counter* is credited ``quantum × weight``
  when it cannot cover a task, and the lane is served (unit cost per
  task) until the deficit is spent or slots run out — a lane
  interrupted by slot exhaustion resumes at the front, so one-slot
  steady states still honor the weights;
* a tenant whose queue empties forfeits its remaining deficit (the
  classic DRR rule that stops an idle tenant from banking credit).

DRR's standard guarantees carry over: no tenant with pending work
waits more than a bounded number of rounds (no starvation), and
long-run dispatch shares converge to the configured weights — the
properties ``tests/core/test_fairshare.py`` checks under random mixes.

Everything is deterministic: the ring is visited in tenant arrival
order, ties resolve FIFO, and no randomness or wall-clock is consulted.
A dispatched task's concurrency slot is held until its invocation
(including platform auto-retries) settles; a watcher process on the
simulator releases the slot and re-pumps the queues.  Engines without
a scheduler dispatch directly — the single-tenant fast path stays one
``is None`` check (byte-identical to a build without this module).

Backlog drains and half-open probes bypass the scheduler by design:
they are recovery traffic already capped by
``outage_catchup_concurrency``, and a probe must reach a half-open
region even when the fair-share ring is saturated.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

__all__ = ["FairShareScheduler"]


class _TenantQueue:
    """One tenant's FIFO lane plus its DRR accounting."""

    __slots__ = ("tenant_id", "weight", "deficit", "queue", "stats",
                 "dispatched")

    def __init__(self, tenant_id: str, weight: float,
                 stats: Optional[dict] = None):
        self.tenant_id = tenant_id
        self.weight = weight
        self.deficit = 0.0
        #: Queued entries: ``[dispatch, dispatched_flag]``.
        self.queue: deque[list] = deque()
        #: Optional per-tenant stats dict (the service's tenant
        #: counters); ``fairshare_waits`` is bumped here.
        self.stats = stats
        #: Lifetime dispatch count — the share the fairness tests
        #: measure convergence of.
        self.dispatched = 0


class FairShareScheduler:
    """DRR dispatch gate over per-tenant FIFO queues.

    ``submit(tenant_id, dispatch)`` enqueues a zero-argument callable
    that performs the actual FaaS dispatch and returns the invocation
    handle (a yieldable future) — or ``None`` for fire-and-forget work
    whose slot releases immediately.  Dispatch happens synchronously
    inside ``submit`` whenever a slot and deficit allow, so the
    uncontended path adds no simulator events.
    """

    def __init__(self, sim, max_concurrent: int = 64, quantum: float = 1.0):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.sim = sim
        self.max_concurrent = max_concurrent
        self.quantum = quantum
        self._tenants: dict[str, _TenantQueue] = {}
        #: Round-robin ring of tenant ids with queued work, in the
        #: deterministic order the work arrived.
        self._ring: deque[str] = deque()
        self.in_flight = 0
        #: Total dispatches routed through the scheduler (all tenants).
        self.total_dispatched = 0
        #: Submissions that could not dispatch synchronously.
        self.total_waits = 0

    # -- tenant registry -----------------------------------------------------

    def add_tenant(self, tenant_id: str, weight: float = 1.0,
                   stats: Optional[dict] = None) -> None:
        """Register ``tenant_id`` with a fair-share ``weight``.

        Idempotent: re-registration updates the weight/stats binding of
        the existing lane (queued work survives).
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        lane = self._tenants.get(tenant_id)
        if lane is None:
            self._tenants[tenant_id] = _TenantQueue(tenant_id, weight, stats)
        else:
            lane.weight = weight
            if stats is not None:
                lane.stats = stats

    def pending(self, tenant_id: Optional[str] = None) -> int:
        """Queued (not yet dispatched) tasks, total or per tenant."""
        if tenant_id is not None:
            lane = self._tenants.get(tenant_id)
            return len(lane.queue) if lane is not None else 0
        return sum(len(lane.queue) for lane in self._tenants.values())

    def dispatched(self, tenant_id: str) -> int:
        lane = self._tenants.get(tenant_id)
        return lane.dispatched if lane is not None else 0

    # -- submission ----------------------------------------------------------

    def submit(self, tenant_id: str, dispatch: Callable[[], object]) -> None:
        """Enqueue one dispatch for ``tenant_id`` and pump the ring."""
        lane = self._tenants.get(tenant_id)
        if lane is None:
            self.add_tenant(tenant_id)
            lane = self._tenants[tenant_id]
        entry = [dispatch, False]
        if not lane.queue:
            self._ring.append(tenant_id)
        lane.queue.append(entry)
        self._pump()
        if not entry[1]:
            self.total_waits += 1
            if lane.stats is not None:
                lane.stats["fairshare_waits"] = (
                    lane.stats.get("fairshare_waits", 0) + 1)

    # -- DRR core ------------------------------------------------------------

    def _pump(self) -> None:
        """Dispatch queued work while slots remain, visiting lanes DRR.

        The front lane is *served to its deficit*, not rotated after a
        single dispatch: in the steady state slots free one at a time
        (one settle → one pump), and rotating per dispatch would
        degenerate weighted DRR into plain round robin.  A lane whose
        service is cut short by slot exhaustion therefore stays at the
        front with its remaining deficit and resumes on the next free
        slot; it rotates to the back only once its deficit is spent.
        """
        while self.in_flight < self.max_concurrent and self._ring:
            tenant_id = self._ring[0]
            lane = self._tenants[tenant_id]
            if not lane.queue:
                # Lane drained since it was ringed; forfeit its credit.
                self._ring.popleft()
                lane.deficit = 0.0
                continue
            if lane.deficit < 1.0:
                # One round's credit — granted only when the carried
                # deficit cannot cover a task, so an interrupted service
                # turn is resumed, never re-credited.
                lane.deficit += self.quantum * lane.weight
            while (lane.queue and lane.deficit >= 1.0
                   and self.in_flight < self.max_concurrent):
                entry = lane.queue.popleft()
                lane.deficit -= 1.0
                entry[1] = True
                self._dispatch(lane, entry[0])
            if not lane.queue:
                self._ring.popleft()
                lane.deficit = 0.0
            elif lane.deficit < 1.0:
                # Deficit spent this round: back of the ring, keeping
                # the fractional remainder (DRR's backlogged-lane rule).
                self._ring.popleft()
                self._ring.append(tenant_id)
            else:
                # Saturated mid-service: hold the front spot and the
                # unspent deficit until a watcher frees a slot.
                break

    def _dispatch(self, lane: _TenantQueue, dispatch: Callable[[], object]) -> None:
        self.in_flight += 1
        lane.dispatched += 1
        self.total_dispatched += 1
        invocation = dispatch()
        if invocation is None:
            self.in_flight -= 1
            return
        self.sim.spawn(self._watch(invocation),
                       name=f"fairshare:{lane.tenant_id}")

    def _watch(self, invocation):
        """Process: hold the slot until the invocation settles."""
        try:
            yield invocation
        except Exception:
            # A dead-lettered invocation fails its future; the DLQ
            # redrive owns the task now — the slot is all we release.
            pass
        self.in_flight -= 1
        self._pump()
