"""Planned-operations lifecycle layer: evacuation, restart, switchover.

The chaos machinery (``simcloud/chaos.py``) models *unplanned* failure;
this module models the disruption a replicator actually spends most of
its wall-clock in — **planned** operations an operator schedules on
purpose:

* **Region evacuation** — administratively cordon a region's
  substrates, let in-flight functions finish within a bounded drain
  deadline, migrate new work to the surviving platform through the
  degraded-routing failover path, park whatever has no route at all,
  and re-admit everything when the cordon lifts.
* **Rolling engine restart/upgrade** — checkpoint the engine's
  control-plane state to the serverless KV store, tear the engine
  object down mid-flight, rebuild it against the same durable tables,
  and restore: the serverless analogue of replacing an operator pod.
* **Planned orchestration switchover** — proactively move
  orchestration from the source FaaS platform to the destination one
  under load, reusing the outage-failover path; the fencing tokens in
  the (source-pinned) lock table order the handoff, and the trace
  oracle's switchover-discipline invariant proves exactly one
  orchestrator location finalizes each task epoch.

Cordons are *administrative*: the substrate stays healthy (KV writes
during an evacuation still land; that is what lets the backlog mirror
and part pools keep operating), only **admission** of new work stops.
That is the intent-vs-failure distinction the ``cordoned`` breaker
state in ``core/health.py`` encodes, and why the planner reports
cordoned candidate drops separately from breaker drops.

Every procedure is a plain simulation process scheduled at a seeded
instant, so lifecycle drills compose deterministically with chaos
storms, hedging, and corruption injection on one seed.  A constructed
but never-scheduled :class:`OperationsRunner` performs **zero** RNG
draws, KV operations, or event emissions — lifecycle-off runs stay
byte-identical to builds without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simcloud.chaos import validate_outage_windows
from repro.simcloud.kvstore import Throttled
from repro.simcloud.sim import SleepRequest

__all__ = ["OperationsRunner", "LifecycleReport", "SCENARIOS"]

#: The planned-disruption procedures an operator can schedule.
SCENARIOS = ("evacuate", "rolling", "switchover")

#: Substrates an evacuation cordons at the target region, in order.
#: FaaS first (new orchestrations fail over while the consistency
#: substrates still answer), then the location-pinned substrates
#: (remaining admissions park).  Uncordon runs in reverse.
_EVACUATION_SUBSTRATES = ("faas", "kv", "store")


@dataclass
class LifecycleReport:
    """Outcome of one executed lifecycle procedure."""

    scenario: str
    rule_id: str
    region: str
    started_at: float
    finished_at: float = 0.0
    #: In-flight functions at the cordoned region when the drain began.
    inflight_before: int = 0
    #: Of those, how many finished inside the drain deadline.
    drained: int = 0
    #: New tasks routed to the surviving platform while cordoned.
    migrated: int = 0
    #: True when the graceful drain emptied the region in time (always
    #: True for scenarios without a drain phase).
    deadline_met: bool = True
    #: Rolling restart: backlog entries restored / mirrors re-written.
    restored: int = 0
    remirrored: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario, "rule": self.rule_id,
            "region": self.region, "started_at": self.started_at,
            "finished_at": self.finished_at,
            "inflight_before": self.inflight_before,
            "drained": self.drained, "migrated": self.migrated,
            "deadline_met": self.deadline_met,
            "restored": self.restored, "remirrored": self.remirrored,
            **self.extra,
        }


class OperationsRunner:
    """Schedules and executes planned-disruption procedures for one rule.

    One runner per :class:`~repro.core.service.AReplicaService` rule;
    procedures run as ordinary simulation processes so they interleave
    with live traffic, chaos storms, and hedging exactly as a real
    operator action would.  Completed procedures append a
    :class:`LifecycleReport` to :attr:`reports`.
    """

    #: Base interval between drain-progress polls; each poll adds up to
    #: one second of seeded jitter so two runners never phase-lock.
    poll_interval_s = 5.0
    #: How long a cordon holds after the drain completes before being
    #: lifted — the maintenance window body (upgrade, rebalance, ...).
    #: Long enough that live traffic actually arrives *during* the
    #: window, so the failover/park paths are exercised, not skipped.
    hold_s = 120.0
    #: Bounded-backoff attempts for control-plane KV writes that race a
    #: KV chaos window (the checkpoint must land *despite* the storm).
    kv_attempts = 8

    def __init__(self, service, rule_id: str,
                 drain_deadline_s: Optional[float] = None):
        rule = service.rules[rule_id]  # KeyError for unknown rules
        if service.health is None:
            raise ValueError(
                "planned operations need health tracking enabled "
                "(ReplicaConfig.health_enabled) — cordons are health states")
        self.service = service
        self.cloud = service.cloud
        self.rule_id = rule_id
        self.drain_deadline_s = (drain_deadline_s
                                 if drain_deadline_s is not None
                                 else service.config.drain_deadline_s)
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")
        self.src_region = rule.src_bucket.region.key
        self.dst_region = rule.dst_bucket.region.key
        self.reports: list[LifecycleReport] = []
        #: Created lazily on first schedule(): an idle runner must not
        #: perturb the RNG stream registry (byte-determinism guard).
        self._rng = None

    # -- scheduling ------------------------------------------------------------

    def schedule(self, scenario: str, at_s: float, **kwargs) -> None:
        """Arrange for ``scenario`` to start at simulated time ``at_s``.

        The (region, start, duration) triple is validated through the
        same rules as the chaos outage schedules — lifecycle
        maintenance windows and chaos storms are the same shape and
        deliberately composable on one seed.
        """
        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")
        region = kwargs.get("region", self.src_region)
        validate_outage_windows(
            "lifecycle", ((region, at_s, self.drain_deadline_s),))
        if self._rng is None:
            self._rng = self.cloud.rngs.stream(f"lifecycle:{self.rule_id}")
        proc = getattr(self, f"_{scenario}")

        def runner():
            delay = at_s - self.cloud.sim.now
            if delay > 0:
                yield SleepRequest(delay)
            yield from proc(**kwargs)

        self.cloud.sim.spawn(runner(), name=f"lifecycle-{scenario}")

    # -- shared plumbing -------------------------------------------------------

    @property
    def _engine(self):
        # Resolved per access: a rolling restart swaps rule.engine.
        return self.service.rules[self.rule_id].engine

    def _event(self, name: str, **attrs) -> None:
        tracer = self.service.tracer
        if tracer is not None:
            tracer.event(name, "lifecycle", None, rule=self.rule_id, **attrs)

    def _cordon(self, substrate: str, region: str) -> None:
        if self.service.health.cordon((substrate, region)):
            self._engine.stats["cordons"] += 1
            self._event("cordon", substrate=substrate, region=region)

    def _uncordon(self, substrate: str, region: str) -> None:
        if self.service.health.uncordon((substrate, region)):
            self._event("uncordon", substrate=substrate, region=region)

    def _kv_retry(self, gen_factory):
        """Process: run ``gen_factory()`` to completion, retrying
        ``Throttled`` with seeded bounded backoff.

        Control-plane writes made *by the operator* (checkpoint,
        restore) may land inside a KV chaos window; unlike the
        engine's best-effort mirror they must eventually succeed, so
        they get their own retry ladder on the lifecycle RNG stream.
        """
        for attempt in range(self.kv_attempts):
            try:
                result = yield from gen_factory()
                return result
            except Throttled:
                backoff = min(30.0, 2.0 ** attempt)
                yield SleepRequest(backoff * (0.5 + self._rng.random()))
        raise Throttled(
            f"lifecycle control-plane write failed {self.kv_attempts} times")

    def _drain(self, region: str):
        """Process: wait for in-flight functions at ``region`` to finish.

        Polls the platform's running-instance gauge until it reaches
        zero or the drain deadline passes.  Returns ``(inflight_before,
        drained, deadline_met)``; the undrained remainder is *not*
        killed — the platform still owns those executions, they simply
        finish after the window (their retries/DLQ path recovers any
        that the disruption broke).
        """
        faas = self.cloud.faas(region)
        inflight_before = faas.running
        deadline = self.cloud.sim.now + self.drain_deadline_s
        while faas.running > 0 and self.cloud.sim.now < deadline:
            remaining = deadline - self.cloud.sim.now
            step = min(remaining,
                       self.poll_interval_s + self._rng.random())
            yield SleepRequest(max(step, 1e-9))
        drained = max(0, inflight_before - faas.running)
        return inflight_before, drained, faas.running == 0

    # -- procedures ------------------------------------------------------------

    def _evacuate(self, region: Optional[str] = None):
        """Process: evacuate ``region`` (default: the rule's source).

        Phases: cordon FaaS (new work fails over to the surviving
        platform = migration), gracefully drain in-flight functions
        within the deadline, cordon the location-pinned substrates
        (remaining admissions park into the durable backlog), hold the
        maintenance window, then uncordon everything — the lifted
        cordon notifies the engine, which re-admits the parked backlog.
        """
        region = region or self.src_region
        engine = self._engine
        report = LifecycleReport("evacuate", self.rule_id, region,
                                 started_at=self.cloud.sim.now)
        failover_before = engine.stats["failover"]
        self._cordon("faas", region)
        inflight, drained, met = yield from self._drain(region)
        engine.stats["drained_parts"] += drained
        # First half of the window: only FaaS is cordoned, so arriving
        # work *migrates* (fails over to the surviving platform); then
        # the location-pinned substrates close too and the remainder
        # *parks*.  Both evacuation paths get exercised every run.
        yield SleepRequest(self.hold_s / 2)
        for substrate in _EVACUATION_SUBSTRATES[1:]:
            self._cordon(substrate, region)
        yield SleepRequest(self.hold_s / 2)
        for substrate in reversed(_EVACUATION_SUBSTRATES):
            self._uncordon(substrate, region)
        migrated = engine.stats["failover"] - failover_before
        engine.stats["migrated_tasks"] += migrated
        report.inflight_before = inflight
        report.drained = drained
        report.deadline_met = met
        report.migrated = migrated
        report.finished_at = self.cloud.sim.now
        self.reports.append(report)
        return report

    def _rolling(self):
        """Process: rolling engine restart/upgrade.

        Checkpoints control-plane state to KV, rebuilds the engine
        object from the same durable tables (the serverless pod
        replacement), and restores — exercising backlog re-mirror on
        cold entries, while platform retries and DLQ redrives of the
        old engine's in-flight functions land on the new deployment
        and walk the finalization-recovery and lease-reclaim paths.
        """
        engine = self._engine
        report = LifecycleReport("rolling", self.rule_id, self.src_region,
                                 started_at=self.cloud.sim.now)
        yield from self._kv_retry(engine.checkpoint_control_plane)
        new_engine = self.service.rebuild_engine(self.rule_id)
        self._event("rebuild",
                    backlog=new_engine.backlog_size())
        outcome = yield from self._kv_retry(new_engine.restore_control_plane)
        report.restored = outcome["restored"]
        report.remirrored = outcome["remirrored"]
        report.finished_at = self.cloud.sim.now
        self.reports.append(report)
        return report

    def _switchover(self):
        """Process: planned orchestration switchover to the destination.

        Cordons the source FaaS platform so every new orchestration
        takes the outage-failover path to the destination platform,
        gracefully drains the source's in-flight functions, holds, and
        uncordons.  The lock table stays pinned at the source region;
        destination-side orchestrators acquire leases through it with
        fencing-token takeover, and the trace oracle's
        switchover-discipline invariant proves no task epoch was
        finalized from two orchestrator locations.
        """
        if self.dst_region == self.src_region:
            raise ValueError("switchover needs distinct src/dst regions")
        engine = self._engine
        report = LifecycleReport("switchover", self.rule_id,
                                 self.src_region,
                                 started_at=self.cloud.sim.now)
        engine.stats["switchovers"] += 1
        failover_before = engine.stats["failover"]
        self._event("switchover", src=self.src_region, dst=self.dst_region)
        self._cordon("faas", self.src_region)
        inflight, drained, met = yield from self._drain(self.src_region)
        engine.stats["drained_parts"] += drained
        yield SleepRequest(self.hold_s)
        self._uncordon("faas", self.src_region)
        migrated = engine.stats["failover"] - failover_before
        engine.stats["migrated_tasks"] += migrated
        report.inflight_before = inflight
        report.drained = drained
        report.deadline_met = met
        report.migrated = migrated
        report.finished_at = self.cloud.sim.now
        self.reports.append(report)
        return report
