"""AReplica configuration.

One :class:`ReplicaConfig` instance parameterizes a replication rule:
the user-defined SLO and percentile, the data-part size used by
decentralized scheduling, the threshold below which the orchestrator
replicates inline (``T_func = 0``), and the cost-optimization switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.health import BreakerConfig
from repro.core.retry import RetryPolicy

__all__ = ["ReplicaConfig", "TenantConfig", "MB", "DEFAULT_PART_SIZE"]

MB = 1024 * 1024
#: §5.1: "a part size of 8 MB strikes an effective balance".
DEFAULT_PART_SIZE = 8 * MB


@dataclass(frozen=True)
class ReplicaConfig:
    """Tunable parameters of an AReplica deployment.

    Attributes
    ----------
    slo_seconds:
        User-defined replication SLO measured from object creation to
        visibility at the destination.  ``0`` (the paper's setting in
        §8.1) means "always pick the fastest plan" and disables
        SLO-bounded batching.
    percentile:
        The percentile of the predicted replication-time distribution
        that must fall within the SLO (Algorithm 3's ``p``).
    part_size:
        Data part granularity for distributed replication.
    local_threshold:
        Objects at or below this size are replicated inline by the
        orchestrator function itself (``T_func = 0`` in the model).
    distributed_threshold:
        Minimum object size for which multi-function distributed
        replication is considered at all (§5.1: replication of
        relatively large objects, e.g. > 64 MB, benefits).
    max_parallelism:
        Upper bound on replicator functions per task (Algorithm 3's
        ``n_max``); bounded by account concurrency limits (§6).
    enable_changelog:
        Propagate user-supplied changelogs instead of full objects.
    enable_batching:
        Aggregate frequent updates under the SLO (Algorithm 4).
    batching_epsilon:
        Safety margin ``ε`` subtracted from the batching deadline.
    mc_samples:
        Monte-Carlo sample count for the parallel-transfer tail.
    gumbel_threshold:
        Parallelism above which the Gumbel (EVT) approximation replaces
        Monte-Carlo resampling (§5.3 "for large n").
    retry_policy:
        Jittered exponential backoff applied by the engine to throttled
        control-plane (KV) operations before escalating to the
        platform's own retry-then-DLQ ladder.  The default deadline of
        150 s (half the 300 s replication-lock lease) bounds billed
        retry time during sustained KV outages.
    health_enabled:
        Track per-(substrate, region) health with circuit breakers and
        degrade routing around open circuits (parking tasks in a
        durable backlog when no route remains).  Disabling restores
        the pre-health behaviour: every fault is retried in place.
    breaker:
        Circuit-breaker tuning shared by every health target.
    outage_catchup_concurrency:
        How many parked tasks the engine re-dispatches per batch while
        draining the backlog after recovery — the cap that keeps the
        catch-up burst from re-browning-out a freshly recovered region.
    retransfer_budget:
        How many times a part whose payload fails checksum verification
        is re-fetched (or re-uploaded) in place before the part is
        quarantined — escalated straight to the dead-letter queue with
        a ``corrupted`` disposition instead of burning platform
        retries against the same poisoned transfer.
    verify_after_finalize:
        Re-check the destination's ETag against the task's expected
        content hash after the finalize write, *before* the done marker
        is advanced — the end-to-end guard that keeps a corrupted
        assembly from being vouched for forever.
    """

    slo_seconds: float = 0.0
    percentile: float = 0.99
    part_size: int = DEFAULT_PART_SIZE
    local_threshold: int = 32 * MB
    distributed_threshold: int = 64 * MB
    max_parallelism: int = 512
    enable_changelog: bool = True
    enable_batching: bool = True
    batching_epsilon: float = 1.0
    mc_samples: int = 2000
    gumbel_threshold: int = 64
    profile_samples: int = 10
    retry_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(deadline_s=150.0))
    health_enabled: bool = True
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    outage_catchup_concurrency: int = 8
    retransfer_budget: int = 2
    verify_after_finalize: bool = True
    #: Record a causal span/event trace for every replication task
    #: (repro.core.tracing).  Off by default: the disabled path costs
    #: one ``is not None`` check per emission site, preserving the
    #: benchmarked hot-path numbers.
    tracing_enabled: bool = False
    #: Fuse the request-handshake and data-transfer legs of the
    #: small-object (single-PUT) pipeline into one kernel event per
    #: direction.  Only takes effect when nothing can observe the
    #: intermediate instants — no chaos/corruption hooks armed, no
    #: tracer recording, neither endpoint in an outage window (the
    #: engine re-checks eligibility per task).  Off by default so
    #: drills and differential tests exercise the un-fused path.
    fuse_small_transfers: bool = False
    #: Speculative hedging (tail-latency cloning): when a distributed
    #: part overruns a deadline derived from recent completions, clone
    #: the same range onto a fresh FaaS instance and let first-writer-
    #: wins into the part pool settle the race.  Off by default: the
    #: disabled path adds no events, draws, or KV operations, so
    #: hedging-off runs stay byte-identical to pre-hedging behaviour.
    hedging_enabled: bool = False
    #: Quantile of the windowed part-completion durations the hedge
    #: deadline is derived from (the "P95-derived deadline").
    hedge_deadline_quantile: float = 0.95
    #: Parts smaller than this are never hedged: a clone's cold start
    #: and invocation latency dwarf any straggler saving on tiny parts.
    hedge_min_part_bytes: int = 1 * MB
    #: How many clones one part may spawn before the engine stops
    #: hedging it (0 disables cloning while keeping the monitor on).
    max_clones_per_part: int = 1
    #: Trailing window over part-completion samples feeding the
    #: deadline percentile, and the minimum sample count before any
    #: deadline is derived at all (fewer samples -> "never hedge").
    hedge_window_s: float = 300.0
    hedge_min_samples: int = 8
    #: Planned-operations graceful-drain bound (core/lifecycle.py): how
    #: long an evacuation or switchover waits for in-flight functions
    #: at the cordoned region to finish before moving on (the remainder
    #: is parked and migrated through the backlog, never dropped).
    drain_deadline_s: float = 180.0
    #: SLO autopilot (core/autopilot.py): a closed-loop controller that
    #: retunes engine knobs online from windowed per-tenant SLO error
    #: and budget burn-rate.  Off by default, and the disabled path is
    #: byte-invisible: no controller is constructed, no timer armed, no
    #: probe sampled — runs with and without the flag are identical.
    enable_autopilot: bool = False
    #: Controller cadence: one observe → decide → actuate tick per
    #: interval while the autopilot is started.
    autopilot_interval_s: float = 60.0
    #: Trailing window over per-tenant delay samples feeding the
    #: windowed p99 the SLO error is computed from.
    autopilot_window_s: float = 300.0
    #: Hysteresis dead-band on every controller error signal: no knob
    #: moves while the signal sits within ±deadband of its target, so
    #: the controller cannot oscillate around a satisfied SLO.
    autopilot_deadband: float = 0.15
    #: Post-actuation cooldown per knob: once a knob moves, it holds
    #: for at least this long before the controller may move it again.
    autopilot_cooldown_s: float = 120.0
    #: Settle bound: a disturbance episode (SLO error leaving the dead-
    #: band) must recover (windowed p99 back under target) within this
    #: many seconds for the autopilot drill to pass.
    autopilot_settle_s: float = 900.0

    def __post_init__(self) -> None:
        if self.slo_seconds < 0:
            raise ValueError("slo_seconds must be >= 0")
        if not 0.5 <= self.percentile < 1.0:
            raise ValueError("percentile must be in [0.5, 1.0)")
        if self.part_size <= 0:
            raise ValueError("part_size must be positive")
        if self.max_parallelism < 1:
            raise ValueError("max_parallelism must be >= 1")
        if self.local_threshold > self.distributed_threshold:
            raise ValueError("local_threshold cannot exceed distributed_threshold")
        if self.outage_catchup_concurrency < 1:
            raise ValueError("outage_catchup_concurrency must be >= 1")
        if self.retransfer_budget < 0:
            raise ValueError("retransfer_budget must be >= 0")
        if not 0.5 <= self.hedge_deadline_quantile < 1.0:
            raise ValueError("hedge_deadline_quantile must be in [0.5, 1.0)")
        if self.hedge_min_part_bytes < 0:
            raise ValueError("hedge_min_part_bytes must be >= 0")
        if self.max_clones_per_part < 0:
            raise ValueError("max_clones_per_part must be >= 0")
        if self.hedge_window_s <= 0:
            raise ValueError("hedge_window_s must be positive")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")
        if self.autopilot_interval_s <= 0:
            raise ValueError("autopilot_interval_s must be positive")
        if self.autopilot_window_s <= 0:
            raise ValueError("autopilot_window_s must be positive")
        if not 0.0 < self.autopilot_deadband < 1.0:
            raise ValueError("autopilot_deadband must be in (0, 1)")
        if self.autopilot_cooldown_s < 0:
            raise ValueError("autopilot_cooldown_s must be >= 0")
        if self.autopilot_settle_s <= 0:
            raise ValueError("autopilot_settle_s must be positive")

    @property
    def slo_enabled(self) -> bool:
        """False when the SLO is 0 — always choose the fastest plan."""
        return self.slo_seconds > 0

    def parallelism_ladder(self) -> list[int]:
        """The exponentially-spaced parallelism levels Algorithm 3 scans."""
        ladder = []
        n = 1
        while n <= self.max_parallelism:
            ladder.append(n)
            n *= 2
        return ladder


@dataclass(frozen=True)
class TenantConfig:
    """One tenant of a multi-tenant AReplica deployment.

    A tenant owns a set of buckets, may override the service-wide
    :class:`ReplicaConfig`, carries its own SLO verdict target, and —
    following TCDRM's budget-aware replication economics — a **hard
    spend budget** per accounting window.  Once the tenant's admission
    ledger exhausts the window budget, new replication tasks are
    deferred to a per-tenant backlog lane (re-admitted when the window
    rolls) or rejected outright, per ``exhausted_policy``.  The budget
    gates *admission* (estimated task cost reserved up front), never
    in-flight work: work admitted before exhaustion always completes.

    Attributes
    ----------
    tenant_id:
        Stable identifier; embedded in rule ids (``{tenant}-s{shard}``),
        lock-table names, and trace attributes, so it must be non-empty
        and contain no ``:`` (task ids are colon-delimited).
    buckets:
        The tenant's bucket names (informational registry; the service
        binds concrete Bucket objects at :meth:`~repro.core.service.AReplicaService.add_tenant`).
    config_overrides:
        Field overrides applied on top of the service ReplicaConfig for
        this tenant's engines (e.g. a private ``retransfer_budget``).
    slo_target_s:
        Per-tenant replication-delay verdict target (p99, evaluated by
        drills/tests) — distinct from ``ReplicaConfig.slo_seconds``,
        which drives planning; 0 disables the verdict.
    budget_usd:
        Hard admission spend budget per window; ``None`` is unlimited.
        Admission is granted while the window's reserved spend is
        strictly below the budget, so each fresh window admits at least
        one task and a deferred backlog always drains eventually.
    budget_window_s:
        Length of the rolling accounting window.
    exhausted_policy:
        ``"defer"`` parks post-exhaustion tasks in the tenant's backlog
        lane until the window rolls; ``"reject"`` drops them (counted,
        traced, never replicated).
    weight:
        Fair-share weight for the deficit-round-robin dispatch
        scheduler; tenants with twice the weight receive twice the
        dispatch share under contention.
    """

    tenant_id: str
    buckets: tuple[str, ...] = ()
    config_overrides: dict = field(default_factory=dict)
    slo_target_s: float = 0.0
    budget_usd: Optional[float] = None
    budget_window_s: float = 3600.0
    exhausted_policy: str = "defer"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenant_id or ":" in self.tenant_id:
            raise ValueError(
                f"tenant_id must be non-empty without ':', got {self.tenant_id!r}")
        if self.slo_target_s < 0:
            raise ValueError("slo_target_s must be >= 0")
        if self.budget_usd is not None and self.budget_usd <= 0:
            raise ValueError("budget_usd must be positive (or None)")
        if self.budget_window_s <= 0:
            raise ValueError("budget_window_s must be positive")
        if self.exhausted_policy not in ("defer", "reject"):
            raise ValueError("exhausted_policy must be 'defer' or 'reject'")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        unknown = set(self.config_overrides) - {
            f.name for f in ReplicaConfig.__dataclass_fields__.values()}
        if unknown:
            raise ValueError(
                f"unknown ReplicaConfig overrides: {sorted(unknown)}")

    def effective_config(self, base: ReplicaConfig) -> ReplicaConfig:
        """The tenant's ReplicaConfig: ``base`` plus the overrides."""
        if not self.config_overrides:
            return base
        from dataclasses import replace

        return replace(base, **self.config_overrides)
