"""Offline performance profiler (§4).

Onboarding a new platform/region pair runs a set of probe tasks that
fit the performance model's parameter distributions:

* ``I(loc)`` — invocation API latency, timed from the invoke request to
  its acceptance;
* ``D(loc)`` — instance readiness delay, timed from acceptance to the
  handler's first statement.  Probes force cold starts (fresh function
  deployments), so on platforms with a periodic instance scheduler the
  samples naturally include the postponement ``P`` at a random phase;
* ``S(src, dst, loc)`` — client startup overhead, estimated as the
  excess duration of an instance's first chunk over its later chunks;
* ``C(src, dst, loc)`` — per-chunk transfer time for a single-function
  replication;
* ``C'(src, dst, loc)`` — per-chunk time under distributed replication,
  including the two KV accesses per part of Algorithm 1.

Each sample uses a *fresh* cold instance so that the fitted
distributions capture inter-instance variability — the property the
distribution-aware model exists to track.  Parameters are "easy and
affordable to profile" (§5.3): the default is 10 probes of a few
8 MB chunks each per path.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.model import LocParams, NormalParam, PathKey, PathParams, PerformanceModel
from repro.simcloud.cloud import Cloud
from repro.simcloud.objectstore import Blob, Bucket

__all__ = ["PerformanceProfiler"]

_SINGLE_CHUNKS = 4    # chunks timed per probe in single-function mode
_DIST_CHUNKS = 3      # chunks timed per probe in distributed mode


class PerformanceProfiler:
    """Fits model parameters by probing the (simulated) clouds."""

    def __init__(self, cloud: Cloud, model: PerformanceModel, samples: int = 10):
        if samples < 2:
            raise ValueError("need at least 2 probe samples to fit a std")
        self.cloud = cloud
        self.model = model
        self.samples = samples
        self._probe_seq = itertools.count(1)
        self.profiled_paths: list[PathKey] = []

    # -- public API ---------------------------------------------------------

    def ensure_path(self, loc_key: str, src: Bucket, dst: Bucket) -> PathKey:
        """Profile (loc, src, dst) if the model lacks it; returns the key."""
        key: PathKey = (loc_key, src.region.key, dst.region.key)
        if self.model.has_path(key):
            return key
        self.profile_path(loc_key, src, dst)
        return key

    def profile_path(self, loc_key: str, src: Bucket, dst: Bucket) -> PathKey:
        """Run the probe workload and install fitted parameters."""
        key: PathKey = (loc_key, src.region.key, dst.region.key)
        results = self._run_probes(loc_key, src, dst)
        self._fit(key, results)
        self.profiled_paths.append(key)
        return key

    # -- probe execution ---------------------------------------------------------

    def _run_probes(self, loc_key: str, src_bucket: Bucket,
                    dst_bucket: Bucket) -> list[dict]:
        faas = self.cloud.faas(loc_key)
        kv = self.cloud.kv_table(loc_key, "areplica-profile")
        chunk = self.model.chunk_size
        probe_size = chunk * max(_SINGLE_CHUNKS, _DIST_CHUNKS)
        probe_key = f"probe/{next(self._probe_seq)}"
        # Probes run against dedicated scratch buckets in the same
        # regions: identical network behaviour, but probe traffic never
        # feeds the notification bus (it would otherwise trigger any
        # replication rule listening on the production buckets).
        src = self.cloud.bucket(src_bucket.region.key, "__areplica-profile__")
        dst = self.cloud.bucket(dst_bucket.region.key, "__areplica-profile__")
        src.put_object(probe_key, Blob.fresh(probe_size, "probe"), self.cloud.now,
                       notify=False)
        results: list[dict] = []

        def make_handler(uid: str):
            def handler(ctx, payload):
                ready = ctx.now
                single_marks = [ctx.now]
                for i in range(_SINGLE_CHUNKS):
                    blob, _ = yield from ctx.get_object(src, probe_key,
                                                        i * chunk, chunk)
                    yield from ctx.put_object(dst, f"{probe_key}/{uid}/s{i}", blob)
                    single_marks.append(ctx.now)
                dist_marks = [ctx.now]
                for i in range(_DIST_CHUNKS):
                    yield kv.increment(f"probe:{uid}", "claimed")
                    blob, _ = yield from ctx.get_object(src, probe_key,
                                                        i * chunk, chunk)
                    yield from ctx.put_object(dst, f"{probe_key}/{uid}/d{i}", blob)
                    yield kv.increment(f"probe:{uid}", "completed")
                    dist_marks.append(ctx.now)
                return {"ready": ready, "single": single_marks, "dist": dist_marks}

            return handler

        def driver():
            for i in range(self.samples):
                uid = f"{next(self._probe_seq)}"
                name = f"__probe__{uid}"
                # Fresh deployment => guaranteed cold start => a fresh
                # instance with its own network speed factor.
                faas.deploy(name, make_handler(uid))
                requested = self.cloud.now
                accepted_fut, invocation = faas.invoke(name, None)
                yield accepted_fut
                accepted = self.cloud.now
                timings = yield invocation
                timings["I"] = accepted - requested
                timings["D"] = timings["ready"] - accepted
                results.append(timings)
            # Clean up probe outputs so experiment buckets stay pristine.
            for k in list(dst.keys()):
                if k.startswith(probe_key):
                    dst.delete_object(k, self.cloud.now, notify=False)
            src.delete_object(probe_key, self.cloud.now, notify=False)

        self.cloud.sim.run_process(driver(), name=f"profile:{loc_key}")
        return results

    # -- fitting -----------------------------------------------------------------

    def _fit(self, key: PathKey, results: list[dict]) -> None:
        loc_key = key[0]
        i_samples = [r["I"] for r in results]
        d_samples = [r["D"] for r in results]
        c_samples: list[float] = []
        s_samples: list[float] = []
        cp_samples: list[float] = []
        for r in results:
            single_durations = np.diff(r["single"])
            # Later chunks are steady-state C; the first chunk carries
            # the client-startup overhead S on top.
            steady = single_durations[1:]
            c_samples.extend(steady.tolist())
            s_samples.append(max(0.0, float(single_durations[0] - steady.mean())))
            cp_samples.extend(np.diff(r["dist"]).tolist())
        if loc_key not in self.model.loc_params:
            self.model.set_loc_params(
                loc_key,
                LocParams(
                    invoke=NormalParam.from_samples(i_samples),
                    startup=NormalParam.from_samples(d_samples),
                    # D probes include the scheduler postponement at a
                    # random phase, so P is folded into D.
                    postponement=NormalParam.zero(),
                ),
            )
        self.model.set_path_params(
            key,
            PathParams(
                client_startup=NormalParam.from_samples(s_samples),
                chunk=NormalParam.from_samples(c_samples),
                chunk_distributed=NormalParam.from_samples(cp_samples),
            ),
        )
