"""Engine-side retry/backoff policy.

The platform already retries whole *invocations* (``faas.py``: two
auto-retries with backoff, then the dead-letter queue).  This policy
governs the layer below that: individual control-plane operations —
lock writes, part-pool claims, done-marker updates — that a throttled
serverless database rejects.  Retrying them in place with jittered
exponential backoff is far cheaper than failing the whole function and
paying a platform retry (cold start, repeated data transfer), and the
jitter de-synchronizes the herd of replicators a throttling episode
creates.  Because that de-synchronization is the point, a policy with
``jitter > 0`` *requires* the caller's seeded RNG: silently falling
back to the raw schedule would re-align the herd exactly when it
matters, so :meth:`RetryPolicy.backoff_s` refuses instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with per-operation attempt/time caps.

    Attempt ``k`` (zero-based) sleeps ``min(cap_s, base_s *
    multiplier**k)``, scaled down by up to ``jitter`` uniformly at
    random.  After ``max_attempts`` failed retries the error propagates
    to the platform layer, whose own retry/DLQ machinery takes over —
    the cap is what keeps a persistently-throttled operation from
    pinning a billed function instance forever.

    ``deadline_s`` additionally bounds the total wall time one
    operation may spend retrying, measured from its *first* failure:
    a retry whose backoff would overshoot the deadline escalates
    immediately instead of sleeping.  During a sustained KV outage the
    attempt cap alone keeps a function alive for the full backoff sum;
    the deadline is what bounds billed time (and keeps retries well
    inside the 300 s replication-lock lease, so a fenced-out retry
    can never resume against a stolen lock).
    """

    base_s: float = 0.05
    multiplier: float = 2.0
    cap_s: float = 5.0
    max_attempts: int = 8
    #: Fraction of the raw backoff that jitter may remove (0 = none,
    #: 1 = full jitter down to zero).
    jitter: float = 0.5
    #: Total retry budget in seconds from the first failure; None
    #: disables the cap (attempt count alone governs).
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("base_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap_s < self.base_s:
            raise ValueError("cap_s must be >= base_s")
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")

    def nominal_s(self, attempt: int) -> float:
        """The un-jittered schedule value for ``attempt`` (zero-based)."""
        return min(self.cap_s, self.base_s * self.multiplier ** attempt)

    def backoff_s(self, attempt: int, rng=None) -> float:
        """Sleep before retry number ``attempt`` (zero-based).

        With ``jitter > 0`` the caller must supply its seeded ``rng``;
        omitting it used to silently return the raw schedule, which
        re-synchronized every replicator's retries and defeated the
        jitter precisely during the throttling herds it exists for.
        """
        raw = self.nominal_s(attempt)
        if self.jitter <= 0:
            return raw
        if rng is None:
            raise ValueError(
                "RetryPolicy has jitter > 0 but backoff_s() was called "
                "without the caller's seeded rng; use nominal_s() for "
                "the raw schedule")
        low = raw * (1.0 - self.jitter)
        return float(low + (raw - low) * rng.random())
