"""AReplica core: the paper's primary contribution.

Modules:

* :mod:`repro.core.config` — system configuration (SLO, percentile,
  part size, thresholds).
* :mod:`repro.core.model` — the distribution-aware performance model
  (§5.3) with Monte-Carlo and Gumbel (extreme-value) tail machinery.
* :mod:`repro.core.profiler` — offline profiler that fits the model's
  I/D/P/S/C/C' parameters from probe runs.
* :mod:`repro.core.planner` — SLO-compliant dynamic plan generation
  (Algorithm 3).
* :mod:`repro.core.partpool` — decentralized part-granularity
  scheduling over a shared KV pool (Algorithm 1), plus the "fair"
  static dispatch ablation.
* :mod:`repro.core.locks` — object-granularity replication lock
  (Algorithm 2).
* :mod:`repro.core.engine` — the variability-tolerant replication
  engine (§5.1) with optimistic validation (§5.2).
* :mod:`repro.core.changelog` — changelog propagation (§5.4).
* :mod:`repro.core.batching` — SLO-bounded batching (Algorithm 4).
* :mod:`repro.core.logger` — runtime drift detection and model
  re-calibration (§4 "Logger").
* :mod:`repro.core.health` — per-substrate circuit breakers driving
  outage-aware degraded routing.
* :mod:`repro.core.repair` — anti-entropy scanner re-driving
  source/destination divergence.
* :mod:`repro.core.service` — the end-to-end AReplica service facade.
"""

from repro.core.audit import ReplicationAuditor
from repro.core.client import ReplicatedBucketClient
from repro.core.config import ReplicaConfig
from repro.core.health import (
    BreakerConfig,
    BreakerState,
    HealthTracker,
    NoRouteAvailable,
)
from repro.core.model import NormalParam, PerformanceModel
from repro.core.planner import Plan, StrategyPlanner
from repro.core.repair import AntiEntropyScanner, RepairReport
from repro.core.service import (
    AReplicaService,
    ConvergenceReport,
    ReplicationRecord,
)
from repro.core.topology import ReplicationTopology

__all__ = [
    "ReplicaConfig",
    "NormalParam",
    "PerformanceModel",
    "Plan",
    "StrategyPlanner",
    "AReplicaService",
    "ConvergenceReport",
    "ReplicationRecord",
    "ReplicationAuditor",
    "ReplicatedBucketClient",
    "ReplicationTopology",
    "BreakerConfig",
    "BreakerState",
    "HealthTracker",
    "NoRouteAvailable",
    "AntiEntropyScanner",
    "RepairReport",
]
