"""User-side client library with automatic changelog hints.

§5.4: "A changelog is generated at the user program as a hint to
AReplica, which can be created by the user or automated by program
analysis."  This module is that user-program layer: a thin wrapper
around a source bucket whose derived-object operations — copy, concat,
append, patch — record the matching changelog hint *before* the write
lands, so the orchestrator always finds the hint when the notification
arrives.  Plain reads/writes pass straight through.

The client is a DES process API: every method is a generator to be
driven with ``yield from`` inside a simulation process (or via
:meth:`run` for one-off calls from test/driver code).

The client is also the *end* of the end-to-end integrity chain: the
checksums the engine verifies per part originate from (and are finally
re-checked against) the user-visible content here.  A write returns
the store's ETag, which :meth:`put` compares against the local blob's
hash before reporting success, and :meth:`verified_get` re-reads an
object byte-for-byte — retrying once through a transient read fault —
raising :class:`ClientIntegrityError` when the bytes the store serves
do not match what it claims to hold.
"""

from __future__ import annotations

from repro.core.changelog import ChangelogStore
from repro.simcloud.cloud import Cloud
from repro.simcloud.objectstore import Blob, Bucket, ObjectVersion

__all__ = ["ReplicatedBucketClient", "ClientIntegrityError"]


class ClientIntegrityError(RuntimeError):
    """The store's content or ETag failed client-side verification."""


class ReplicatedBucketClient:
    """Derived-object writes with automatic replication hints."""

    def __init__(self, cloud: Cloud, bucket: Bucket, changelog: ChangelogStore):
        self.cloud = cloud
        self.bucket = bucket
        self.changelog = changelog
        self.stats = {"puts": 0, "copies": 0, "concats": 0, "appends": 0,
                      "patches": 0, "verified_gets": 0,
                      "integrity_retries": 0, "integrity_failures": 0}

    # -- driving helper ----------------------------------------------------

    def run(self, gen):
        """Execute one client operation to completion (drains the sim)."""
        return self.cloud.sim.run_process(gen)

    # -- plain operations ----------------------------------------------------

    def put(self, key: str, blob: Blob):
        """Process: ordinary PUT (no hint — full replication).

        The returned ETag is checked against the local blob's hash —
        the write-side anchor of the end-to-end integrity chain (a
        store acknowledging a mangled write must not look like
        success).  Free on the clean path: both sides are cached hash
        strings.
        """
        self.stats["puts"] += 1
        yield self.cloud.sim.sleep(0.0)
        version = self.bucket.put_object(key, blob, self.cloud.now)
        if version.etag != blob.etag:
            self.stats["integrity_failures"] += 1
            raise ClientIntegrityError(
                f"PUT {key}: store acknowledged etag {version.etag}, "
                f"client computed {blob.etag}")
        return version

    def get(self, key: str) -> ObjectVersion:
        """Zero-cost metadata read (client-side)."""
        return self.bucket.head(key)

    def verified_get(self, key: str):
        """Process: byte-verified read of the current version.

        Reads the full object through the store's (possibly
        chaos-wrapped) data path and checks both the payload bytes and
        the reported ETag against each other.  One re-read absorbs a
        transient medium fault; a persistent mismatch raises
        :class:`ClientIntegrityError` — the caller-facing surfacing of
        silent corruption (never a quietly-wrong payload).
        """
        self.stats["verified_gets"] += 1
        yield self.cloud.sim.sleep(0.0)
        for attempt in range(2):
            payload, version = self.bucket.get_object(key)
            if (payload.size == version.size
                    and payload.etag == version.etag):
                return payload, version
            if attempt == 0:
                self.stats["integrity_retries"] += 1
        self.stats["integrity_failures"] += 1
        raise ClientIntegrityError(
            f"GET {key}: payload hash {payload.etag} != reported etag "
            f"{version.etag} after re-read")

    def delete(self, key: str):
        yield self.cloud.sim.sleep(0.0)
        self.bucket.delete_object(key, self.cloud.now)

    # -- derived-object operations (hint + write) --------------------------------

    def copy(self, src_key: str, dst_key: str):
        """Process: server-side copy, hinted as a COPY changelog."""
        self.stats["copies"] += 1
        source = self.bucket.head(src_key)
        yield from self.changelog.record_copy(src_key, source.etag, dst_key,
                                              source.blob.etag)
        return self.bucket.put_object(dst_key, source.blob, self.cloud.now)

    def concat(self, src_keys: list[str], dst_key: str):
        """Process: concatenation of existing objects, hinted as CONCAT."""
        if not src_keys:
            raise ValueError("concat needs at least one source")
        self.stats["concats"] += 1
        sources = [(k, self.bucket.head(k)) for k in src_keys]
        blob = Blob.concat([v.blob for _, v in sources])
        yield from self.changelog.record_concat(
            [(k, v.etag) for k, v in sources], dst_key, blob.etag)
        return self.bucket.put_object(dst_key, blob, self.cloud.now)

    def append(self, key: str, tail: Blob):
        """Process: append fresh bytes to an object, hinted as APPEND."""
        self.stats["appends"] += 1
        base = self.bucket.head(key)
        blob = Blob.concat([base.blob, tail])
        yield from self.changelog.record_append(
            key, base.etag, blob.etag, base.size, blob.size)
        return self.bucket.put_object(key, blob, self.cloud.now)

    def patch(self, key: str, offset: int, fresh: Blob):
        """Process: overwrite a byte range of an object, hinted as PATCH.

        This is the object-storage-as-block-storage pattern (§5.4):
        the whole object is rewritten at the source, but only the fresh
        range needs to cross the WAN.
        """
        self.stats["patches"] += 1
        base = self.bucket.head(key)
        if offset < 0 or offset + fresh.size > base.size:
            raise ValueError(
                f"patch [{offset}, {offset + fresh.size}) outside "
                f"{base.size}-byte object"
            )
        pieces = [base.blob.slice(0, offset), fresh]
        tail_start = offset + fresh.size
        if tail_start < base.size:
            pieces.append(base.blob.slice(tail_start, base.size - tail_start))
        blob = Blob.concat(pieces)
        yield from self.changelog.record_patch(
            key, base.etag, blob.etag, offset, fresh.size)
        return self.bucket.put_object(key, blob, self.cloud.now)

    def truncate_then_append(self, key: str, keep: int, tail: Blob):
        """Process: log-rotation pattern — keep a prefix, append new data.

        Hinted as a CONCAT of a (self-referencing) byte range plus fresh
        data; falls back to full replication automatically when the
        destination's base version diverged.
        """
        base = self.bucket.head(key)
        if keep > base.size:
            raise ValueError("keep exceeds object size")
        blob = Blob.concat([base.blob.slice(0, keep), tail])
        # No cheap hint covers prefix-truncation (the destination cannot
        # reuse a *range* of an object without a compose-with-range API),
        # so this intentionally records nothing: full replication.
        self.stats["puts"] += 1
        yield self.cloud.sim.sleep(0.0)
        return self.bucket.put_object(key, blob, self.cloud.now)
