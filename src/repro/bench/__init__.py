"""Performance benchmark harnesses (not paper-figure benchmarks).

``repro.bench.perf`` measures the simulator's own execution speed —
kernel event throughput, planner throughput, trace generation, and a
scaled-down Fig 23 end-to-end replay — and records the results in
machine-readable ``BENCH_*.json`` files so later changes can be
regression-checked against earlier baselines.
"""
