"""Microbenchmarks for the simulator's hot paths.

Four benchmarks, all driven through public APIs only so the same
harness runs against any revision of the codebase:

* **kernel** — DES event throughput (events/s): a mix of sleeping
  processes, plain timers, zero-delay callback fan-out, and cancelled
  timers, i.e. the event shapes the replication engine actually
  schedules.
* **planner** — Algorithm-3 plan generation throughput (plans/s),
  measured cold (fresh model, empty caches) and warm (repeated queries
  for the same paths and size buckets).
* **tracegen** — synthetic IBM COS trace generation (requests/s).
* **e2e** — a scaled-down Fig 23 busy-hour replay through the full
  notification → planner → engine path (requests/s of simulated
  workload processed per wall-clock second).
* **integrity** — the same replay with the end-to-end verification
  machinery on vs off (``verify_after_finalize``), as a wall-time
  ratio.  The design claim is that integrity is near-zero-cost on the
  clean path — checksums reuse the stores' cached ETags, no per-part
  hashing — and ``check_regression`` enforces the ratio absolutely
  (no reference file needed).

* **hedging** — the delay/cost frontier of speculative straggler
  cloning: the same seeded busy-hour segment replayed under an
  identical WAN-stall schedule with hedging off (plain platform
  retries only) vs on.  Reports the replication-delay P99 of both
  arms, the relative improvement, and the cost ratio;
  ``check_regression`` enforces both absolutely (improvement ≥ 25%,
  cost overhead ≤ 10%) — the PR's acceptance frontier, not a
  machine-relative throughput.

* **autopilot** — the cost of the closed-loop SLO controller on the
  busy-hour replay.  The off arm re-proves the byte-invisibility
  claim on the bench segment (a replay with the controller
  constructed-but-disabled must produce identical replication delays
  to a plain replay — reported as ``autopilot_off_byte_identical``,
  enforced exactly); the on arm arms the controller on a 30 s tick
  and reports the wall-time ratio, enforced absolutely at
  ``1 + max(AUTOPILOT_MAX_OVERHEAD, tolerance)``.  The controller's
  per-tick cost is fixed while the replay's work scales, so the
  recorded full-scale ratio is the honest overhead figure; tiny
  ``--scale`` runs amplify it, hence the tolerance escape hatch.

``run_all`` returns a flat ``{metric: value}`` dict; ``emit`` writes
the ``BENCH_*.json`` trajectory file; ``check_regression`` compares a
fresh run against the latest committed file.

Wall-clock timings are machine-dependent; the *simulated* outputs of
every benchmark are seeded and deterministic.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Callable, Optional

__all__ = [
    "bench_kernel",
    "bench_planner",
    "bench_tracegen",
    "bench_e2e",
    "bench_integrity",
    "bench_hedging",
    "bench_autopilot",
    "run_all",
    "emit",
    "latest_bench_file",
    "check_regression",
]

#: Metrics where larger is better (throughputs).  ``e2e_seconds`` is
#: excluded: it is informational, with ``e2e_reqs_per_s`` the guarded
#: throughput form.
THROUGHPUT_METRICS = (
    "kernel_events_per_s",
    "planner_cold_plans_per_s",
    "planner_warm_plans_per_s",
    "tracegen_reqs_per_s",
    "e2e_reqs_per_s",
)


def _best_of(fn: Callable[[], tuple[float, float]], repeat: int) -> float:
    """Run ``fn`` -> (work, seconds) ``repeat`` times; best work/s."""
    best = 0.0
    for _ in range(max(1, repeat)):
        work, seconds = fn()
        best = max(best, work / max(seconds, 1e-12))
    return best


# -- kernel ----------------------------------------------------------------


def bench_kernel(events: int = 200_000, repeat: int = 3) -> float:
    """DES kernel throughput in events fired per wall-clock second."""
    from repro.simcloud.sim import Simulator

    sleeps_per_proc = 20
    n_procs = max(1, events // (2 * sleeps_per_proc))
    n_timers = max(1, events // 4)

    def once() -> tuple[float, float]:
        sim = Simulator()
        fired = [0]

        def proc(offset: float):
            for i in range(sleeps_per_proc):
                yield sim.sleep(0.25 + offset)
                # Zero-delay fan-out: the engine's dominant shape.
                yield sim.sleep(0.0)

        for i in range(n_procs):
            sim.spawn(proc(i * 1e-4))
        for i in range(n_timers):
            t = sim.call_later(1.0 + i * 1e-5, lambda: fired.__setitem__(0, fired[0] + 1))
            if i % 3 == 0:
                t.cancel()
        total = n_procs * (1 + 2 * sleeps_per_proc) + n_timers
        t0 = time.perf_counter()
        sim.run()
        return float(total), time.perf_counter() - t0

    return _best_of(once, repeat)


# -- planner ----------------------------------------------------------------


def _make_model_and_planner():
    from repro.core.config import ReplicaConfig
    from repro.core.model import LocParams, NormalParam, PathParams, PerformanceModel
    from repro.core.planner import StrategyPlanner

    config = ReplicaConfig()
    model = PerformanceModel(chunk_size=config.part_size,
                             mc_samples=config.mc_samples,
                             gumbel_threshold=config.gumbel_threshold, seed=7)
    locs = ("aws:us-east-1", "azure:eastus")
    for i, loc in enumerate(locs):
        model.set_loc_params(loc, LocParams(
            invoke=NormalParam(0.05 + 0.01 * i, 0.01),
            startup=NormalParam(0.25 + 0.05 * i, 0.06),
            postponement=NormalParam(0.4, 0.1),
        ))
    for loc in locs:
        model.set_path_params((loc, locs[0], locs[1]), PathParams(
            client_startup=NormalParam(0.6, 0.12),
            chunk=NormalParam(0.35, 0.07),
            chunk_distributed=NormalParam(0.45, 0.09),
        ))
    return model, StrategyPlanner(model, config), locs


_PLANNER_SIZES = tuple(
    int(s) for s in (
        2 * 1024, 96 * 1024, 1024**2, 6 * 1024**2, 24 * 1024**2,
        80 * 1024**2, 320 * 1024**2, 1280 * 1024**2,
    )
)


def bench_planner(iterations: int = 400, repeat: int = 3) -> tuple[float, float]:
    """(cold plans/s, warm plans/s) for repeated Algorithm-3 queries.

    Cold constructs a fresh model+planner per round so every cache in
    play (plan cache, Monte-Carlo cache, seed tables) starts empty;
    warm reuses one planner and re-issues identical queries.
    """

    def cold() -> tuple[float, float]:
        model, planner, locs = _make_model_and_planner()
        t0 = time.perf_counter()
        for size in _PLANNER_SIZES:
            planner.fastest(size, locs[0], locs[1])
        return float(len(_PLANNER_SIZES)), time.perf_counter() - t0

    cold_rate = _best_of(cold, repeat)

    model, planner, locs = _make_model_and_planner()
    for size in _PLANNER_SIZES:  # prime every cache once
        planner.fastest(size, locs[0], locs[1])

    def warm() -> tuple[float, float]:
        t0 = time.perf_counter()
        for _ in range(iterations):
            for size in _PLANNER_SIZES:
                planner.fastest(size, locs[0], locs[1])
        return float(iterations * len(_PLANNER_SIZES)), time.perf_counter() - t0

    warm_rate = _best_of(warm, repeat)
    return cold_rate, warm_rate


# -- trace generation --------------------------------------------------------


def bench_tracegen(requests: int = 40_000, repeat: int = 3) -> float:
    """Synthetic IBM COS trace generation throughput (requests/s)."""
    from repro.traces.ibm_cos import IbmCosTraceGenerator

    duration = 1800.0
    gen_kwargs = dict(seed=11, mean_rps=requests / duration)

    def once() -> tuple[float, float]:
        gen = IbmCosTraceGenerator(**gen_kwargs)
        batched = getattr(gen, "generate_batches", gen.generate)
        t0 = time.perf_counter()
        trace = batched(duration)
        produced = sum(len(b) for b in trace) if trace and not hasattr(
            trace[0], "op") else len(trace)
        return float(produced), time.perf_counter() - t0

    return _best_of(once, repeat)


# -- end-to-end --------------------------------------------------------------


def bench_e2e(requests: int = 3_000, repeat: int = 1) -> tuple[float, float]:
    """Scaled-down Fig 23 replay: (seconds, trace requests/s).

    Replays a seeded busy-hour IBM COS segment through a full AReplica
    deployment (aws:us-east-1 → azure:eastus, fastest-plan mode) and
    times the whole simulation, exactly like ``repro.cli trace`` does.
    """
    from repro.core.config import ReplicaConfig
    from repro.core.service import AReplicaService
    from repro.simcloud.cloud import build_default_cloud
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    gen = IbmCosTraceGenerator(seed=0)
    if hasattr(gen, "busy_hour_batches"):
        trace = gen.busy_hour_batches(total_requests=requests)
        n_requests = sum(len(b) for b in trace)
    else:
        trace = gen.busy_hour(total_requests=requests)
        n_requests = len(trace)

    # The replay opts into fused small-object transfers (no chaos or
    # tracing is armed here); older revisions predate the knob.
    config_kwargs: dict = dict(profile_samples=8, fuse_small_transfers=True)
    try:
        ReplicaConfig(**config_kwargs)
    except TypeError:
        config_kwargs = dict(profile_samples=8)

    best_rate, best_seconds = 0.0, math.inf
    for _ in range(max(1, repeat)):
        cloud = build_default_cloud(seed=0)
        service = AReplicaService(cloud, ReplicaConfig(**config_kwargs))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        service.add_rule(src, dst)
        replayer = TraceReplayer(cloud, src)
        run = getattr(replayer, "replay_all_batches", replayer.replay_all)
        t0 = time.perf_counter()
        stats = run(trace)
        seconds = time.perf_counter() - t0
        if stats.requests != n_requests:
            raise RuntimeError("e2e benchmark lost requests")
        if seconds < best_seconds:
            best_seconds = seconds
            best_rate = stats.requests / max(seconds, 1e-12)
    return best_seconds, best_rate


def bench_integrity(requests: int = 1_200, repeat: int = 2) -> float:
    """Wall-time ratio of the e2e replay with verification on vs off.

    ~1.0 means the integrity machinery (per-part checksum comparison,
    verify-after-finalize) costs nothing measurable when corruption
    faults are disabled — the clean path compares cached hash strings
    and symbolic segment tuples, never re-hashing bytes.
    """
    from repro.core.config import ReplicaConfig
    from repro.core.service import AReplicaService
    from repro.simcloud.cloud import build_default_cloud
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    gen = IbmCosTraceGenerator(seed=3)
    if hasattr(gen, "busy_hour_batches"):
        trace = gen.busy_hour_batches(total_requests=requests)
    else:
        trace = gen.busy_hour(total_requests=requests)

    def best_seconds(verify: bool) -> float:
        best = math.inf
        for _ in range(max(1, repeat)):
            cloud = build_default_cloud(seed=3)
            service = AReplicaService(cloud, ReplicaConfig(
                profile_samples=8, verify_after_finalize=verify))
            src = cloud.bucket("aws:us-east-1", "src")
            dst = cloud.bucket("azure:eastus", "dst")
            service.add_rule(src, dst)
            replayer = TraceReplayer(cloud, src)
            run = getattr(replayer, "replay_all_batches",
                          replayer.replay_all)
            t0 = time.perf_counter()
            run(trace)
            best = min(best, time.perf_counter() - t0)
        return best

    return best_seconds(True) / max(best_seconds(False), 1e-12)


# -- hedging ------------------------------------------------------------------

#: Acceptance frontier for hedged straggler cloning, enforced
#: absolutely by ``check_regression``: the hedged arm must cut the
#: replication-delay P99 by at least this fraction ...
HEDGING_MIN_P99_IMPROVEMENT = 0.25
#: ... while spending at most this multiple of the plain-retry arm.
HEDGING_MAX_COST_RATIO = 1.10


def bench_hedging(requests: int = 800,
                  wan_stall_prob: float = 0.15) -> dict[str, float]:
    """Hedging delay/cost frontier on the busy-hour segment.

    Both arms replay the identical seeded trace under the identical
    seeded WAN-stall schedule (exponential stalls, the paper's §6
    straggler model), then drain to convergence; the only difference
    is the hedging knob.  Everything simulated is deterministic, so a
    single run per arm is exact — there is no wall-clock noise in
    these metrics, and no ``repeat`` parameter.

    The hedged arm runs with the aggressive drill profile (deadline
    quantile 0.9, two clones, no size floor): parts are cheap to clone
    relative to WAN stalls, so cloning everything that overruns is the
    frontier-optimal policy on this workload.
    """
    from repro.core.config import ReplicaConfig
    from repro.core.service import AReplicaService
    from repro.simcloud.chaos import ChaosConfig
    from repro.simcloud.cloud import build_default_cloud
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    trace = IbmCosTraceGenerator(seed=0).busy_hour(total_requests=requests)

    def arm(hedging: bool):
        cloud = build_default_cloud(seed=0)
        kwargs: dict = dict(profile_samples=8)
        if hedging:
            kwargs.update(hedging_enabled=True, hedge_deadline_quantile=0.9,
                          max_clones_per_part=2, hedge_min_part_bytes=1)
        service = AReplicaService(cloud, ReplicaConfig(**kwargs))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        rule = service.add_rule(src, dst)
        cloud.apply_chaos(ChaosConfig(wan_stall_prob=wan_stall_prob))
        TraceReplayer(cloud, src).replay_all(trace)
        cloud.apply_chaos(None)
        service.run_to_convergence()
        summary = service.summary()
        return (summary["delay_p99_s"], summary["total_cost_usd"],
                rule.engine.stats)

    p99_off, cost_off, _ = arm(False)
    p99_on, cost_on, stats = arm(True)
    return {
        "hedging_p99_off_s": p99_off,
        "hedging_p99_on_s": p99_on,
        "hedging_p99_improvement":
            (p99_off - p99_on) / max(p99_off, 1e-12),
        "hedging_cost_overhead_ratio": cost_on / max(cost_off, 1e-12),
        "hedging_hedges": float(stats.get("hedges", 0)),
        "hedging_wins": float(stats.get("hedge_wins", 0)),
    }


# -- autopilot ----------------------------------------------------------------

#: Wall-time overhead the armed SLO controller may add to the e2e
#: busy-hour replay at full scale, enforced absolutely by
#: ``check_regression`` (widened to the requested tolerance when that
#: is larger — tiny-scale runs shrink the replay's work but not the
#: controller's fixed per-tick cost, so the ratio is not
#: scale-invariant).
AUTOPILOT_MAX_OVERHEAD = 0.02


def bench_autopilot(requests: int = 1_200, repeat: int = 2) -> dict[str, float]:
    """Autopilot cost on the busy-hour replay: off is free, on is cheap.

    Three arms per round, identical seeded trace: a plain replay, a
    replay with an ``Autopilot`` constructed but never started (the
    determinism-golden byte-invisibility claim, re-proved here via
    exact delay equality), and a replay with the controller armed on a
    30 s tick for the whole simulated hour.  The overhead ratio is
    measured *inside* the armed run — every tick is individually
    timed, and the ratio is armed wall time over armed wall time minus
    tick time — because everything the controller adds to the replay
    happens in its tick (the 120 extra kernel timer events are noise-
    level).  Comparing two separate ~half-second processes' wall
    clocks would drown a percent-level effect in scheduler noise;
    the in-run measurement is noise-cancelling since numerator and
    denominator come from the same run.  Wall times are best-of-
    ``repeat``; the simulated outputs are deterministic.
    """
    from repro.core.config import ReplicaConfig
    from repro.core.service import AReplicaService
    from repro.simcloud.cloud import build_default_cloud
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    trace = IbmCosTraceGenerator(seed=7).busy_hour(total_requests=requests)

    def arm(armed: bool, idle_controller: bool = False):
        cloud = build_default_cloud(seed=7)
        kwargs: dict = dict(profile_samples=8)
        if armed:
            kwargs.update(enable_autopilot=True, autopilot_interval_s=30.0,
                          autopilot_window_s=120.0)
        service = AReplicaService(cloud, ReplicaConfig(**kwargs))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        service.add_rule(src, dst)
        if idle_controller:
            from repro.core.autopilot import Autopilot

            Autopilot(service)          # constructed, never started
        tick_cost = 0.0
        if armed:
            autopilot = service.autopilot
            inner = autopilot._tick

            def timed_tick() -> None:
                nonlocal tick_cost
                t = time.perf_counter()
                inner()
                tick_cost += time.perf_counter() - t

            autopilot._tick = timed_tick
            autopilot.start(duration_s=3600.0)
        replayer = TraceReplayer(cloud, src)
        t0 = time.perf_counter()
        replayer.replay_all(trace)
        seconds = time.perf_counter() - t0
        if armed:
            service.autopilot.stop()
        return seconds, tick_cost, tuple(service.delays())

    best_off = best_on = best_ratio = math.inf
    identical = True
    for _ in range(max(1, repeat)):
        plain_s, _, plain_delays = arm(False)
        idle_s, _, idle_delays = arm(False, idle_controller=True)
        identical = identical and idle_delays == plain_delays
        on_s, ticks_s, _ = arm(True)
        best_off = min(best_off, plain_s, idle_s)
        best_on = min(best_on, on_s)
        best_ratio = min(best_ratio, on_s / max(on_s - ticks_s, 1e-12))
    return {
        "autopilot_off_byte_identical": 1.0 if identical else 0.0,
        "autopilot_off_seconds": best_off,
        "autopilot_on_seconds": best_on,
        "autopilot_on_overhead_ratio": best_ratio,
    }


# -- orchestration ------------------------------------------------------------


def run_all(scale: float = 1.0, repeat: int = 3,
            progress: Optional[Callable[[str], None]] = None) -> dict[str, float]:
    """Run every benchmark; returns the flat metric dict."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def scaled(n: int, minimum: int = 1) -> int:
        return max(minimum, int(round(n * scale)))

    note("kernel: event throughput ...")
    kernel = bench_kernel(events=scaled(200_000, 1000), repeat=repeat)
    note("planner: cold vs warm plan generation ...")
    cold, warm = bench_planner(iterations=scaled(400, 5), repeat=repeat)
    note("tracegen: synthetic IBM COS hour ...")
    tracegen = bench_tracegen(requests=scaled(40_000, 500), repeat=repeat)
    note("e2e: scaled-down Fig 23 replay ...")
    seconds, rate = bench_e2e(requests=scaled(3_000, 100),
                              repeat=max(1, repeat - 1))
    note("integrity: verification-on vs -off replay ...")
    integrity = bench_integrity(requests=scaled(1_200, 100),
                                repeat=max(1, repeat - 1))
    note("hedging: stalled replay, cloning off vs on ...")
    hedging = bench_hedging(requests=scaled(800, 200))
    note("autopilot: controller disabled / idle / armed replay ...")
    autopilot = bench_autopilot(requests=scaled(1_200, 100),
                                repeat=max(1, repeat - 1))
    return {
        "kernel_events_per_s": kernel,
        "planner_cold_plans_per_s": cold,
        "planner_warm_plans_per_s": warm,
        "tracegen_reqs_per_s": tracegen,
        "e2e_seconds": seconds,
        "e2e_reqs_per_s": rate,
        "integrity_overhead_ratio": integrity,
        **hedging,
        **autopilot,
    }


def emit(path: str | pathlib.Path, current: dict[str, float],
         baseline: Optional[dict[str, float]] = None,
         meta: Optional[dict] = None) -> dict:
    """Write a ``BENCH_*.json`` document and return it."""
    doc: dict = {"schema": 1, "meta": meta or {}, "current": current}
    if baseline is not None:
        doc["baseline"] = baseline
        doc["speedup"] = {
            m: current[m] / baseline[m]
            for m in THROUGHPUT_METRICS
            if m in current and baseline.get(m)
        }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def latest_bench_file(root: str | pathlib.Path = ".") -> Optional[pathlib.Path]:
    """The lexically newest ``BENCH_*.json`` under ``root``."""
    files = sorted(pathlib.Path(root).glob("BENCH_*.json"))
    return files[-1] if files else None


def check_regression(current: dict[str, float], reference: dict,
                     tolerance: float = 0.30,
                     scale: Optional[float] = None) -> list[str]:
    """Warnings for throughput metrics > ``tolerance`` below reference.

    ``reference`` is a previously emitted document (its ``current``
    section is the bar to clear).  The integrity-overhead ratio is
    checked *absolutely* against ``1 + tolerance`` (older reference
    files predate the metric, and the claim — verification is free on
    the clean path — holds regardless of the machine).

    ``scale`` is the scale the ``current`` metrics were measured at.
    Rates are not scale-invariant (fixed per-run setup amortizes
    differently), so comparing a small-scale run against a full-scale
    reference would silently "pass" — the comparison is refused when
    the reference records a different ``meta.scale``.
    """
    ref_scale = reference.get("meta", {}).get("scale")
    if (scale is not None and ref_scale is not None
            and not math.isclose(float(scale), float(ref_scale),
                                 rel_tol=1e-9)):
        raise ValueError(
            f"scale mismatch: current run measured at scale {scale:g} but "
            f"the reference was recorded at scale {ref_scale:g}; rerun with "
            f"--scale {ref_scale:g} (or record a new reference) to compare")
    bar = reference.get("current", reference)
    warnings = []
    improvement = current.get("hedging_p99_improvement")
    if improvement is not None and improvement < HEDGING_MIN_P99_IMPROVEMENT:
        warnings.append(
            f"hedging_p99_improvement: hedged replay cut P99 delay by only "
            f"{improvement:.0%} (acceptance floor "
            f"{HEDGING_MIN_P99_IMPROVEMENT:.0%})")
    hedge_cost = current.get("hedging_cost_overhead_ratio")
    if hedge_cost is not None and hedge_cost > HEDGING_MAX_COST_RATIO:
        warnings.append(
            f"hedging_cost_overhead_ratio: hedged replay spent "
            f"{hedge_cost - 1:.0%} more than plain retries (acceptance "
            f"ceiling {HEDGING_MAX_COST_RATIO - 1:.0%})")
    ratio = current.get("integrity_overhead_ratio")
    if ratio is not None and ratio > 1.0 + tolerance:
        warnings.append(
            f"integrity_overhead_ratio: verification-on replay is "
            f"{ratio - 1:.0%} slower than verification-off "
            f"(tolerance {tolerance:.0%})")
    identical = current.get("autopilot_off_byte_identical")
    if identical is not None and identical != 1.0:
        warnings.append(
            "autopilot_off_byte_identical: replay with the controller "
            "constructed-but-disabled diverged from the plain replay "
            "(enable_autopilot=False must be byte-invisible)")
    ap_ratio = current.get("autopilot_on_overhead_ratio")
    ap_ceiling = 1.0 + max(AUTOPILOT_MAX_OVERHEAD, tolerance)
    if ap_ratio is not None and ap_ratio > ap_ceiling:
        warnings.append(
            f"autopilot_on_overhead_ratio: armed controller made the "
            f"busy-hour replay {ap_ratio - 1:.0%} slower (ceiling "
            f"{ap_ceiling - 1:.0%})")
    for metric in THROUGHPUT_METRICS:
        ref = bar.get(metric)
        cur = current.get(metric)
        if not ref or cur is None:
            continue
        if cur < ref * (1.0 - tolerance):
            warnings.append(
                f"{metric}: {cur:,.0f}/s is {1 - cur / ref:.0%} below the "
                f"recorded {ref:,.0f}/s (tolerance {tolerance:.0%})"
            )
    return warnings
