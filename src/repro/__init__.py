"""AReplica — serverless replication of object storage across
multi-vendor clouds and regions (EuroSys '26 reproduction).

Public entry points:

* :mod:`repro.simcloud` — the multi-cloud simulation substrate.
* :mod:`repro.core` — the AReplica system: replication engine, strategy
  planner, distribution-aware performance model, changelog propagation,
  and SLO-bounded batching.
* :mod:`repro.baselines` — Skyplane, S3 Replication Time Control, and
  Azure object replication models.
* :mod:`repro.traces` — IBM-COS-like trace generation and replay.
* :mod:`repro.analysis` — statistics and table/report helpers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
