"""AReplica command-line interface.

Mirrors the published LambdaReplica CLI against the simulated clouds:

    areplica replicate --src aws:us-east-1 --dst azure:eastus --size 128MB
    areplica plan      --src aws:us-east-1 --dst gcp:us-east1 --size 1GB --slo 10
    areplica profile   --src aws:us-east-1 --dst azure:eastus
    areplica trace     --requests 5000 --slo 10
    areplica compare   --src aws:us-east-1 --dst aws:us-east-2 --size 1MB
    areplica outage-drill --outage-start 600 --outage-duration 600
    areplica corruption-drill --seed 0 --json
    areplica hedge-drill --seed 0 --json
    areplica lifecycle-drill --scenario evacuate --chaos --hedging --json
    areplica tenant-drill --tenants 1000 --shards 4 --json
    areplica autopilot-drill --seed 0 --json
    areplica drill-all --seed 0

All commands accept ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

__all__ = ["main", "parse_size"]

_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3, "TB": 1024**4}


def parse_size(text: str) -> int:
    """Parse '128MB', '1GB', '512', '8 MB' into bytes."""
    s = text.strip().upper().replace(" ", "")
    for unit in ("TB", "GB", "MB", "KB", "B"):
        if s.endswith(unit):
            number = s[: -len(unit)]
            try:
                return int(float(number) * _UNITS[unit])
            except ValueError:
                break
    try:
        return int(s)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}") from None


def _build_service(args, slo: float = 0.0, tracing: bool = False):
    from repro.core.config import ReplicaConfig
    from repro.core.service import AReplicaService
    from repro.simcloud.cloud import build_default_cloud

    cloud = build_default_cloud(seed=args.seed)
    # Hedging rides along on any command that grew the --hedging flag;
    # the knob getattrs fall back to the drills that predate it.
    hedging = {}
    if getattr(args, "hedging", False):
        hedging = dict(
            hedging_enabled=True,
            hedge_deadline_quantile=getattr(args, "hedge_quantile", 0.95),
            hedge_min_samples=getattr(args, "hedge_min_samples", 8),
            hedge_min_part_bytes=getattr(args, "hedge_min_part_bytes",
                                         1024 ** 2),
            max_clones_per_part=getattr(args, "max_clones", 1),
        )
    config = ReplicaConfig(slo_seconds=slo, percentile=args.percentile,
                           profile_samples=args.profile_samples,
                           tracing_enabled=tracing, **hedging)
    service = AReplicaService(cloud, config)
    src = cloud.bucket(args.src, "src")
    dst = cloud.bucket(args.dst, "dst")
    rule = service.add_rule(src, dst)
    return cloud, service, src, dst, rule


def cmd_replicate(args) -> int:
    from repro.simcloud.objectstore import Blob

    cloud, service, src, dst, rule = _build_service(args, slo=args.slo)
    before = cloud.ledger.snapshot()
    src.put_object("cli-object", Blob.fresh(args.size), cloud.now)
    cloud.run()
    if not service.records:
        print("replication did not complete", file=sys.stderr)
        return 1
    record = service.records[-1]
    cost = before.delta(cloud.ledger.snapshot())
    print(f"replicated {args.size} bytes {args.src} -> {args.dst}")
    print(f"  delay:       {record.delay:.2f} s")
    print(f"  parallelism: {record.plan_n}")
    print(f"  executed at: {record.loc_key}")
    print(f"  cost:        ${cost.total:.6f}")
    for category, amount in sorted(cost.totals.items()):
        if amount > 0:
            print(f"    {category:<18} ${amount:.6f}")
    return 0


def cmd_plan(args) -> int:
    cloud, service, src, dst, rule = _build_service(args, slo=args.slo)
    size = args.size
    slo_remaining = args.slo if args.slo > 0 else float("-inf")
    plan = (service.planner.generate(size, args.src, args.dst, slo_remaining)
            if args.slo > 0 else service.planner.fastest(size, args.src, args.dst))
    print(f"plan for {size} bytes {args.src} -> {args.dst} "
          f"(SLO={args.slo or 'fastest'}, p{int(args.percentile * 100)}):")
    print(f"  parallelism: {plan.n}")
    print(f"  location:    {plan.loc_key}{' (inline)' if plan.inline else ''}")
    print(f"  predicted:   {plan.predicted_s:.2f} s "
          f"({'compliant' if plan.compliant else 'NOT compliant'})")
    print("\ncandidates:")
    for n in service.config.parallelism_ladder():
        if n > service.planner._max_useful_parallelism(size):
            break
        for loc in (args.src, args.dst):
            path = (loc, args.src, args.dst)
            if not service.model.has_path(path):
                continue
            inline = service.planner._is_inline(n, loc, args.src, size)
            t = service.model.predict_percentile(path, size, n,
                                                 args.percentile, inline=inline)
            print(f"  n={n:<4} loc={loc:<22} predicted={t:8.2f} s")
    return 0


def cmd_profile(args) -> int:
    cloud, service, src, dst, rule = _build_service(args)
    for loc in (args.src, args.dst):
        path = (loc, args.src, args.dst)
        if not service.model.has_path(path):
            continue
        lp = service.model.loc_params[loc]
        pp = service.model.path_params[path]
        print(f"path loc={loc} src={args.src} dst={args.dst}:")
        print(f"  I  (invoke)        {lp.invoke.mean * 1e3:7.1f} ± {lp.invoke.std * 1e3:.1f} ms")
        print(f"  D  (startup)       {lp.startup.mean:7.3f} ± {lp.startup.std:.3f} s")
        print(f"  S  (client ready)  {pp.client_startup.mean:7.3f} ± {pp.client_startup.std:.3f} s")
        print(f"  C  (per chunk)     {pp.chunk.mean:7.3f} ± {pp.chunk.std:.3f} s")
        print(f"  C' (distributed)   {pp.chunk_distributed.mean:7.3f} ± {pp.chunk_distributed.std:.3f} s")
    return 0


def _machine_report(cloud, service, rule, extra=None, scenario=None,
                    seed=None, passed=None) -> dict:
    """The machine-checkable drill report shared by --json commands.

    Drills pass ``scenario``/``seed``/``passed`` so every report shares
    one aggregatable schema — the top-level ``scenario``, ``seed``,
    ``pass``, and ``stats`` keys ``drill-all`` consumes.  Multi-rule
    drills (tenant-drill) pass ``rule=None`` and get engine stats
    summed across every rule in the service.
    """
    if rule is not None:
        engine_stats = dict(rule.engine.stats)
    else:
        engine_stats = {}
        for r in service.rules.values():
            for k, v in r.engine.stats.items():
                engine_stats[k] = engine_stats.get(k, 0) + v
    report = {
        "summary": service.summary(),
        "chaos_stats": cloud.chaos_stats(),
        "health": service.health_snapshot(),
        "engine_stats": engine_stats,
        "parked_backlog": service.backlog_count(),
    }
    if scenario is not None:
        report["scenario"] = scenario
        report["seed"] = seed
        report["pass"] = bool(passed)
        report["stats"] = dict(engine_stats)
    if extra:
        report.update(extra)
    return report


def _print_json(report: dict) -> None:
    import json

    print(json.dumps(report, indent=2, sort_keys=True, default=str))


def cmd_trace(args) -> int:
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    cloud, service, src, dst, rule = _build_service(
        args, slo=args.slo, tracing=args.trace_out is not None)
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    if not args.json:
        print(f"replaying {len(trace)} requests over one hour "
              f"({args.src} -> {args.dst}, SLO={args.slo or 'fastest'}) ...")
    stats = TraceReplayer(cloud, src).replay_all(trace)
    extra = {}
    if args.trace_out is not None:
        service.tracer.export_chrome(args.trace_out)
        extra = {
            "trace_out": args.trace_out,
            "trace_spans": len(service.tracer.spans),
            "trace_events": len(service.tracer.events),
            "delay_breakdown": service.tracer.delay_breakdown(),
        }
    if args.json:
        _print_json(_machine_report(cloud, service, rule, {
            "requests": stats.requests,
            "bytes_written": stats.bytes_written,
            **extra,
        }))
        return 0
    delays = np.asarray(service.delays())
    print(f"  puts={stats.puts} deletes={stats.deletes} "
          f"bytes={stats.bytes_written / 1e9:.2f} GB")
    for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99),
                     ("p99.99", 0.9999)):
        print(f"  {label:<7} replication delay: {np.quantile(delays, q):8.2f} s")
    print(f"  total cost: ${cloud.ledger.total():.4f}")
    if args.trace_out is not None:
        print(f"\nper-phase delay breakdown "
              f"(Chrome trace written to {args.trace_out}):")
        print(service.tracer.render_breakdown())
    return 0


def cmd_audit(args) -> int:
    """Replay a workload, then run the consistency auditor on it."""
    from repro.core.audit import ReplicationAuditor
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    cloud, service, src, dst, rule = _build_service(args, slo=args.slo)
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    stats = TraceReplayer(cloud, src).replay_all(trace)
    report = ReplicationAuditor(service).audit()
    print(f"replayed {stats.requests} requests "
          f"({stats.bytes_written / 1e9:.2f} GB); auditing ...")
    print(report.render())
    summary = service.summary()
    print(f"measured {summary['replicated_events']} events, "
          f"p99 delay {summary['delay_p99_s']:.1f}s, "
          f"total cost ${summary['total_cost_usd']:.4f}")
    return 0 if report.clean else 1


def cmd_chaos_soak(args) -> int:
    """Replay a trace segment under a seeded fault schedule, then let the
    storm pass, drain retries/DLQs and assert full convergence."""
    from repro.core.audit import ReplicationAuditor
    from repro.core.invariants import TraceChecker
    from repro.simcloud.chaos import ChaosConfig
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    chaos = ChaosConfig(
        crash_prob=args.crash_prob,
        notif_drop_prob=args.notif_drop,
        notif_dup_prob=args.notif_dup,
        notif_reorder_prob=args.notif_reorder,
        kv_reject_prob=args.kv_reject,
        kv_delay_prob=args.kv_delay,
        wan_stall_prob=args.wan_stall,
    )
    cloud, service, src, dst, rule = _build_service(args, slo=args.slo,
                                                    tracing=True)
    # Chaos goes live only after onboarding: faults are injected into
    # the running service, not into the offline profiling step.
    cloud.apply_chaos(chaos)
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    if not args.json:
        print(f"soaking {len(trace)} requests under chaos "
              f"(crash={chaos.crash_prob}, drop={chaos.notif_drop_prob}, "
              f"dup={chaos.notif_dup_prob}, "
              f"reorder={chaos.notif_reorder_prob}, "
              f"kv-reject={chaos.kv_reject_prob}, "
              f"kv-delay={chaos.kv_delay_prob}, "
              f"wan-stall={chaos.wan_stall_prob}) ...")
    stats = TraceReplayer(cloud, src).replay_all(trace)
    injected = cloud.chaos_stats()
    # The storm passes; whatever it broke must now self-heal.
    cloud.apply_chaos(None)
    convergence = service.run_to_convergence()
    report = ReplicationAuditor(service).audit(quiescent=True)
    trace_report = TraceChecker(service).check()
    pending = service.pending_count()
    clean = (report.clean and trace_report.clean and pending == 0
             and convergence.converged)

    if args.json:
        _print_json(_machine_report(cloud, service, rule, {
            "requests": stats.requests,
            "convergence": {
                "converged": convergence.converged,
                "rounds": convergence.rounds,
                "redriven": convergence.redriven,
                "residual_dead_letters": convergence.residual_dead_letters,
                "parked_backlog": convergence.parked_backlog,
            },
            "audit_clean": report.clean,
            "trace_clean": trace_report.clean,
            "trace_checked": trace_report.checked,
            "trace_findings": [str(f) for f in trace_report.findings],
            "pending_measurements": pending,
            "result": "CONVERGED" if clean else "DIVERGED",
        }, scenario="chaos-soak", seed=args.seed, passed=clean))
        return 0 if clean else 1

    print(f"replayed {stats.requests} requests "
          f"({stats.bytes_written / 1e9:.2f} GB)")
    print("injected faults:")
    for name, count in injected.items():
        print(f"  {name:<26} {count}")
    engine = rule.engine.stats
    print("engine recovery:")
    for name in ("lock_lost", "orphaned_uploads", "kv_retries",
                 "kv_retry_exhausted", "kv_retry_deadline", "aborted",
                 "retriggered", "parked", "drained"):
        print(f"  {name:<26} {engine[name]}")
    print("dead-letter drain: " + convergence.render())
    print(f"convergence audit ({pending} pending measurement(s)):")
    print(report.render())
    print(trace_report.render())
    print("RESULT: " + ("CONVERGED" if clean else "DIVERGED"))
    return 0 if clean else 1


def cmd_outage_drill(args) -> int:
    """Sustained regional outage drill: every substrate in one region
    goes dark mid-trace.  The drill passes only if the service degrades
    by *parking* work (not dropping it), drains the backlog after
    recovery, and a quiescent audit plus anti-entropy scan find zero
    divergence."""
    from repro.core.audit import ReplicationAuditor
    from repro.core.invariants import TraceChecker
    from repro.core.repair import AntiEntropyScanner
    from repro.simcloud.chaos import ChaosConfig
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    cloud, service, src, dst, rule = _build_service(args, slo=args.slo,
                                                    tracing=True)
    region = args.outage_region or args.src
    window = ((region, args.outage_start, args.outage_duration),)
    # Black out every substrate at once: functions fast-fail, the KV
    # store throttles unconditionally, and WAN legs touching the region
    # stall until the window closes.
    cloud.apply_chaos(ChaosConfig(faas_outages=window, kv_outages=window,
                                  wan_outages=window))
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    if not args.json:
        print(f"drilling {len(trace)} requests with {region} dark from "
              f"t={args.outage_start:.0f}s for {args.outage_duration:.0f}s ...")
    stats = TraceReplayer(cloud, src).replay_all(trace)
    injected = cloud.chaos_stats()
    cloud.apply_chaos(None)
    convergence = service.run_to_convergence()
    audit = ReplicationAuditor(service).audit(quiescent=True)
    repair = AntiEntropyScanner(service).scan(rule, redrive=True)
    if repair.redriven:
        # Repairs flow through the normal orchestration path; let them
        # complete, then prove the diff is gone.
        convergence = service.run_to_convergence()
        audit = ReplicationAuditor(service).audit(quiescent=True)
        repair = AntiEntropyScanner(service).scan(rule, redrive=False)
    pending = service.pending_count()
    trace_report = TraceChecker(service).check()
    engine = rule.engine
    degraded = engine.stats["parked"] > 0
    clean = (degraded and convergence.converged and audit.clean
             and repair.clean and trace_report.clean and pending == 0)

    if args.json:
        _print_json(_machine_report(cloud, service, rule, {
            "requests": stats.requests,
            "outage": {"region": region, "start_s": args.outage_start,
                       "duration_s": args.outage_duration},
            "degradation_engaged": degraded,
            "trace_clean": trace_report.clean,
            "trace_checked": trace_report.checked,
            "trace_findings": [str(f) for f in trace_report.findings],
            "backlog_drained_at_s": engine.backlog_drained_at,
            "health_transitions": len(service.health.transitions)
            if service.health is not None else 0,
            "convergence": {
                "converged": convergence.converged,
                "rounds": convergence.rounds,
                "redriven": convergence.redriven,
                "residual_dead_letters": convergence.residual_dead_letters,
                "parked_backlog": convergence.parked_backlog,
            },
            "audit_clean": audit.clean,
            "repair": repair.to_dict(),
            "pending_measurements": pending,
            "result": "PASS" if clean else "FAIL",
        }, scenario="outage-drill", seed=args.seed, passed=clean))
        return 0 if clean else 1

    print(f"replayed {stats.requests} requests "
          f"({stats.bytes_written / 1e9:.2f} GB)")
    print("injected faults:")
    for name, count in injected.items():
        if count:
            print(f"  {name:<26} {count}")
    print("degraded operation:")
    for name in ("parked", "drained", "probes", "failover",
                 "backlog_kv_failed", "kv_retry_deadline"):
        print(f"  {name:<26} {engine.stats[name]}")
    if service.health is not None:
        print(f"  {'breaker_transitions':<26} "
              f"{len(service.health.transitions)}")
    if engine.backlog_drained_at is not None:
        print(f"  backlog drained at t={engine.backlog_drained_at:.1f}s")
    print("recovery: " + convergence.render())
    print(f"quiescent audit ({pending} pending measurement(s)):")
    print(audit.render())
    print(repair.render())
    print(trace_report.render())
    print("RESULT: " + ("PASS" if clean else "FAIL"))
    if not degraded:
        print("  (outage never engaged the degraded path — lengthen the "
              "window or raise --requests)", file=sys.stderr)
    return 0 if clean else 1


def cmd_corruption_drill(args) -> int:
    """End-to-end data-integrity drill under a silent-corruption storm.

    Replays a workload while the chaos layer flips bits on WAN
    transfers and lies on bucket reads (rot, truncation, wrong ETags),
    lets the storm pass and the service converge, then durably rots a
    few replicated destination objects — the silent bit rot only a
    byte-level deep scrub can see — and proves the scrub detects and
    heals them.  The drill passes only when every injected corruption
    was detected, the trace oracle (including the verified-finalize and
    silent-corruption invariants) is clean, and a quiescent audit finds
    zero divergence: zero silent finalizes, ever.
    """
    from repro.core.audit import ReplicationAuditor
    from repro.core.invariants import TraceChecker
    from repro.core.repair import AntiEntropyScanner
    from repro.simcloud.chaos import ChaosConfig
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    chaos = ChaosConfig(
        corrupt_get_prob=args.corrupt_get,
        corrupt_put_prob=args.corrupt_put,
        corrupt_at_rest_prob=args.at_rest,
        corrupt_truncate_prob=args.truncate,
        corrupt_wrong_etag_prob=args.wrong_etag,
    )
    cloud, service, src, dst, rule = _build_service(args, slo=args.slo,
                                                    tracing=True)
    cloud.apply_chaos(chaos)
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    if not args.json:
        print(f"corrupting {len(trace)} requests "
              f"(get={chaos.corrupt_get_prob}, put={chaos.corrupt_put_prob}, "
              f"at-rest={chaos.corrupt_at_rest_prob}, "
              f"truncate={chaos.corrupt_truncate_prob}, "
              f"wrong-etag={chaos.corrupt_wrong_etag_prob}) ...")
    stats = TraceReplayer(cloud, src).replay_all(trace)
    # The storm passes; quarantined parts and dead-lettered tasks must
    # now heal through the ordinary redrive machinery.
    cloud.apply_chaos(None)
    convergence = service.run_to_convergence()

    # Durable silent rot: the destination's bytes decay *after* a
    # verified finalize, while HEAD keeps reporting the old ETag.  Only
    # the byte-level scrub can see this.
    scanner = AntiEntropyScanner(service)
    rot_keys = [k for k in dst.keys() if dst.head(k).size > 0]
    rot_keys = rot_keys[:args.rot_keys]
    for key in rot_keys:
        dst.rot_object(key)
    scrub = scanner.scan(rule, redrive=True, scrub=True)
    if scrub.redriven:
        convergence = service.run_to_convergence()
    rescrub = scanner.scan(rule, redrive=False, scrub=True)

    audit = ReplicationAuditor(service).audit(quiescent=True)
    trace_report = TraceChecker(service).check()
    integrity = service.integrity_snapshot()
    trace_integrity = service.tracer.integrity_summary()
    pending = service.pending_count()

    # Reconcile offense and defense: every fault the chaos layer
    # injected (including the deterministic rot) must have been caught
    # by a verifying reader — the engine per part, the scrub per
    # object.  A shortfall means a corruption slipped through unseen.
    injected = integrity["injected"]
    detected = (integrity["corrupt_detected"]
                + len(scrub.by_kind("corrupt")) + scrub.transient_anomalies)
    accounted = detected >= injected
    clean = (accounted and convergence.converged and audit.clean
             and rescrub.clean and trace_report.clean and pending == 0
             and len(scrub.by_kind("corrupt")) == len(rot_keys))

    if args.json:
        _print_json(_machine_report(cloud, service, rule, {
            "requests": stats.requests,
            "injected_corruptions": injected,
            "detected_corruptions": detected,
            "accounted": accounted,
            "integrity": integrity,
            "trace_integrity": trace_integrity,
            "rotted_keys": rot_keys,
            "scrub": scrub.to_dict(),
            "rescrub_clean": rescrub.clean,
            "convergence": {
                "converged": convergence.converged,
                "rounds": convergence.rounds,
                "redriven": convergence.redriven,
                "residual_dead_letters": convergence.residual_dead_letters,
                "parked_backlog": convergence.parked_backlog,
            },
            "audit_clean": audit.clean,
            "trace_clean": trace_report.clean,
            "trace_checked": trace_report.checked,
            "trace_findings": [str(f) for f in trace_report.findings],
            "pending_measurements": pending,
            "result": "PASS" if clean else "FAIL",
        }, scenario="corruption-drill", seed=args.seed, passed=clean))
        return 0 if clean else 1

    print(f"replayed {stats.requests} requests "
          f"({stats.bytes_written / 1e9:.2f} GB)")
    print("injected corruption:")
    for name, count in cloud.chaos_stats().items():
        if name.startswith("corrupt") and count:
            print(f"  {name:<26} {count}")
    print("defense response:")
    for name, count in integrity.items():
        print(f"  {name:<26} {count}")
    print(f"  {'detected_total':<26} {detected} "
          f"({'accounted' if accounted else 'SHORTFALL'})")
    print("dead-letter drain: " + convergence.render())
    print(f"deep scrub ({len(rot_keys)} key(s) durably rotted):")
    print(scrub.render())
    print(rescrub.render())
    print(f"quiescent audit ({pending} pending measurement(s)):")
    print(audit.render())
    print(trace_report.render())
    print("RESULT: " + ("PASS" if clean else "FAIL"))
    return 0 if clean else 1


def cmd_hedge_drill(args) -> int:
    """Speculative-hedging drill: tail-latency cloning under chaos.

    Replays a busy-hour segment with hedging enabled and a
    straggler-friendly fault mix (crashes plus WAN stalls), lets the
    storm pass and the service converge, then proves the hedge
    discipline held end to end: at least one hedge actually fired (the
    drill must exercise the machinery, not vacuously pass), every
    fired hedge resolved exactly once as won/lost/cancelled, no part
    was double-finalized, the cloning ledger line reconciles, and the
    quiescent audit plus trace oracle are clean.
    """
    from repro.core.audit import ReplicationAuditor
    from repro.core.invariants import TraceChecker
    from repro.simcloud.chaos import ChaosConfig
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    args.hedging = True
    chaos = ChaosConfig(crash_prob=args.crash_prob,
                        wan_stall_prob=args.wan_stall)
    cloud, service, src, dst, rule = _build_service(args, slo=args.slo,
                                                    tracing=True)
    cloud.apply_chaos(chaos)
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    if not args.json:
        print(f"hedge-drilling {len(trace)} requests "
              f"(q={args.hedge_quantile}, min-samples={args.hedge_min_samples}, "
              f"min-part={args.hedge_min_part_bytes}B, "
              f"clones<={args.max_clones}, crash={chaos.crash_prob}, "
              f"wan-stall={chaos.wan_stall_prob}) ...")
    stats = TraceReplayer(cloud, src).replay_all(trace)
    cloud.apply_chaos(None)
    convergence = service.run_to_convergence()
    audit = ReplicationAuditor(service).audit(quiescent=True)
    trace_report = TraceChecker(service).check()
    pending = service.pending_count()
    engine = rule.engine.stats
    resolved = (engine["hedge_wins"] + engine["hedge_losses"]
                + engine["hedge_cancelled"])
    hedge_cost = sum(c.amount for c in service.tracer.costs
                     if c.category == "hedge_clones")
    clean = (engine["hedges"] > 0 and resolved == engine["hedges"]
             and audit.clean and trace_report.clean
             and convergence.converged and pending == 0)

    if args.json:
        _print_json(_machine_report(cloud, service, rule, {
            "requests": stats.requests,
            "hedging": {
                "hedges": engine["hedges"],
                "hedge_wins": engine["hedge_wins"],
                "hedge_losses": engine["hedge_losses"],
                "hedge_cancelled": engine["hedge_cancelled"],
                "resolved": resolved,
                "clone_cost_usd": hedge_cost,
                "deadline_quantile": args.hedge_quantile,
                "max_clones_per_part": args.max_clones,
            },
            "convergence": {
                "converged": convergence.converged,
                "rounds": convergence.rounds,
                "redriven": convergence.redriven,
                "residual_dead_letters": convergence.residual_dead_letters,
                "parked_backlog": convergence.parked_backlog,
            },
            "audit_clean": audit.clean,
            "trace_clean": trace_report.clean,
            "trace_checked": trace_report.checked,
            "trace_findings": [str(f) for f in trace_report.findings],
            "pending_measurements": pending,
            "result": "PASS" if clean else "FAIL",
        }, scenario="hedge-drill", seed=args.seed, passed=clean))
        return 0 if clean else 1

    print(f"replayed {stats.requests} requests "
          f"({stats.bytes_written / 1e9:.2f} GB)")
    print("hedging:")
    for name in ("hedges", "hedge_wins", "hedge_losses", "hedge_cancelled"):
        print(f"  {name:<26} {engine[name]}")
    print(f"  {'clone_cost_usd':<26} {hedge_cost:.6f}")
    print("dead-letter drain: " + convergence.render())
    print(f"quiescent audit ({pending} pending measurement(s)):")
    print(audit.render())
    print(trace_report.render())
    print("RESULT: " + ("PASS" if clean else "FAIL"))
    if engine["hedges"] == 0:
        print("  (no hedge ever fired — lower --hedge-quantile / "
              "--hedge-min-samples or raise --requests)", file=sys.stderr)
    return 0 if clean else 1


def cmd_lifecycle_drill(args) -> int:
    """Planned-operations drill: run one lifecycle procedure mid-trace.

    Schedules a region evacuation, rolling engine restart, or planned
    orchestration switchover against a live loaded engine (optionally
    concurrent with a chaos storm and with hedging on), lets the run
    converge, then proves via the trace oracle — including the new
    switchover-discipline and cordon invariants — plus a quiescent
    audit and a byte-level deep scrub that no object was lost,
    duplicated, or left divergent, and that the procedure actually
    engaged (cordons applied, checkpoint written, or switchover
    performed) within its drain deadline.
    """
    from repro.core.audit import ReplicationAuditor
    from repro.core.invariants import TraceChecker
    from repro.core.lifecycle import OperationsRunner
    from repro.core.repair import AntiEntropyScanner
    from repro.simcloud.chaos import ChaosConfig
    from repro.traces.ibm_cos import IbmCosTraceGenerator
    from repro.traces.replay import TraceReplayer

    cloud, service, src, dst, rule = _build_service(args, slo=args.slo,
                                                    tracing=True)
    if args.chaos:
        cloud.apply_chaos(ChaosConfig(
            crash_prob=0.02, notif_drop_prob=0.02, notif_dup_prob=0.02,
            kv_reject_prob=0.02, kv_delay_prob=0.02, wan_stall_prob=0.01))
    runner = OperationsRunner(service, rule.rule_id,
                              drain_deadline_s=args.drain_deadline)
    runner.schedule(args.scenario, args.at)
    trace = IbmCosTraceGenerator(seed=args.seed).busy_hour(
        total_requests=args.requests)
    if not args.json:
        print(f"lifecycle drill '{args.scenario}' at t={args.at:.0f}s over "
              f"{len(trace)} requests (chaos={'on' if args.chaos else 'off'}, "
              f"hedging={'on' if getattr(args, 'hedging', False) else 'off'}, "
              f"drain deadline "
              f"{runner.drain_deadline_s:.0f}s) ...")
    stats = TraceReplayer(cloud, src).replay_all(trace)
    cloud.apply_chaos(None)
    convergence = service.run_to_convergence()
    audit = ReplicationAuditor(service).audit(quiescent=True)
    scanner = AntiEntropyScanner(service)
    repair = scanner.scan(rule, redrive=True, scrub=True, reap_uploads=True)
    if repair.redriven:
        convergence = service.run_to_convergence()
        audit = ReplicationAuditor(service).audit(quiescent=True)
        repair = scanner.scan(rule, redrive=False, scrub=True)
    trace_report = TraceChecker(service).check()
    pending = service.pending_count()
    engine = rule.engine.stats
    executed = len(runner.reports) == 1
    proc = runner.reports[0] if runner.reports else None
    # Per-scenario engagement: the drill must exercise the procedure,
    # not vacuously pass on a schedule that never fired.
    if args.scenario == "evacuate":
        engaged = (executed and engine["cordons"] >= 3 and proc.deadline_met
                   and (proc.migrated > 0 or engine["parked"] > 0))
    elif args.scenario == "rolling":
        engaged = executed and engine["checkpoints"] >= 1
    else:
        engaged = (executed and engine["switchovers"] >= 1
                   and proc.deadline_met and proc.migrated > 0)
    clean = (engaged and convergence.converged and audit.clean
             and repair.clean and trace_report.clean and pending == 0)

    if args.json:
        _print_json(_machine_report(cloud, service, rule, {
            "requests": stats.requests,
            "lifecycle": [r.to_dict() for r in runner.reports],
            "engaged": engaged,
            "chaos": bool(args.chaos),
            "convergence": {
                "converged": convergence.converged,
                "rounds": convergence.rounds,
                "redriven": convergence.redriven,
                "residual_dead_letters": convergence.residual_dead_letters,
                "parked_backlog": convergence.parked_backlog,
                "backlog_peak": convergence.backlog_peak,
                "drained": convergence.drained,
            },
            "audit_clean": audit.clean,
            "repair": repair.to_dict(),
            "trace_clean": trace_report.clean,
            "trace_checked": trace_report.checked,
            "trace_findings": [str(f) for f in trace_report.findings],
            "pending_measurements": pending,
            "result": "PASS" if clean else "FAIL",
        }, scenario=f"lifecycle-{args.scenario}", seed=args.seed,
            passed=clean))
        return 0 if clean else 1

    print(f"replayed {stats.requests} requests "
          f"({stats.bytes_written / 1e9:.2f} GB)")
    print("lifecycle:")
    for r in runner.reports:
        d = r.to_dict()
        print(f"  {d['scenario']} at {d['region']} "
              f"t=[{d['started_at']:.1f}, {d['finished_at']:.1f}]s: "
              f"inflight={d['inflight_before']} drained={d['drained']} "
              f"migrated={d['migrated']} "
              f"deadline={'met' if d['deadline_met'] else 'MISSED'} "
              f"restored={d['restored']} remirrored={d['remirrored']}")
    for name in ("cordons", "drained_parts", "migrated_tasks",
                 "checkpoints", "switchovers", "parked", "drained"):
        print(f"  {name:<26} {engine[name]}")
    print("recovery: " + convergence.render())
    print(f"quiescent audit ({pending} pending measurement(s)):")
    print(audit.render())
    print(repair.render())
    print(trace_report.render())
    print("RESULT: " + ("PASS" if clean else "FAIL"))
    if not engaged:
        print("  (the procedure never engaged — move --at inside the "
              "trace or raise --requests)", file=sys.stderr)
    return 0 if clean else 1


def cmd_tenant_drill(args) -> int:
    """Multi-tenant control-plane drill: thousands of tenants, sharded.

    Registers ``--tenants`` tenants (each with its own src/dst bucket
    pair, fair-share weight, and — for the hot head of the skew — a
    hard per-window spend budget), shards the key-space across
    ``--shards`` engine workers, replays a seeded Zipf-skewed workload,
    and verifies the isolation story end to end: every tenant
    converges, the quiescent audit and byte-level deep scrub are clean,
    the trace oracle (including the tenant-isolation invariant) reports
    zero findings, no over-budget tenant shows post-exhaustion spend,
    and both the budget machinery (deferrals) and the fair-share
    scheduler (waits) actually engaged rather than vacuously passing.
    """
    from repro.core.audit import ReplicationAuditor
    from repro.core.config import ReplicaConfig, TenantConfig
    from repro.core.invariants import TraceChecker
    from repro.core.repair import AntiEntropyScanner
    from repro.core.service import AReplicaService
    from repro.simcloud.cloud import build_default_cloud
    from repro.simcloud.cost import estimate_task_cost
    from repro.simcloud.objectstore import Blob

    cloud = build_default_cloud(seed=args.seed)
    config = ReplicaConfig(profile_samples=args.profile_samples,
                           tracing_enabled=True)
    service = AReplicaService(cloud, config)
    service.enable_multitenancy(shards=args.shards,
                                max_concurrent=args.max_concurrent)

    # One offline profiling pass covers every tenant: the performance
    # model is keyed by region path, and all tenants ride one pair.
    probe_src = cloud.bucket(args.src, "profile-probe-src")
    probe_dst = cloud.bucket(args.dst, "profile-probe-dst")
    service.profiler.ensure_path(args.src, probe_src, probe_dst)
    if args.dst != args.src:
        service.profiler.ensure_path(args.dst, probe_src, probe_dst)

    size = args.object_size
    # The Zipf head's per-window arrival rate exceeds the budget, so the
    # hot tenants exhaust and defer; the budget still clears the
    # steady-state drain, so the lane empties within a few windows after
    # the horizon.  Budgeted tenants trade latency for spend — their SLO
    # covers that drain; everyone else keeps the tight default.
    task_cost = estimate_task_cost(cloud.prices, probe_src.region,
                                   probe_dst.region, size)
    budget = args.budget_tasks * task_cost
    budgeted_slo = args.horizon + 12 * args.budget_window
    states = []
    for i in range(args.tenants):
        tid = f"t{i:05d}"
        src = cloud.bucket(args.src, f"{tid}-src")
        dst = cloud.bucket(args.dst, f"{tid}-dst")
        budgeted = i < args.budgeted_tenants
        tc = TenantConfig(
            tenant_id=tid,
            buckets=(src.name, dst.name),
            slo_target_s=budgeted_slo if budgeted else args.tenant_slo,
            budget_usd=budget if budgeted else None,
            budget_window_s=args.budget_window,
            weight=1.0 + (i % 4),
        )
        states.append(service.add_tenant(tc, src, dst))

    # Seeded skewed workload: a warm-up burst of one PUT per tenant (so
    # every tenant has work to converge, and the burst outruns the
    # dispatch gate — that is what makes the fair-share ring queue),
    # then Zipf-ranked traffic pointed at the head — the hot tenants
    # that hold the tight budgets.
    rng = cloud.rngs.stream("tenant-drill")
    horizon = args.horizon
    keyspace = 8
    puts = []
    for i, state in enumerate(states):
        t = (i / max(1, len(states))) * min(10.0, horizon / 16)
        puts.append((t, state, f"obj-{i % keyspace}"))
    ranks = rng.zipf(1.3, size=max(0, args.requests - len(states)))
    for j, rank in enumerate(ranks):
        state = states[int(rank - 1) % len(states)]
        t = float(rng.random()) * horizon
        puts.append((t, state, f"obj-{int(rng.integers(keyspace))}"))
    base = cloud.sim.now   # offline profiling consumed simulated time
    for t, state, key in puts:
        cloud.sim.call_at(
            base + t, lambda b=state.src_bucket, k=key: b.put_object(
                k, Blob.fresh(size), cloud.sim.now))

    if not args.json:
        print(f"tenant drill: {args.tenants} tenants on {args.shards} "
              f"shard(s), {len(puts)} PUTs over {horizon:.0f}s, "
              f"{args.budgeted_tenants} budgeted at "
              f"${budget:.6f}/{args.budget_window:.0f}s ...")

    convergence = service.run_to_convergence()
    audit = ReplicationAuditor(service).audit(quiescent=True)
    repair = AntiEntropyScanner(service).scan(redrive=True, scrub=True,
                                              reap_uploads=True)
    if repair.redriven:
        convergence = service.run_to_convergence()
        audit = ReplicationAuditor(service).audit(quiescent=True)
        repair = AntiEntropyScanner(service).scan(redrive=False, scrub=True)
    trace_report = TraceChecker(service).check()
    isolation_findings = trace_report.by_kind("tenant-isolation")

    tenants = service.tenant_summary()
    unconverged = sorted(t for t, row in tenants.items()
                         if not row["converged"])
    slo_misses = sorted(t for t, row in tenants.items() if not row["slo_ok"])
    over_admitted = sorted(t for t, row in tenants.items()
                           if row["over_admissions"] > 0)
    total_deferred = sum(row["deferred"] for row in tenants.values())
    total_waits = sum(row["fairshare_waits"] for row in tenants.values())
    engaged = total_deferred > 0 and total_waits > 0
    clean = (convergence.converged and audit.clean and repair.clean
             and trace_report.clean and not isolation_findings
             and not unconverged and not slo_misses and not over_admitted
             and len(tenants) == args.tenants and engaged
             and service.pending_count() == 0)

    if args.json:
        _print_json(_machine_report(cloud, service, None, {
            "tenants": len(tenants),
            "shards": args.shards,
            "requests": len(puts),
            "convergence": {
                "converged": convergence.converged,
                "rounds": convergence.rounds,
                "redriven": convergence.redriven,
                "residual_dead_letters": convergence.residual_dead_letters,
                "parked_backlog": convergence.parked_backlog,
                "deferred_tenant_tasks": convergence.deferred_tenant_tasks,
            },
            "audit_clean": audit.clean,
            "repair": repair.to_dict(),
            "trace_clean": trace_report.clean,
            "trace_checked": trace_report.checked,
            "trace_findings": [str(f) for f in trace_report.findings],
            "isolation_findings": len(isolation_findings),
            "unconverged_tenants": unconverged,
            "slo_miss_tenants": slo_misses,
            "over_admitted_tenants": over_admitted,
            "total_deferred": total_deferred,
            "total_fairshare_waits": total_waits,
            "engaged": engaged,
            "tenant_verdicts": tenants,
            "result": "PASS" if clean else "FAIL",
        }, scenario="tenant-drill", seed=args.seed, passed=clean))
        return 0 if clean else 1

    busiest = sorted(tenants.items(), key=lambda kv: -kv[1]["events"])[:10]
    print(f"{'tenant':<8} {'events':>7} {'admit':>6} {'defer':>6} "
          f"{'reject':>7} {'waits':>6} {'spent_usd':>12} {'p99_s':>8} "
          f"{'ok':>3}")
    for tid, row in busiest:
        ok = row["converged"] and row["slo_ok"] and not row["over_admissions"]
        print(f"{tid:<8} {row['events']:>7} {row['admitted']:>6} "
              f"{row['deferred']:>6} {row['rejected']:>7} "
              f"{row['fairshare_waits']:>6} "
              f"{row['lifetime_spent_usd']:>12.6f} "
              f"{row['delay_p99_s']:>8.1f} {'ok' if ok else 'NO':>3}")
    print(f"converged {len(tenants) - len(unconverged)}/{len(tenants)} "
          f"tenant(s); {total_deferred} deferral(s), {total_waits} "
          f"fair-share wait(s)")
    print("recovery: " + convergence.render())
    print(audit.render())
    print(repair.render())
    print(trace_report.render())
    if unconverged:
        print(f"  unconverged: {', '.join(unconverged[:10])} ...")
    if slo_misses:
        print(f"  SLO misses: {', '.join(slo_misses[:10])} ...")
    if over_admitted:
        print(f"  over-admitted: {', '.join(over_admitted[:10])} ...")
    print("RESULT: " + ("PASS" if clean else "FAIL"))
    return 0 if clean else 1


def cmd_autopilot_drill(args) -> int:
    """Closed-loop autopilot drill: surge + brownout, bounded recovery.

    Runs a small multi-tenant service with the SLO autopilot armed,
    replays a steady baseline workload, then injects two disturbances —
    a mid-run load surge (a burst far above the dispatch gate's drain
    rate) and, later, a WAN brownout of the destination region — and
    verifies the controller end to end: it *engages* on each
    disturbance (≥1 actuation inside each accounting window), every
    disturbance episode *settles* (windowed per-tenant p99 back under
    ``slo_target_s``) within the bound, spend stays inside every
    tenant's budget, and convergence + quiescent audit + deep scrub +
    the trace oracle (including the autopilot-discipline invariants:
    bounds, cooldowns, cordon holds) are all clean.
    """
    from repro.core.audit import ReplicationAuditor
    from repro.core.config import ReplicaConfig, TenantConfig
    from repro.core.invariants import TraceChecker
    from repro.core.repair import AntiEntropyScanner
    from repro.core.service import AReplicaService
    from repro.simcloud.chaos import ChaosConfig
    from repro.simcloud.cloud import build_default_cloud
    from repro.simcloud.cost import estimate_task_cost
    from repro.simcloud.objectstore import Blob

    cloud = build_default_cloud(seed=args.seed)
    hedging = {}
    if getattr(args, "hedging", False):
        hedging = dict(
            hedging_enabled=True,
            hedge_deadline_quantile=args.hedge_quantile,
            hedge_min_samples=args.hedge_min_samples,
            hedge_min_part_bytes=args.hedge_min_part_bytes,
            max_clones_per_part=args.max_clones,
        )
    config = ReplicaConfig(
        profile_samples=args.profile_samples,
        tracing_enabled=True,
        enable_autopilot=True,
        autopilot_interval_s=args.autopilot_interval,
        autopilot_window_s=args.autopilot_window,
        autopilot_cooldown_s=args.cooldown,
        autopilot_settle_s=args.settle_bound,
        **hedging)
    service = AReplicaService(cloud, config)
    service.enable_multitenancy(shards=args.shards,
                                max_concurrent=args.max_concurrent)

    probe_src = cloud.bucket(args.src, "profile-probe-src")
    probe_dst = cloud.bucket(args.dst, "profile-probe-dst")
    service.profiler.ensure_path(args.src, probe_src, probe_dst)
    if args.dst != args.src:
        service.profiler.ensure_path(args.dst, probe_src, probe_dst)

    size = args.object_size
    # Budgets are generous — this drill tests latency control, not
    # admission control — but real: the burn-rate signal stays live and
    # gate (c) still demands zero over-admissions and in-window spend.
    task_cost = estimate_task_cost(cloud.prices, probe_src.region,
                                   probe_dst.region, size)
    budget = args.budget_tasks * task_cost
    states = []
    for i in range(args.tenants):
        tid = f"ap{i:03d}"
        src = cloud.bucket(args.src, f"{tid}-src")
        dst = cloud.bucket(args.dst, f"{tid}-dst")
        tc = TenantConfig(
            tenant_id=tid,
            buckets=(src.name, dst.name),
            slo_target_s=args.tenant_slo,
            budget_usd=budget,
            budget_window_s=args.budget_window,
        )
        states.append(service.add_tenant(tc, src, dst))

    # Disturbance two: a WAN brownout of the destination region.  WAN
    # legs touching the region stall until the window closes — unlike a
    # FaaS outage there is no degraded route around it, so the tail
    # inflates and the controller must react.  Scheduled up front
    # (absolute windows), like outage-drill.
    horizon = args.horizon
    base = cloud.sim.now   # offline profiling consumed simulated time
    brownout = (args.dst, base + args.brownout_at, args.brownout_duration)
    storm = {}
    if args.chaos:
        storm = dict(crash_prob=0.02, notif_drop_prob=0.02,
                     notif_dup_prob=0.02, kv_reject_prob=0.02,
                     kv_delay_prob=0.02, wan_stall_prob=0.01)
    cloud.apply_chaos(ChaosConfig(wan_outages=(brownout,), **storm))

    # Steady baseline keeps every tenant's p99 window warm for the whole
    # run; disturbance one is a surge burst far above the dispatch
    # gate's drain rate, queueing work and blowing the windowed p99
    # through the target.
    rng = cloud.rngs.stream("autopilot-drill")
    puts = []
    for j in range(args.requests):
        state = states[j % len(states)]
        t = float(rng.random()) * horizon
        puts.append((t, state, f"obj-{j % 8}"))
    for j in range(args.surge_requests):
        state = states[int(rng.integers(len(states)))]
        t = args.surge_at + float(rng.random()) * args.surge_duration
        puts.append((t, state, f"surge-{j % 8}"))
    for t, state, key in puts:
        cloud.sim.call_at(
            base + t, lambda b=state.src_bucket, k=key: b.put_object(
                k, Blob.fresh(size), cloud.sim.now))

    # Arm the controller past the horizon so the post-brownout episode
    # can close (the p99 window must age the inflated samples out).
    service.autopilot.start(horizon + 2 * args.settle_bound)

    if not args.json:
        print(f"autopilot drill: {args.tenants} tenants on {args.shards} "
              f"shard(s), {len(puts)} PUTs over {horizon:.0f}s; surge at "
              f"t={args.surge_at:.0f}s (+{args.surge_requests}), brownout "
              f"of {args.dst} at t={args.brownout_at:.0f}s "
              f"({args.brownout_duration:.0f}s, "
              f"chaos={'on' if args.chaos else 'off'}) ...")

    convergence = service.run_to_convergence()
    cloud.apply_chaos(None)
    autopilot = service.autopilot
    autopilot.stop()
    audit = ReplicationAuditor(service).audit(quiescent=True)
    repair = AntiEntropyScanner(service).scan(redrive=True, scrub=True,
                                              reap_uploads=True)
    if repair.redriven:
        convergence = service.run_to_convergence()
        audit = ReplicationAuditor(service).audit(quiescent=True)
        repair = AntiEntropyScanner(service).scan(redrive=False, scrub=True)
    trace_report = TraceChecker(service).check()

    # Gate (a): the controller engaged on each disturbance — at least
    # one actuation inside each disturbance's accounting window
    # [start, start + settle bound].
    def engaged_in(start: float) -> int:
        lo, hi = base + start, base + start + args.settle_bound
        return sum(1 for a in autopilot.controller.changelog
                   if lo <= a.time <= hi)
    surge_actuations = engaged_in(args.surge_at)
    brownout_actuations = engaged_in(args.brownout_at)

    # Gate (b): every disturbance episode closed (windowed p99 back
    # under target) within the settle bound.
    settles = list(autopilot.stats["settle_time_s"])
    open_episodes = sum(1 for s, e in autopilot.episodes if e is None)
    settled = (not open_episodes
               and all(s <= args.settle_bound for s in settles))

    # Gate (c): spend stayed inside every tenant budget.
    tenants = service.tenant_summary()
    over_admitted = sorted(t for t, row in tenants.items()
                           if row["over_admissions"] > 0)
    over_budget = sorted(
        t for t, row in tenants.items()
        if row["budget_usd"] is not None
        and row["window_spent_usd"] > row["budget_usd"])
    unconverged = sorted(t for t, row in tenants.items()
                         if not row["converged"])

    clean = (convergence.converged and audit.clean and repair.clean
             and trace_report.clean and not unconverged
             and surge_actuations > 0 and brownout_actuations > 0
             and settled and len(autopilot.episodes) >= 2
             and not over_admitted and not over_budget
             and service.pending_count() == 0)

    extra = {
        "tenants": len(tenants),
        "requests": len(puts),
        "chaos": bool(args.chaos),
        "autopilot": autopilot.snapshot(),
        "surge_actuations": surge_actuations,
        "brownout_actuations": brownout_actuations,
        "episodes": len(autopilot.episodes),
        "open_episodes": open_episodes,
        "settle_times_s": settles,
        "settle_bound_s": args.settle_bound,
        "convergence": {
            "converged": convergence.converged,
            "rounds": convergence.rounds,
            "redriven": convergence.redriven,
            "residual_dead_letters": convergence.residual_dead_letters,
            "parked_backlog": convergence.parked_backlog,
            "deferred_tenant_tasks": convergence.deferred_tenant_tasks,
        },
        "audit_clean": audit.clean,
        "repair": repair.to_dict(),
        "trace_clean": trace_report.clean,
        "trace_checked": trace_report.checked,
        "trace_findings": [str(f) for f in trace_report.findings],
        "unconverged_tenants": unconverged,
        "over_admitted_tenants": over_admitted,
        "over_budget_tenants": over_budget,
        "tenant_verdicts": tenants,
        "result": "PASS" if clean else "FAIL",
    }
    if args.json:
        _print_json(_machine_report(cloud, service, None, extra,
                                    scenario="autopilot-drill",
                                    seed=args.seed, passed=clean))
        return 0 if clean else 1

    ap_stats = autopilot.stats
    print(f"actuations={ap_stats['actuations']} clamps={ap_stats['clamps']} "
          f"cooldown_skips={ap_stats['cooldown_skips']} "
          f"cordon_holds={ap_stats['cordon_holds']}")
    print(f"engagement: surge={surge_actuations} "
          f"brownout={brownout_actuations}; episodes="
          f"{len(autopilot.episodes)} ({open_episodes} open), settles="
          f"{['%.0fs' % s for s in settles]} (bound "
          f"{args.settle_bound:.0f}s)")
    for a in autopilot.controller.changelog:
        print(f"  {a}")
    print("recovery: " + convergence.render())
    print(audit.render())
    print(repair.render())
    print(trace_report.render())
    print("RESULT: " + ("PASS" if clean else "FAIL"))
    return 0 if clean else 1


def cmd_drill_all(args) -> int:
    """Run every drill at one seed and fail on any non-PASS.

    Each drill runs in its own freshly-seeded simulation with its
    default knobs and ``--json`` output captured; the shared report
    schema (scenario, seed, pass, stats) lets this aggregator treat
    chaos, outage, corruption, hedging, and the three lifecycle drills
    uniformly.  This is the standing regression harness for every
    recovery path the repo has accumulated.
    """
    import contextlib
    import io
    import json

    drills = [
        ("chaos-soak", cmd_chaos_soak, ["chaos-soak"]),
        ("outage-drill", cmd_outage_drill, ["outage-drill"]),
        ("corruption-drill", cmd_corruption_drill, ["corruption-drill"]),
        ("hedge-drill", cmd_hedge_drill, ["hedge-drill"]),
        ("lifecycle-evacuate", cmd_lifecycle_drill,
         ["lifecycle-drill", "--scenario", "evacuate"]),
        ("lifecycle-rolling", cmd_lifecycle_drill,
         ["lifecycle-drill", "--scenario", "rolling"]),
        ("lifecycle-switchover", cmd_lifecycle_drill,
         ["lifecycle-drill", "--scenario", "switchover"]),
        ("tenant-drill", cmd_tenant_drill, ["tenant-drill"]),
        ("autopilot-drill", cmd_autopilot_drill, ["autopilot-drill"]),
    ]
    parser = build_parser()
    rows = []
    reports = []
    all_pass = True
    for name, handler, argv in drills:
        if not args.json:
            print(f"drill-all: running {name} (seed {args.seed}) ...",
                  file=sys.stderr)
        sub_args = parser.parse_args(
            argv + ["--seed", str(args.seed), "--json"])
        buf = io.StringIO()
        # A drill that crashes, or that emits an unparseable report, is
        # a FAIL for that scenario — never a pass by omission, and never
        # a traceback that aborts the remaining drills (the aggregate
        # exit code must reflect *every* scenario's verdict).
        try:
            with contextlib.redirect_stdout(buf):
                code = handler(sub_args)
            report = json.loads(buf.getvalue())
        except Exception as exc:  # noqa: BLE001 - drill isolation barrier
            print(f"drill-all: {name} raised "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            report = {"scenario": name, "seed": args.seed, "pass": False,
                      "error": f"{type(exc).__name__}: {exc}"}
            code = 1
        passed = code == 0 and report.get("pass", False)
        all_pass = all_pass and passed
        rows.append((report.get("scenario", name),
                     report.get("seed", args.seed), passed))
        reports.append(report)
    if args.json:
        _print_json({
            "seed": args.seed,
            "pass": all_pass,
            "drills": [{"scenario": s, "seed": sd, "pass": p}
                       for s, sd, p in rows],
            "reports": reports,
        })
        return 0 if all_pass else 1
    print(f"{'scenario':<24} {'seed':>5} {'result':>8}")
    for scenario, seed, passed in rows:
        print(f"{scenario:<24} {seed:>5} "
              f"{'PASS' if passed else 'FAIL':>8}")
    print("RESULT: " + ("PASS" if all_pass else "FAIL"))
    return 0 if all_pass else 1


def cmd_regions(args) -> int:
    """List the region catalog and the egress price matrix."""
    from repro.simcloud.pricing import PriceBook
    from repro.simcloud.regions import REGIONS, get_region

    prices = PriceBook()
    keys = sorted(REGIONS)
    print(f"{len(keys)} regions:")
    for key in keys:
        r = get_region(key)
        print(f"  {key:<24} ({r.continent.upper()}, "
              f"{r.lat:.1f}, {r.lon:.1f})")
    if not args.egress:
        return 0
    print("\negress $/GB (row = source, col = destination):")
    short = [k.split(":", 1)[1][:12] for k in keys]
    print(f"{'':<24}" + "".join(f"{s:>13}" for s in short))
    for src_key in keys:
        row = f"{src_key:<24}"
        for dst_key in keys:
            rate = prices.egress_per_gb(get_region(src_key),
                                        get_region(dst_key))
            row += f"{rate:>13.3f}"
        print(row)
    return 0


def cmd_cost(args) -> int:
    """Analytic monthly cost projection for a synthetic workload."""
    from repro.analysis.costs import ReplicationCostModel
    from repro.traces.ibm_cos import IbmCosTraceGenerator

    gen = IbmCosTraceGenerator(seed=args.seed,
                               mean_rps=args.requests_per_day / 86_400.0)
    trace = gen.generate(86_400.0)
    sizes = [r.size for r in trace if r.op == "PUT"]
    model = ReplicationCostModel()
    src_provider = args.src.split(":")[0] if ":" in args.src else ""
    dst_provider = args.dst.split(":")[0] if ":" in args.dst else ""
    systems = ["areplica", "skyplane"]
    if src_provider == dst_provider == "aws":
        systems.append("s3rtc")
    elif src_provider == dst_provider == "azure":
        systems.append("azrep")
    print(f"projected 30-day replication cost, {args.src} -> {args.dst}")
    print(f"  workload: ~{len(sizes)} PUTs/day, "
          f"{sum(sizes) / 1e9:.2f} GB/day")
    print(f"  {'system':<10} {'egress':>9} {'compute':>9} {'other':>9} "
          f"{'total':>10}")
    for system in systems:
        est = model.workload_monthly(args.src, args.dst, sizes, system,
                                     days_observed=1.0)
        other = est.requests + est.kv + est.service_fee + est.storage
        print(f"  {system:<10} {est.egress:>9.2f} {est.compute:>9.2f} "
              f"{other:>9.2f} {est.total:>10.2f}")
    return 0


def cmd_compare(args) -> int:
    from repro.baselines.skyplane import SkyplaneReplicator
    from repro.baselines.s3rtc import S3RTCReplicator
    from repro.baselines.azrep import AzureObjectReplicator
    from repro.simcloud.cloud import build_default_cloud
    from repro.simcloud.objectstore import Blob

    cloud, service, src, dst, rule = _build_service(args)
    before = cloud.ledger.snapshot()
    src.put_object("cmp", Blob.fresh(args.size), cloud.now)
    cloud.run()
    ours = service.records[-1]
    our_cost = before.delta(cloud.ledger.snapshot()).total
    rows = [("AReplica", ours.delay, our_cost)]

    sky_cloud = build_default_cloud(seed=args.seed)
    sky_src = sky_cloud.bucket(args.src, "src")
    sky_dst = sky_cloud.bucket(args.dst, "dst")
    sky = SkyplaneReplicator(sky_cloud, sky_src, sky_dst)
    sky_src.put_object("cmp", Blob.fresh(args.size), sky_cloud.now, notify=False)
    sky_before = sky_cloud.ledger.snapshot()
    record = sky.replicate_once("cmp")
    rows.append(("Skyplane", record.delay,
                 sky_before.delta(sky_cloud.ledger.snapshot()).total))

    src_provider = args.src.split(":")[0] if ":" in args.src else None
    dst_provider = args.dst.split(":")[0] if ":" in args.dst else None
    proprietary: Optional[tuple] = None
    if src_provider == dst_provider == "aws":
        proprietary = ("S3 RTC", S3RTCReplicator)
    elif src_provider == dst_provider == "azure":
        proprietary = ("AZ Rep", AzureObjectReplicator)
    if proprietary is not None:
        name, cls = proprietary
        p_cloud = build_default_cloud(seed=args.seed)
        p_src = p_cloud.bucket(args.src, "src", versioning=True)
        p_dst = p_cloud.bucket(args.dst, "dst", versioning=True)
        rep = cls(p_cloud, p_src, p_dst)
        p_src.put_object("cmp", Blob.fresh(args.size), p_cloud.now, notify=False)
        p_before = p_cloud.ledger.snapshot()
        rec = rep.replicate_once("cmp")
        rows.append((name, rec.delay,
                     p_before.delta(p_cloud.ledger.snapshot()).total))

    print(f"{args.size} bytes, {args.src} -> {args.dst}:")
    print(f"  {'system':<10} {'delay (s)':>10} {'cost ($)':>12}")
    for name, delay, cost in rows:
        print(f"  {name:<10} {delay:>10.2f} {cost:>12.6f}")
    return 0


def cmd_bench_perf(args) -> int:
    """Run the hot-path microbenchmarks; optionally emit/check BENCH files."""
    import json
    import pathlib

    from repro.bench import perf

    reference_path = reference = None
    if args.check:
        # Resolve the reference — and refuse a scale mismatch — before
        # spending minutes benchmarking.
        reference_path = (pathlib.Path(args.baseline) if args.baseline
                          else perf.latest_bench_file())
        if reference_path is None or not reference_path.exists():
            print("bench-perf --check: no BENCH_*.json reference found",
                  file=sys.stderr)
            return 1
        reference = json.loads(reference_path.read_text())
        try:
            perf.check_regression({}, reference, tolerance=args.tolerance,
                                  scale=args.scale)
        except ValueError as exc:
            print(f"bench-perf --check: {exc}", file=sys.stderr)
            return 1

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    results = perf.run_all(scale=args.scale, repeat=args.repeat,
                           progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    if profiler is not None:
        import pstats

        profiler.disable()
        print("\ntop 20 by cumulative time:", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
    print(f"{'metric':<28} {'value':>16}")
    for metric, value in results.items():
        unit = "s" if metric.endswith("_seconds") else "/s"
        print(f"  {metric:<26} {value:>14,.2f} {unit}")

    if args.check:
        warnings = perf.check_regression(results, reference,
                                         tolerance=args.tolerance,
                                         scale=args.scale)
        if warnings:
            print(f"\nperformance regressions vs {reference_path}:",
                  file=sys.stderr)
            for warning in warnings:
                print(f"  WARNING: {warning}", file=sys.stderr)
            return 1
        print(f"\nno regression vs {reference_path} "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    if args.out:
        baseline = None
        if args.baseline:
            doc = json.loads(pathlib.Path(args.baseline).read_text())
            baseline = doc.get("current", doc)
        meta = {"scale": args.scale, "repeat": args.repeat,
                "command": "repro.cli bench-perf"}
        doc = perf.emit(args.out, results, baseline=baseline, meta=meta)
        print(f"\nwrote {args.out}")
        for metric, ratio in sorted(doc.get("speedup", {}).items()):
            print(f"  {metric:<26} {ratio:>8.2f}x vs baseline")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="areplica",
        description="AReplica: serverless cross-cloud object replication "
                    "(EuroSys '26 reproduction, simulated clouds)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_size=True):
        p.add_argument("--src", default="aws:us-east-1",
                       help="source region (provider:region)")
        p.add_argument("--dst", default="azure:eastus",
                       help="destination region (provider:region)")
        if with_size:
            p.add_argument("--size", type=parse_size, default=parse_size("1MB"),
                           help="object size, e.g. 128MB")
        p.add_argument("--slo", type=float, default=0.0,
                       help="replication SLO in seconds (0 = fastest plan)")
        p.add_argument("--percentile", type=float, default=0.99)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--profile-samples", type=int, default=8)

    def hedging_knobs(p, default_on=False):
        """Hedging flags: the drills accept --hedging to ride along;
        hedge-drill forces it on and exposes the tuning knobs."""
        if not default_on:
            p.add_argument("--hedging", action="store_true",
                           help="enable speculative straggler cloning")
        p.add_argument("--hedge-quantile", type=float, default=0.95,
                       help="windowed completion quantile deriving the "
                            "per-part hedge deadline")
        p.add_argument("--hedge-min-samples", type=int, default=8,
                       help="completion samples required before hedging")
        p.add_argument("--hedge-min-part-bytes", type=parse_size,
                       default=parse_size("1MB"),
                       help="smallest part worth cloning")
        p.add_argument("--max-clones", type=int, default=1,
                       help="clone budget per part")

    common(sub.add_parser("replicate", help="replicate one object and report"))
    common(sub.add_parser("plan", help="show the SLO-compliant plan"))
    common(sub.add_parser("profile", help="show fitted model parameters"),
           with_size=False)
    trace = sub.add_parser("trace", help="replay a synthetic IBM COS hour")
    common(trace, with_size=False)
    trace.add_argument("--requests", type=int, default=5000)
    trace.add_argument("--json", action="store_true",
                       help="emit the machine-readable report instead of text")
    trace.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a causal trace and write Chrome "
                            "trace-event JSON here (also prints the "
                            "per-phase N/I/D/P/S/C delay breakdown)")
    common(sub.add_parser("compare", help="compare against the baselines"))
    cost = sub.add_parser("cost", help="project monthly replication cost")
    common(cost, with_size=False)
    cost.add_argument("--requests-per-day", type=float, default=100_000.0)
    regions = sub.add_parser("regions", help="list regions and egress prices")
    regions.add_argument("--egress", action="store_true",
                         help="print the full egress price matrix")
    audit = sub.add_parser("audit",
                           help="replay a workload and audit consistency")
    common(audit, with_size=False)
    audit.add_argument("--requests", type=int, default=2000)
    soak = sub.add_parser("chaos-soak",
                          help="replay a workload under injected faults and "
                               "audit convergence")
    common(soak, with_size=False)
    soak.add_argument("--requests", type=int, default=1000)
    soak.add_argument("--crash-prob", type=float, default=0.05,
                      help="per-invocation function crash probability")
    soak.add_argument("--notif-drop", type=float, default=0.05,
                      help="notification drop (delayed redelivery) probability")
    soak.add_argument("--notif-dup", type=float, default=0.05,
                      help="notification duplication probability")
    soak.add_argument("--notif-reorder", type=float, default=0.05,
                      help="notification reordering probability")
    soak.add_argument("--kv-reject", type=float, default=0.05,
                      help="KV write throttling probability")
    soak.add_argument("--kv-delay", type=float, default=0.05,
                      help="KV admission-delay probability")
    soak.add_argument("--wan-stall", type=float, default=0.02,
                      help="per-transfer WAN stall probability")
    soak.add_argument("--json", action="store_true",
                      help="emit the machine-readable report instead of text")
    hedging_knobs(soak)
    drill = sub.add_parser("outage-drill",
                           help="replay a workload through a sustained "
                                "regional outage and verify degradation, "
                                "recovery, and repair")
    common(drill, with_size=False)
    drill.add_argument("--requests", type=int, default=400)
    drill.add_argument("--outage-region", default=None,
                       help="region to black out (default: the source)")
    drill.add_argument("--outage-start", type=float, default=600.0,
                       help="outage start, seconds into the trace")
    drill.add_argument("--outage-duration", type=float, default=600.0,
                       help="outage length in seconds")
    drill.add_argument("--json", action="store_true",
                       help="emit the machine-readable report instead of text")
    hedging_knobs(drill)
    corrupt = sub.add_parser("corruption-drill",
                             help="replay a workload under silent-corruption "
                                  "faults and verify detection, quarantine, "
                                  "and deep-scrub repair")
    common(corrupt, with_size=False)
    corrupt.add_argument("--requests", type=int, default=400)
    corrupt.add_argument("--corrupt-get", type=float, default=0.15,
                         help="in-flight bit-flip probability per WAN GET")
    corrupt.add_argument("--corrupt-put", type=float, default=0.10,
                         help="in-flight bit-flip probability per WAN PUT")
    corrupt.add_argument("--at-rest", type=float, default=0.05,
                         help="transient at-rest rot probability per read")
    corrupt.add_argument("--truncate", type=float, default=0.05,
                         help="truncated-read probability per read")
    corrupt.add_argument("--wrong-etag", type=float, default=0.05,
                         help="wrong-ETag response probability per read")
    corrupt.add_argument("--rot-keys", type=int, default=3,
                         help="replicated objects to durably rot before "
                              "the deep scrub")
    corrupt.add_argument("--json", action="store_true",
                         help="emit the machine-readable report instead of "
                              "text")
    hedging_knobs(corrupt)
    hedge = sub.add_parser("hedge-drill",
                           help="replay a workload with speculative hedging "
                                "on under chaos and verify the hedge "
                                "discipline end to end")
    common(hedge, with_size=False)
    hedge.add_argument("--requests", type=int, default=600)
    hedge.add_argument("--crash-prob", type=float, default=0.02,
                       help="per-invocation function crash probability")
    hedge.add_argument("--wan-stall", type=float, default=0.05,
                       help="per-transfer WAN stall probability")
    hedge.add_argument("--json", action="store_true",
                       help="emit the machine-readable report instead of "
                            "text")
    hedging_knobs(hedge, default_on=True)
    lifecycle = sub.add_parser(
        "lifecycle-drill",
        help="run one planned-operations procedure (evacuation, rolling "
             "restart, or switchover) against a live loaded engine and "
             "verify zero loss/duplication/divergence")
    common(lifecycle, with_size=False)
    lifecycle.add_argument("--scenario", required=True,
                           choices=("evacuate", "rolling", "switchover"),
                           help="which planned disruption to execute")
    lifecycle.add_argument("--requests", type=int, default=400)
    lifecycle.add_argument("--at", type=float, default=600.0,
                           help="procedure start, seconds into the trace")
    lifecycle.add_argument("--drain-deadline", type=float, default=None,
                           help="graceful-drain bound in seconds "
                                "(default: ReplicaConfig.drain_deadline_s)")
    lifecycle.add_argument("--chaos", action="store_true",
                           help="layer a probabilistic chaos storm over "
                                "the procedure")
    lifecycle.add_argument("--json", action="store_true",
                           help="emit the machine-readable report instead "
                                "of text")
    hedging_knobs(lifecycle)
    tenant = sub.add_parser(
        "tenant-drill",
        help="replay a skewed multi-tenant workload across sharded engine "
             "workers and verify per-tenant convergence, SLO, budget, and "
             "cross-tenant isolation")
    common(tenant, with_size=False)
    tenant.add_argument("--tenants", type=int, default=1000,
                        help="tenants to register (own buckets, weight, "
                             "and budget each)")
    tenant.add_argument("--shards", type=int, default=4,
                        help="engine workers the key-space is "
                             "consistent-hashed across")
    tenant.add_argument("--requests", type=int, default=3000,
                        help="total PUTs (>= --tenants; the excess is "
                             "Zipf-skewed onto the hot head)")
    tenant.add_argument("--object-size", type=parse_size,
                        default=parse_size("64KB"),
                        help="PUT size (small keeps the inline path hot)")
    tenant.add_argument("--horizon", type=float, default=3600.0,
                        help="workload duration in seconds")
    tenant.add_argument("--max-concurrent", type=int, default=32,
                        help="fair-share scheduler concurrency gate")
    tenant.add_argument("--budgeted-tenants", type=int, default=10,
                        help="hot tenants given a hard per-window budget")
    tenant.add_argument("--budget-tasks", type=float, default=25.0,
                        help="budget expressed in admitted tasks per window")
    tenant.add_argument("--budget-window", type=float, default=300.0,
                        help="budget window length in seconds")
    tenant.add_argument("--tenant-slo", type=float, default=120.0,
                        help="p99 delay SLO for unbudgeted tenants in "
                             "seconds (budgeted tenants get a drain-"
                             "covering SLO derived from the window)")
    tenant.add_argument("--json", action="store_true",
                        help="emit the machine-readable report instead "
                             "of text")
    autop = sub.add_parser(
        "autopilot-drill",
        help="replay a busy-hour workload with a mid-run load surge and a "
             "regional WAN brownout under the SLO autopilot and verify it "
             "engages, recovers p99 within the settle bound, and stays "
             "inside budgets")
    common(autop, with_size=False)
    autop.add_argument("--tenants", type=int, default=4,
                       help="tenants to register (own buckets and budget "
                            "each)")
    autop.add_argument("--shards", type=int, default=2,
                       help="engine workers the key-space is "
                            "consistent-hashed across")
    autop.add_argument("--requests", type=int, default=240,
                       help="baseline PUTs spread uniformly over the "
                            "horizon (keeps the p99 window warm)")
    autop.add_argument("--object-size", type=parse_size,
                       default=parse_size("64KB"),
                       help="PUT size (small keeps the inline path hot)")
    autop.add_argument("--horizon", type=float, default=1500.0,
                       help="workload duration in seconds")
    autop.add_argument("--max-concurrent", type=int, default=4,
                       help="fair-share dispatch gate the surge must "
                            "overwhelm (the autopilot's main actuator)")
    autop.add_argument("--tenant-slo", type=float, default=60.0,
                       help="per-tenant p99 delay target in seconds")
    autop.add_argument("--budget-tasks", type=float, default=400.0,
                       help="per-tenant budget in admitted tasks per window")
    autop.add_argument("--budget-window", type=float, default=600.0,
                       help="budget window length in seconds")
    autop.add_argument("--surge-at", type=float, default=180.0,
                       help="surge burst start, seconds into the trace")
    autop.add_argument("--surge-duration", type=float, default=120.0,
                       help="surge burst length in seconds")
    autop.add_argument("--surge-requests", type=int, default=2400,
                       help="extra PUTs packed into the surge burst")
    autop.add_argument("--brownout-at", type=float, default=900.0,
                       help="WAN brownout start, seconds into the trace")
    autop.add_argument("--brownout-duration", type=float, default=120.0,
                       help="WAN brownout length in seconds")
    autop.add_argument("--autopilot-interval", type=float, default=30.0,
                       help="controller tick cadence in seconds")
    autop.add_argument("--autopilot-window", type=float, default=300.0,
                       help="trailing window for the per-tenant p99")
    autop.add_argument("--cooldown", type=float, default=90.0,
                       help="post-actuation cooldown per knob in seconds")
    autop.add_argument("--settle-bound", type=float, default=600.0,
                       help="max seconds a disturbance episode may take to "
                            "settle (and the engagement accounting window)")
    autop.add_argument("--chaos", action="store_true",
                       help="layer a probabilistic chaos storm over the "
                            "disturbances")
    autop.add_argument("--json", action="store_true",
                       help="emit the machine-readable report instead of "
                            "text")
    hedging_knobs(autop)
    drill_all = sub.add_parser(
        "drill-all",
        help="run chaos-soak, outage-drill, corruption-drill, hedge-drill, "
             "the three lifecycle drills, tenant-drill, and autopilot-drill "
             "at one seed; fail on any non-PASS")
    drill_all.add_argument("--seed", type=int, default=0)
    drill_all.add_argument("--json", action="store_true",
                           help="emit the aggregated machine-readable "
                                "report instead of text")
    bench = sub.add_parser("bench-perf",
                           help="run the hot-path microbenchmarks")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="scale factor on every benchmark's work size")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timing repetitions per benchmark (best wins)")
    bench.add_argument("--out", default=None,
                       help="write a BENCH_*.json document here")
    bench.add_argument("--baseline", default=None,
                       help="BENCH_*.json to record (with --out) or compare "
                            "against (with --check)")
    bench.add_argument("--check", action="store_true",
                       help="compare against the latest BENCH_*.json and warn "
                            "on regression (nonzero exit)")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional throughput drop for --check")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top 20 "
                            "functions by cumulative time")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "replicate": cmd_replicate,
        "plan": cmd_plan,
        "profile": cmd_profile,
        "trace": cmd_trace,
        "compare": cmd_compare,
        "cost": cmd_cost,
        "regions": cmd_regions,
        "audit": cmd_audit,
        "chaos-soak": cmd_chaos_soak,
        "outage-drill": cmd_outage_drill,
        "corruption-drill": cmd_corruption_drill,
        "hedge-drill": cmd_hedge_drill,
        "lifecycle-drill": cmd_lifecycle_drill,
        "tenant-drill": cmd_tenant_drill,
        "autopilot-drill": cmd_autopilot_drill,
        "drill-all": cmd_drill_all,
        "bench-perf": cmd_bench_perf,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
