"""Seeded random streams and distribution helpers.

Every stochastic component of the simulation draws from a named child
stream of a single root seed, so that adding a new consumer of
randomness does not perturb the draws seen by existing components, and
a whole experiment is reproducible from one integer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["RngFactory", "Dist", "BufferedSampler", "normal", "lognormal",
           "constant", "uniform"]


class RngFactory:
    """Derives independent, named ``numpy`` generators from a root seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator keyed by ``(seed, name)``.

        The same ``(seed, name)`` always yields an identical stream;
        distinct names yield streams that are statistically independent
        (seeded by a SHA-256 of the pair).
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, for components that own many streams."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[8:16], "little"))


@dataclass(frozen=True)
class Dist:
    """A samplable distribution over positive reals.

    ``kind`` is one of ``normal``, ``lognormal``, ``constant``,
    ``uniform``.  Samples from unbounded kinds are truncated below at
    ``floor`` (physical quantities like latencies and bandwidths cannot
    be negative).
    """

    kind: str
    a: float
    b: float = 0.0
    floor: float = 1e-9

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if self.kind == "normal":
            x = rng.normal(self.a, self.b, size)
        elif self.kind == "lognormal":
            x = rng.lognormal(self.a, self.b, size)
        elif self.kind == "constant":
            x = self.a if size is None else np.full(size, self.a)
        elif self.kind == "uniform":
            x = rng.uniform(self.a, self.b, size)
        else:
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        return np.maximum(x, self.floor)

    @property
    def mean(self) -> float:
        if self.kind == "normal":
            return self.a
        if self.kind == "lognormal":
            return float(np.exp(self.a + self.b**2 / 2))
        if self.kind == "constant":
            return self.a
        if self.kind == "uniform":
            return (self.a + self.b) / 2
        raise ValueError(self.kind)

    @property
    def std(self) -> float:
        if self.kind == "normal":
            return self.b
        if self.kind == "lognormal":
            m = self.mean
            return float(m * np.sqrt(np.exp(self.b**2) - 1))
        if self.kind == "constant":
            return 0.0
        if self.kind == "uniform":
            return (self.b - self.a) / np.sqrt(12)
        raise ValueError(self.kind)


class BufferedSampler:
    """Scalar draws from a :class:`Dist` served out of vectorized blocks.

    Per-call ``Generator.normal()`` carries ~µs of NumPy dispatch
    overhead; hot latency samplers (KV responses, storage request
    admission) draw millions of scalars.  Drawing a block at a time
    amortizes the dispatch while staying fully seeded-deterministic
    (the block is drawn from the same stream, just ahead of time).
    """

    __slots__ = ("_dist", "_rng", "_block", "_buf", "_idx")

    def __init__(self, dist: Dist, rng: np.random.Generator, block: int = 512):
        self._dist = dist
        self._rng = rng
        self._block = block
        self._buf: list[float] = []
        self._idx = 0

    def sample(self) -> float:
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._dist.sample(self._rng, self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return self._buf[idx]


def normal(mean: float, std: float, floor: float = 1e-9) -> Dist:
    return Dist("normal", mean, std, floor)


def lognormal(mu: float, sigma: float, floor: float = 1e-9) -> Dist:
    return Dist("lognormal", mu, sigma, floor)


def constant(value: float) -> Dist:
    return Dist("constant", value)


def uniform(lo: float, hi: float, floor: float = 1e-9) -> Dist:
    return Dist("uniform", lo, hi, floor)
