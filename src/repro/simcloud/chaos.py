"""Unified fault injection across the simulated substrates.

The paper's consistency argument (§5.2, §6) is that *any* single
failure — a crashed function, a lost notification, a throttled database
write, a stalled WAN link — leaves replication recoverable: the system
either retries its way through or converges once the operator redrives
the dead-letter queue.  One seeded :class:`ChaosConfig` drives fault
injection in all four substrates so that claim can be tested as a
whole rather than one mechanism at a time:

* **FaaS** (`simcloud/faas.py`) — any attempt may crash after an
  exponentially-distributed execution time and takes the platform's
  normal failure path (auto-retry, then dead-letter queue);
* **notifications** (`simcloud/notifications.py`) — deliveries may be
  dropped (redelivered later: real buses are at-least-once, never
  at-most-once), duplicated, or reordered past later events;
* **serverless KV** (`simcloud/kvstore.py`) — writes may be throttled
  (rejected *before* any mutation applies, like a DynamoDB
  ``ProvisionedThroughputExceededException``) and any operation may
  see its admission delayed;
* **WAN** (`simcloud/network.py`) — transfers may hit transient stalls,
  and configured blackout windows hold up every cross-region transfer
  that starts inside them.

Beyond the probabilistic faults, the config carries a **sustained
outage schedule**: per-region blackout windows during which a FaaS
platform refuses every attempt, a KV database throttles every
operation, or the WAN drops every transfer touching the region.  These
are the deterministic "region dark for minutes" scenarios the
outage-aware degradation machinery (``core/health.py``) is drilled
against — probabilities model flakiness, windows model incidents.

All draws come from dedicated ``chaos:*`` RNG streams, so a given seed
produces the same fault schedule regardless of how many samples the
latency machinery consumed — and a config whose probabilities are all
zero installs no hooks at all (the hot paths stay a single ``is None``
check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ChaosConfig", "ChaosDraws", "validate_outage_windows"]


def validate_outage_windows(name: str,
                            windows: tuple[tuple[str, float, float], ...],
                            ) -> None:
    """Validate ``(region_key, start_s, duration_s)`` window schedules.

    Shared between :class:`ChaosConfig` (regional outage schedules) and
    the planned-operations lifecycle layer (maintenance windows use the
    same shape) so the two kinds of scheduled disruption stay mutually
    composable: a lifecycle drill can layer its maintenance window over
    a chaos storm and both validate identically.
    """
    for window in windows:
        region_key, start, duration = window
        if (not isinstance(region_key, str) or not region_key
                or start < 0 or duration <= 0):
            raise ValueError(f"bad {name} window {window!r}")


class ChaosDraws:
    """Blocked scalar draws from one chaos stream.

    Drop-in for the ``random()`` / ``exponential()`` / ``normal()``
    calls the fault-injection hot paths make against a
    ``numpy.random.Generator``, but served out of vectorized blocks:
    per-call NumPy dispatch costs ~µs, and a busy-hour replay consults
    the chaos schedule on every attempt and transfer.

    Draw-order contract: a block of ``n`` draws consumes exactly the
    same stream values, in the same order, as ``n`` scalar calls would
    (NumPy fills arrays from the bit stream sequentially), so the fault
    schedule for a seed is independent of the block size.  Exponential
    draws buffer *unit-scale* variates and multiply by the requested
    mean, which keeps one shared block correct for any mix of means.
    """

    __slots__ = ("_rng", "_block", "_u", "_ui", "_e", "_ei", "_n", "_ni")

    def __init__(self, rng, block: int = 256):
        self._rng = rng
        self._block = block
        self._u: list[float] = []
        self._ui = 0
        self._e: list[float] = []
        self._ei = 0
        self._n: list[float] = []
        self._ni = 0

    def random(self) -> float:
        """Uniform draw on [0, 1)."""
        i = self._ui
        if i >= len(self._u):
            self._u = self._rng.random(self._block).tolist()
            i = 0
        self._ui = i + 1
        return self._u[i]

    def exponential(self, mean: float = 1.0) -> float:
        """Exponential draw with the given mean."""
        i = self._ei
        if i >= len(self._e):
            self._e = self._rng.standard_exponential(self._block).tolist()
            i = 0
        self._ei = i + 1
        return self._e[i] * mean

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Normal draw with the given location and scale."""
        i = self._ni
        if i >= len(self._n):
            self._n = self._rng.standard_normal(self._block).tolist()
            i = 0
        self._ni = i + 1
        return loc + scale * self._n[i]


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded fault schedule spanning all substrates.

    Every ``*_prob`` is a per-event probability in ``[0, 1)``; the
    matching ``*_s`` knobs shape the injected delays.  Probabilities
    must stay below 1 so that geometric retries (notification
    redelivery, KV backoff) terminate with probability one.
    """

    # -- FaaS: attempt crashes (the platform failure path) --------------
    crash_prob: float = 0.0
    crash_mean_delay_s: float = 2.0
    #: Restrict crash injection to functions whose deployed name
    #: contains this substring (e.g. one tenant's rule-id prefix so a
    #: storm hits only that tenant's orchestrators).  ``None`` scopes
    #: nothing — and, crucially, non-matching attempts still consume a
    #: chaos draw under a scope, so scoping tenant A's storm does not
    #: perturb the fault schedule other substrates see.
    crash_scope: Optional[str] = None

    # -- notifications: at-least-once delivery faults -------------------
    notif_drop_prob: float = 0.0
    notif_dup_prob: float = 0.0
    notif_reorder_prob: float = 0.0
    #: Mean lag before the bus redelivers a dropped notification.
    notif_redelivery_s: float = 30.0
    #: Mean lag of a duplicate behind its original.
    notif_dup_lag_s: float = 1.0
    #: A reordered event is held back uniformly within this window.
    notif_reorder_spread_s: float = 5.0

    # -- serverless KV: throttling and slow admission -------------------
    kv_reject_prob: float = 0.0
    kv_delay_prob: float = 0.0
    kv_delay_mean_s: float = 0.05

    # -- WAN: transient stalls and blackout windows ---------------------
    wan_stall_prob: float = 0.0
    wan_stall_mean_s: float = 5.0
    #: ``(start_s, duration_s)`` windows during which every cross-region
    #: transfer that begins waits for the window to close first.
    wan_blackout_windows: tuple[tuple[float, float], ...] = field(
        default_factory=tuple)

    # -- silent corruption: bit flips, bit rot, truncation, bad ETags ----
    #: A ranged GET served to a replicator arrives with flipped bits
    #: (the payload differs from what the store holds).
    corrupt_get_prob: float = 0.0
    #: A part PUT is miswritten in flight: the store durably records a
    #: payload other than the one the client uploaded.
    corrupt_put_prob: float = 0.0
    #: A stored object rots at rest when read: the store itself now
    #: holds (and serves) corrupted content under the original key.
    corrupt_at_rest_prob: float = 0.0
    #: A read returns only a prefix of the requested range.
    corrupt_truncate_prob: float = 0.0
    #: The store misreports an object's ETag on a read while the
    #: payload itself is intact.
    corrupt_wrong_etag_prob: float = 0.0

    # -- sustained regional outages: (region_key, start_s, duration_s) --
    #: The region's FaaS control plane fast-fails every attempt started
    #: inside the window (no instance acquired, nothing billed).
    faas_outages: tuple[tuple[str, float, float], ...] = field(
        default_factory=tuple)
    #: Every KV operation on tables in the region is rejected with
    #: ``Throttled`` inside the window (reads included — the database
    #: itself is dark, not merely over capacity).
    kv_outages: tuple[tuple[str, float, float], ...] = field(
        default_factory=tuple)
    #: Cross-region transfers touching the region as either endpoint
    #: stall until the window closes.
    wan_outages: tuple[tuple[str, float, float], ...] = field(
        default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("crash_prob", "notif_drop_prob", "notif_dup_prob",
                     "notif_reorder_prob", "kv_reject_prob",
                     "kv_delay_prob", "wan_stall_prob",
                     "corrupt_get_prob", "corrupt_put_prob",
                     "corrupt_at_rest_prob", "corrupt_truncate_prob",
                     "corrupt_wrong_etag_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        for name in ("crash_mean_delay_s", "notif_redelivery_s",
                     "notif_dup_lag_s", "notif_reorder_spread_s",
                     "kv_delay_mean_s", "wan_stall_mean_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for window in self.wan_blackout_windows:
            start, duration = window
            if start < 0 or duration <= 0:
                raise ValueError(f"bad blackout window {window!r}")
        for name in ("faas_outages", "kv_outages", "wan_outages"):
            validate_outage_windows(name, getattr(self, name))
        if self.crash_scope is not None and not self.crash_scope:
            raise ValueError("crash_scope must be None or a non-empty "
                             "substring of a function name")

    # -- which hooks does this config need? -----------------------------

    @property
    def faas_enabled(self) -> bool:
        return self.crash_prob > 0 or bool(self.faas_outages)

    @property
    def notifications_enabled(self) -> bool:
        return (self.notif_drop_prob > 0 or self.notif_dup_prob > 0
                or self.notif_reorder_prob > 0)

    @property
    def kv_enabled(self) -> bool:
        return (self.kv_reject_prob > 0 or self.kv_delay_prob > 0
                or bool(self.kv_outages))

    @property
    def wan_enabled(self) -> bool:
        return (self.wan_stall_prob > 0 or bool(self.wan_blackout_windows)
                or bool(self.wan_outages))

    @property
    def corruption_transfer_enabled(self) -> bool:
        """In-flight faults on the FaaS client data path."""
        return self.corrupt_get_prob > 0 or self.corrupt_put_prob > 0

    @property
    def corruption_at_rest_enabled(self) -> bool:
        """Faults the object store itself injects on reads."""
        return (self.corrupt_at_rest_prob > 0
                or self.corrupt_truncate_prob > 0
                or self.corrupt_wrong_etag_prob > 0)

    @property
    def corruption_enabled(self) -> bool:
        return (self.corruption_transfer_enabled
                or self.corruption_at_rest_enabled)

    @property
    def enabled(self) -> bool:
        """True when any substrate has a fault to inject."""
        return (self.faas_enabled or self.notifications_enabled
                or self.kv_enabled or self.wan_enabled
                or self.corruption_enabled)
