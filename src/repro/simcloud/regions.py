"""Cloud region catalog.

Covers every region used in the paper's evaluation (Tables 1-3 plus the
ablations) with approximate datacenter coordinates, which drive the
baseline WAN latency/bandwidth model in :mod:`repro.simcloud.network`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property, lru_cache

__all__ = ["Provider", "Region", "REGIONS", "get_region", "regions_of", "geo_distance_km"]


class Provider:
    """Cloud provider identifiers (plain strings for easy dict keys)."""

    AWS = "aws"
    AZURE = "azure"
    GCP = "gcp"

    ALL = (AWS, AZURE, GCP)


@dataclass(frozen=True)
class Region:
    """A cloud region: provider, provider-local name, and location."""

    provider: str
    name: str
    lat: float
    lon: float
    continent: str

    @cached_property
    def key(self) -> str:
        """Globally unique identifier, e.g. ``aws:us-east-1``."""
        return f"{self.provider}:{self.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key


_CATALOG = [
    # provider, name, lat, lon, continent
    (Provider.AWS, "us-east-1", 38.9, -77.4, "na"),       # N. Virginia
    (Provider.AWS, "us-east-2", 40.0, -83.0, "na"),       # Ohio
    (Provider.AWS, "us-west-2", 45.8, -119.7, "na"),      # Oregon
    (Provider.AWS, "ca-central-1", 45.5, -73.6, "na"),    # Montreal
    (Provider.AWS, "eu-west-1", 53.3, -6.3, "eu"),        # Ireland
    (Provider.AWS, "ap-northeast-1", 35.6, 139.7, "ap"),  # Tokyo
    (Provider.AZURE, "eastus", 37.4, -79.8, "na"),        # Virginia
    (Provider.AZURE, "westus2", 47.2, -119.9, "na"),      # Washington
    (Provider.AZURE, "uksouth", 51.5, -0.1, "eu"),        # London
    (Provider.AZURE, "southeastasia", 1.3, 103.8, "ap"),  # Singapore
    (Provider.GCP, "us-east1", 33.2, -80.0, "na"),        # S. Carolina
    (Provider.GCP, "us-west1", 45.6, -121.2, "na"),       # Oregon
    (Provider.GCP, "europe-west6", 47.4, 8.5, "eu"),      # Zurich
    (Provider.GCP, "asia-northeast1", 35.7, 139.7, "ap"), # Tokyo
]

REGIONS: dict[str, Region] = {
    f"{p}:{n}": Region(p, n, lat, lon, cont) for p, n, lat, lon, cont in _CATALOG
}


def get_region(key: str) -> Region:
    """Look up a region by its ``provider:name`` key.

    Accepts bare provider-local names when unambiguous (``us-east-1``).
    """
    if key in REGIONS:
        return REGIONS[key]
    matches = [r for r in REGIONS.values() if r.name == key]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"unknown region {key!r}")
    raise KeyError(f"ambiguous region {key!r}: {[m.key for m in matches]}")


def regions_of(provider: str) -> list[Region]:
    """All catalog regions belonging to one provider."""
    return [r for r in REGIONS.values() if r.provider == provider]


@lru_cache(maxsize=4096)
def geo_distance_km(a: Region, b: Region) -> float:
    """Great-circle distance between two regions in kilometres."""
    lat1, lon1, lat2, lon2 = map(math.radians, (a.lat, a.lon, b.lat, b.lon))
    h = (
        math.sin((lat2 - lat1) / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2) ** 2
    )
    return 2 * 6371.0 * math.asin(math.sqrt(h))
