"""Multi-cloud simulation substrate.

This package simulates the pieces of AWS, Azure, and GCP that AReplica
depends on: object storage with event notifications, FaaS platforms,
serverless key-value stores, durable workflow timers, VMs, a wide-area
network fabric with asymmetric and variable bandwidth, and a metered
price book.  All components run on a deterministic discrete-event
simulation kernel (:mod:`repro.simcloud.sim`), so experiments are
reproducible under a seed.
"""

from repro.simcloud.sim import Simulator, Process, Future, Interrupt
from repro.simcloud.cloud import Cloud, build_default_cloud
from repro.simcloud.monitoring import CloudMonitor, TimeSeries
from repro.simcloud.regions import Region, REGIONS, get_region
from repro.simcloud.cost import CostLedger, CostCategory

__all__ = [
    "Simulator",
    "Process",
    "Future",
    "Interrupt",
    "Cloud",
    "build_default_cloud",
    "CloudMonitor",
    "TimeSeries",
    "Region",
    "REGIONS",
    "get_region",
    "CostLedger",
    "CostCategory",
]
