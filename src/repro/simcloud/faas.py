"""Simulated serverless function platforms (Lambda / Azure Functions /
Cloud Run functions).

Models every FaaS behaviour the paper's performance model (§5.3) and
discussion (§6) depend on:

* **API invocation latency** ``I(loc)`` — paid by the caller for each
  asynchronous invocation request;
* **instance readiness delay** ``D(loc)`` — cold-start time when no
  warm instance is available, small warm-start time otherwise;
* **scheduling postponement** ``P(loc)`` — Azure/GCP batch new-instance
  creation to a periodic scheduler tick (Cloud Run's scheduler runs
  every five seconds), so a burst of cold invocations waits for the
  next tick together;
* **execution time limits** — a watchdog interrupts handlers that
  exceed the platform maximum (e.g. 15 min on Lambda);
* **auto-retry with dead-letter queue** — failed/timed-out invocations
  are retried with backoff up to a platform maximum, then parked
  (§6 "Fault tolerance");
* **concurrency limits** — excess invocations queue (§6 "Resource
  limitations"), default 1,000 concurrent instances per region;
* **per-instance network variability** — each instance owns a
  persistent :class:`~repro.simcloud.network.InstanceChannel`;
* **millisecond-granularity billing** of compute and requests.

Handlers are DES processes: generator functions ``handler(ctx,
payload)`` that yield futures.  ``ctx`` (:class:`FunctionContext`)
exposes the object-storage data path with metered latency, transfer
time, and cost.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.simcloud.chaos import ChaosDraws
from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.network import (
    BEST_CONFIGS,
    FunctionConfig,
    InstanceChannel,
    NetworkFabric,
)
from repro.simcloud.objectstore import Blob, Bucket, ServiceUnavailable
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import Provider, Region
from repro.simcloud.rng import BufferedSampler, Dist, RngFactory, normal
from repro.simcloud.sim import (
    Future,
    Interrupt,
    Process,
    Simulator,
    SleepRequest,
)

__all__ = [
    "FaasProfile",
    "FaasRegion",
    "FunctionContext",
    "Invocation",
    "FunctionTimeout",
    "InvocationFailed",
]


def _task_ref(payload) -> Optional[str]:
    """Task attribution for tracing (mirrors repro.core.tracing.task_ref;
    duplicated so the substrate layer never imports the core package)."""
    if isinstance(payload, dict):
        ref = payload.get("task", payload.get("task_id"))
        if isinstance(ref, dict):
            ref = ref.get("task_id")
        if ref is not None:
            return str(ref)
    return None


class FunctionTimeout(RuntimeError):
    """Raised inside an invocation that exceeded its time limit."""


class InvocationFailed(RuntimeError):
    """An invocation exhausted its automatic retries."""


@dataclass(frozen=True)
class FaasProfile:
    """Platform behaviour parameters (per provider)."""

    invoke_latency_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.018, 0.005, floor=0.004),
            Provider.AZURE: normal(0.045, 0.015, floor=0.008),
            Provider.GCP: normal(0.030, 0.010, floor=0.006),
        }
    )
    cold_start_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.32, 0.08, floor=0.08),
            Provider.AZURE: normal(1.10, 0.35, floor=0.25),
            Provider.GCP: normal(0.55, 0.15, floor=0.12),
        }
    )
    warm_start_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.008, 0.002, floor=0.001),
            Provider.AZURE: normal(0.020, 0.006, floor=0.002),
            Provider.GCP: normal(0.012, 0.004, floor=0.002),
        }
    )
    # Scheduler tick period driving P(loc); 0 means instances are added
    # immediately (Lambda's firecracker pool).
    scheduler_period_s: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 0.0,
            Provider.AZURE: 4.0,
            Provider.GCP: 5.0,
        }
    )
    # Hard execution time limits.
    timeout_limit_s: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 900.0,
            Provider.AZURE: 600.0,
            Provider.GCP: 540.0,
        }
    )
    # Extra caller-side latency when invoking across providers (public
    # HTTPS endpoint instead of in-cloud API).
    cross_provider_invoke_s: Dist = normal(0.09, 0.03, floor=0.02)
    keepalive_s: float = 600.0
    max_concurrency: int = 1000
    max_retries: int = 2
    retry_backoff_s: float = 1.0


# Object-storage request (first-byte) latencies, paid per API call from
# a function to a bucket; WAN round-trip added when crossing regions.
_STORE_REQ_LATENCY: dict[str, Dist] = {
    Provider.AWS: normal(0.025, 0.008, floor=0.005),
    Provider.AZURE: normal(0.040, 0.012, floor=0.008),
    Provider.GCP: normal(0.030, 0.010, floor=0.006),
}
_WAN_RTT_PER_1000KM = 0.012  # seconds of extra request RTT per 1000 km


@dataclass
class _Instance:
    """One warm function instance (a microVM/container)."""

    instance_id: int
    channel: InstanceChannel
    last_used: float
    cold_started_at: float


class Invocation(Future):
    """Handle for one logical invocation (spanning auto-retries)."""

    __slots__ = ("name", "payload", "attempts", "enqueued_at", "started_at",
                 "fresh_instance")

    def __init__(self, sim: Simulator, name: str, payload: Any,
                 fresh_instance: bool = False):
        super().__init__(sim)
        self.name = name
        self.payload = payload
        self.attempts = 0
        self.enqueued_at = sim.now
        self.started_at: Optional[float] = None
        #: Bypass the warm pool: every attempt cold-starts a brand-new
        #: instance (and therefore draws a fresh per-instance network
        #: speed factor).  The hedging engine sets this on clone
        #: invocations — re-landing a straggler's clone on a warm
        #: instance whose persistent factor is also slow would defeat
        #: the independent redraw the hedge exists to buy.
        self.fresh_instance = fresh_instance


@dataclass
class _Deployment:
    name: str
    handler: Callable[["FunctionContext", Any], Generator]
    config: FunctionConfig
    timeout_s: float
    warm_pool: deque = field(default_factory=deque)
    stats: dict[str, int] = field(
        default_factory=lambda: {
            "invocations": 0,
            "cold_starts": 0,
            "warm_starts": 0,
            "timeouts": 0,
            "errors": 0,
            "retries": 0,
        }
    )


class FaasRegion:
    """The FaaS service of one provider in one region."""

    def __init__(
        self,
        sim: Simulator,
        region: Region,
        fabric: NetworkFabric,
        prices: PriceBook,
        ledger: CostLedger,
        rngs: RngFactory,
        profile: FaasProfile | None = None,
    ):
        self.sim = sim
        self.region = region
        self.fabric = fabric
        self.prices = prices
        self.ledger = ledger
        self.profile = profile or FaasProfile()
        self._rng = rngs.stream(f"faas:{region.key}")
        # Fault injection draws from its own stream: crash patterns for
        # a given seed depend only on the attempt sequence, not on how
        # many latency samples other machinery happened to consume.
        # Served in vectorized blocks (ChaosDraws) — every attempt
        # consults the crash schedule, every WAN leg the corruption one.
        self._chaos_rng = ChaosDraws(rngs.stream(f"faas-chaos:{region.key}"))
        self._req_latency_samplers: dict[str, BufferedSampler] = {}
        # Deterministic WAN round-trip surcharge per remote region key.
        self._wan_surcharges: dict[str, float] = {}
        # (bucket, kind) -> (amount, detail) so the per-request ledger
        # charge does not rebuild the same f-string on every data-path op.
        self._req_charge_cache: dict[tuple, tuple] = {}
        # (src_key, dst_key) -> detail string for egress charges.
        self._egress_detail_cache: dict[tuple, str] = {}
        # Scalar platform-latency draws (invoke, warm start, cold start)
        # served from vectorized blocks; keyed by the Dist itself so a
        # post-construction profile swap transparently gets fresh
        # samplers for any changed distribution.
        self._dist_samplers: dict[Dist, BufferedSampler] = {}
        self._deployments: dict[str, _Deployment] = {}
        self._instance_seq = itertools.count(1)
        self._running = 0
        #: High-water mark of concurrently running instances.
        self.peak_running = 0
        self._queue: deque[Callable[[], None]] = deque()
        self.dead_letters: list[tuple[str, Any, str]] = []
        #: How many dead-letter entries carried the ``corrupted``
        #: disposition (poison parts quarantined past their budget).
        self.quarantined_dead_letters = 0
        #: Fault injection: probability that any attempt crashes after
        #: an Exp(chaos_mean_delay_s)-distributed execution time.  The
        #: crash takes the platform's normal failure path (§6: auto-
        #: retry, then dead-letter queue).  Off by default.
        self.chaos_crash_prob = 0.0
        self.chaos_mean_delay_s = 2.0
        #: When set, crashes only strike deployments whose name contains
        #: this substring; non-matching attempts still consume their
        #: draw, keeping the seed's fault schedule scope-independent.
        self.chaos_crash_scope = None
        self.chaos_crashes = 0
        #: Sustained-outage schedule: ``(start, end)`` windows during
        #: which the regional control plane refuses every new attempt.
        self.chaos_outage_windows: tuple[tuple[float, float], ...] = ()
        self.chaos_outage_failures = 0
        #: In-flight silent corruption on this platform's client data
        #: path: a WAN ranged GET arrives with flipped bits, or a part
        #: PUT is miswritten on the wire (the store durably records a
        #: payload other than the one uploaded).  Off by default.
        self.chaos_corrupt_get_prob = 0.0
        self.chaos_corrupt_put_prob = 0.0
        self.chaos_corrupt_gets = 0
        self.chaos_corrupt_puts = 0
        #: Optional :class:`~repro.core.health.HealthTracker` fed one
        #: ``("faas", region)`` result per finished attempt.
        self.health_sink = None
        #: Optional :class:`~repro.core.tracing.Tracer` receiving the
        #: platform's I/D/P spans and attempt/dead-letter records.
        self.tracer = None

    def configure_chaos(self, chaos) -> None:
        """Adopt the FaaS knobs of a :class:`~repro.simcloud.chaos.ChaosConfig`
        (or clear them when ``chaos`` is None)."""
        self.chaos_crash_prob = chaos.crash_prob if chaos is not None else 0.0
        self.chaos_crash_scope = (chaos.crash_scope if chaos is not None
                                  else None)
        if chaos is not None:
            self.chaos_mean_delay_s = chaos.crash_mean_delay_s
            self.chaos_outage_windows = tuple(
                (start, start + duration)
                for region_key, start, duration in chaos.faas_outages
                if region_key == self.region.key)
            self.chaos_corrupt_get_prob = chaos.corrupt_get_prob
            self.chaos_corrupt_put_prob = chaos.corrupt_put_prob
        else:
            self.chaos_outage_windows = ()
            self.chaos_corrupt_get_prob = 0.0
            self.chaos_corrupt_put_prob = 0.0

    def _outage_active(self) -> bool:
        now = self.sim.now
        for start, end in self.chaos_outage_windows:
            if start <= now < end:
                return True
        return False

    @property
    def provider(self) -> str:
        return self.region.provider

    @property
    def running(self) -> int:
        return self._running

    # -- deployment ----------------------------------------------------------

    def deploy(
        self,
        name: str,
        handler: Callable[["FunctionContext", Any], Generator],
        config: FunctionConfig | None = None,
        timeout_s: float | None = None,
    ) -> None:
        """Register a function; ``config`` defaults to the platform's
        best-price configuration from the paper's setup."""
        limit = self.profile.timeout_limit_s[self.provider]
        timeout = min(timeout_s or limit, limit)
        self._deployments[name] = _Deployment(
            name, handler, config or BEST_CONFIGS[self.provider], timeout
        )

    def deployment_stats(self, name: str) -> dict[str, int]:
        return dict(self._deployments[name].stats)

    def _sample(self, dist: Dist) -> float:
        """One scalar draw from ``dist``, buffered per distribution."""
        sampler = self._dist_samplers.get(dist)
        if sampler is None:
            sampler = self._dist_samplers[dist] = BufferedSampler(
                dist, self._rng, block=128)
        return sampler.sample()

    # -- invocation ----------------------------------------------------------

    def invoke(self, name: str, payload: Any,
               caller_region: Region | None = None,
               fresh_instance: bool = False) -> tuple[Future, Invocation]:
        """Asynchronously invoke ``name``.

        Returns ``(accepted, invocation)``: ``accepted`` resolves after
        the caller-side API latency *I* (plus a cross-provider surcharge
        when the caller runs on a different cloud); ``invocation``
        resolves with the handler's return value once the function —
        including platform auto-retries — finishes.
        ``fresh_instance`` forces every attempt onto a cold-started
        instance (see :class:`Invocation`).
        """
        if name not in self._deployments:
            raise KeyError(f"function {name!r} not deployed in {self.region.key}")
        latency = self._sample(self.profile.invoke_latency_s[self.provider])
        if caller_region is not None and caller_region.provider != self.provider:
            latency += float(self.profile.cross_provider_invoke_s.sample(self._rng))
        invocation = Invocation(self.sim, name, payload,
                                fresh_instance=fresh_instance)
        accepted = Future(self.sim)
        requested_at = self.sim.now

        def accept() -> None:
            if self.tracer is not None:
                # The caller-side invocation latency I(loc), paid per
                # request (T_func = I·n + D + P in the model).
                self.tracer.span("I", "phase", _task_ref(payload),
                                 requested_at, self.sim.now,
                                 fn=name, region=self.region.key)
            accepted.resolve(invocation)
            self._admit(invocation)

        self.sim.call_later(latency, accept)
        return accepted, invocation

    def invoke_and_forget(self, name: str, payload: Any) -> Invocation:
        """Platform-internal trigger (no caller to pay *I*), e.g. a
        bucket notification invoking its event-listener function."""
        invocation = Invocation(self.sim, name, payload)
        self._admit(invocation)
        return invocation

    def redrive_dead_letters(self) -> int:
        """Re-enqueue every dead-lettered event as a fresh invocation.

        The operational recovery path after an extended fault (e.g. a
        region outage that outlasted the automatic retries): all the
        system's functions are idempotent, so redriving the DLQ resumes
        exactly where the failures interrupted.  Returns the number of
        events redriven.
        """
        parked, self.dead_letters = self.dead_letters, []
        for name, payload, _error in parked:
            if name in self._deployments:
                self.invoke_and_forget(name, payload)
        return len(parked)

    # -- internal lifecycle -----------------------------------------------------

    def _admit(self, invocation: Invocation) -> None:
        if self._running >= self.profile.max_concurrency:
            self._queue.append(lambda: self._start_attempt(invocation))
        else:
            self._start_attempt(invocation)

    def _release_slot(self) -> None:
        self._running -= 1
        if self._queue and self._running < self.profile.max_concurrency:
            self._queue.popleft()()

    def _next_scheduler_tick(self) -> float:
        """Delay until the platform scheduler next adds instances (P)."""
        period = self.profile.scheduler_period_s[self.provider]
        if period <= 0:
            return 0.0
        return period - math.fmod(self.sim.now, period)

    def _acquire_instance(self, dep: _Deployment, task: Optional[str] = None,
                          fresh: bool = False):
        """Process: obtain a warm or cold instance; returns (_Instance, cold).

        ``fresh`` skips the warm pool entirely: the caller wants a
        brand-new instance (and the fresh per-instance channel factor a
        cold start draws), not whatever persistent factor a warm
        instance happens to carry.
        """
        now = self.sim.now
        while not fresh and dep.warm_pool:
            inst: _Instance = dep.warm_pool.popleft()
            if now - inst.last_used <= self.profile.keepalive_s:
                yield SleepRequest(
                    self._sample(self.profile.warm_start_s[self.provider])
                )
                if self.tracer is not None:
                    self.tracer.span("D", "phase", task, now, self.sim.now,
                                     kind="warm", region=self.region.key,
                                     instance=inst.instance_id)
                return inst, False
        postponement = self._next_scheduler_tick()
        if postponement > 0:
            yield SleepRequest(postponement)
            if self.tracer is not None:
                # P(loc): the batch-scheduler postponement a cold
                # invocation waits out before its instance is created.
                self.tracer.span("P", "phase", task, now, self.sim.now,
                                 region=self.region.key)
        cold_from = self.sim.now
        yield SleepRequest(
            self._sample(self.profile.cold_start_s[self.provider])
        )
        inst = _Instance(
            instance_id=next(self._instance_seq),
            channel=self.fabric.open_channel(self.provider),
            last_used=self.sim.now,
            cold_started_at=self.sim.now,
        )
        if self.tracer is not None:
            self.tracer.span("D", "phase", task, cold_from, self.sim.now,
                             kind="cold", region=self.region.key,
                             instance=inst.instance_id)
        return inst, True

    def _start_attempt(self, invocation: Invocation) -> None:
        self._running += 1
        self.peak_running = max(self.peak_running, self._running)
        dep = self._deployments[invocation.name]
        dep.stats["invocations"] += 1
        invocation.attempts += 1
        # Eager: the attempt's first segment (instance acquisition up to
        # its first sleep) runs synchronously, saving one zero-delay
        # kernel event per invocation on the hottest control path.
        self.sim.spawn(self._run_attempt(dep, invocation),
                       name=f"faas:{self.region.key}:{invocation.name}",
                       eager=True)

    def _run_attempt(self, dep: _Deployment, invocation: Invocation):
        tracer = self.tracer
        task = _task_ref(invocation.payload) if tracer is not None else None
        if self.chaos_outage_windows and self._outage_active():
            # Regional platform outage: the control plane refuses the
            # attempt before any instance starts — nothing runs, nothing
            # bills — and the caller sees the platform's normal failure
            # path (auto-retry with backoff, then the dead-letter queue).
            try:
                yield SleepRequest(0.05)
            finally:
                self._release_slot()
            self.chaos_outage_failures += 1
            if tracer is not None:
                tracer.event("faas-outage-reject", "faas", task,
                             fn=invocation.name, region=self.region.key)
            self._settle_attempt(
                dep, invocation, None,
                ServiceUnavailable(f"faas outage in {self.region.key}"))
            return
        attempt_from = self.sim.now
        try:
            # Inlined (yield from) rather than spawned: acquisition is
            # strictly sequential within the attempt, so a child process
            # only added a spawn event plus a join per invocation.
            inst, cold = yield from self._acquire_instance(
                dep, task, fresh=invocation.fresh_instance)
            dep.stats["cold_starts" if cold else "warm_starts"] += 1
            if invocation.started_at is None:
                invocation.started_at = self.sim.now
            ctx = FunctionContext(self, dep, inst, deadline=self.sim.now + dep.timeout_s)
            ctx._trace_task = task
            body = self.sim.spawn(dep.handler(ctx, invocation.payload),
                                  name=f"body:{dep.name}", eager=True)
            watchdog_fired = [False]

            def watchdog() -> None:
                if body.alive:
                    watchdog_fired[0] = True
                    body.interrupt("timeout")

            watchdog_timer = self.sim.call_later(dep.timeout_s, watchdog)
            chaos_timer = None
            # The draw precedes the scope check so a scoped storm (one
            # tenant's functions) consumes the identical stream a
            # global storm would — isolation tests rely on the schedule
            # other substrates see being scope-independent.
            if (self.chaos_crash_prob
                    and self._chaos_rng.random() < self.chaos_crash_prob
                    and (self.chaos_crash_scope is None
                         or self.chaos_crash_scope in dep.name)):
                def chaos() -> None:
                    if body.alive:
                        self.chaos_crashes += 1
                        body.interrupt("chaos-crash")

                chaos_timer = self.sim.call_later(
                    float(self._chaos_rng.exponential(self.chaos_mean_delay_s)),
                    chaos,
                )
            started = self.sim.now
            try:
                result = yield body
                error: Optional[BaseException] = None
            except Interrupt as intr:
                error = FunctionTimeout(str(intr.cause)) if watchdog_fired[0] else intr
                result = None
            except Exception as exc:  # noqa: BLE001 - handler fault
                error = exc
                result = None
            watchdog_timer.cancel()
            if chaos_timer is not None:
                chaos_timer.cancel()
            duration = self.sim.now - started
            billed = self._bill(dep, duration, task)
            inst.last_used = self.sim.now
            dep.warm_pool.append(inst)
            if tracer is not None:
                if error is None:
                    outcome = "ok"
                elif isinstance(error, FunctionTimeout):
                    outcome = "timeout"
                elif isinstance(error, Interrupt):
                    outcome = "crash"
                else:
                    outcome = "error"
                tracer.span("attempt", "faas", task, attempt_from,
                            self.sim.now, fn=dep.name,
                            region=self.region.key,
                            instance=inst.instance_id,
                            attempt=invocation.attempts, outcome=outcome,
                            compute_cost=billed)
        finally:
            self._release_slot()
        self._settle_attempt(dep, invocation, result, error)

    def _settle_attempt(self, dep: _Deployment, invocation: Invocation,
                        result: Any, error: Optional[BaseException]) -> None:
        """Resolve, retry, or dead-letter one finished attempt, and
        report its outcome to the health sink (per attempt, not per
        invocation — the circuit breaker should see every refusal an
        outage produces, not one failure after the retries drain)."""
        if self.health_sink is not None:
            self.health_sink.record(("faas", self.region.key), error is None)
        if error is None:
            invocation.resolve(result)
            return
        if isinstance(error, FunctionTimeout):
            dep.stats["timeouts"] += 1
        else:
            dep.stats["errors"] += 1
        # Errors carrying a ``dlq_disposition`` (e.g. a quarantined
        # poison part) skip the auto-retry ladder: retrying would re-run
        # the whole attempt against the same poisoned transfer, so they
        # park immediately under their distinct disposition, awaiting an
        # operator redrive.
        disposition = getattr(error, "dlq_disposition", None)
        if disposition is None and invocation.attempts <= self.profile.max_retries:
            dep.stats["retries"] += 1
            delay = self.profile.retry_backoff_s * (2 ** (invocation.attempts - 1))
            self.sim.call_later(delay, lambda: self._admit_retry(invocation))
        else:
            if disposition == "corrupted":
                self.quarantined_dead_letters += 1
            self.dead_letters.append((invocation.name, invocation.payload, repr(error)))
            if self.tracer is not None:
                self.tracer.event("dead-letter", "faas",
                                  _task_ref(invocation.payload),
                                  fn=invocation.name, region=self.region.key,
                                  error=repr(error),
                                  disposition=disposition or "failed")
            invocation.fail(InvocationFailed(f"{invocation.name}: {error!r}"))

    def _admit_retry(self, invocation: Invocation) -> None:
        self._admit(invocation)

    def _bill(self, dep: _Deployment, duration_s: float,
              task: Optional[str] = None) -> float:
        cost = self.prices.faas_compute_cost(
            self.provider, dep.config.memory_mb, dep.config.vcpus, duration_s
        )
        per_request = self.prices.faas[self.provider].per_request
        self.ledger.charge(self.sim.now, CostCategory.FAAS_COMPUTE, cost,
                           f"{self.region.key}:{dep.name}", task=task)
        self.ledger.charge(self.sim.now, CostCategory.FAAS_REQUESTS,
                           per_request, f"{self.region.key}:{dep.name}",
                           task=task)
        return cost + per_request


class FunctionContext:
    """Runtime services available to a handler.

    The data-path methods are generators; use them with ``yield from``
    inside handlers.  Each charges the appropriate request, egress, and
    compute-time costs and advances simulated time by the sampled
    request latency and transfer duration.
    """

    def __init__(self, faas: FaasRegion, dep: _Deployment, inst: _Instance,
                 deadline: float):
        self._faas = faas
        self._dep = dep
        self.instance = inst
        self.deadline = deadline
        self.region = faas.region
        self.config = dep.config
        self._client_ready = False
        self.bytes_downloaded = 0
        self.bytes_uploaded = 0
        #: Task attribution for spans and ledger charges issued from
        #: this context (stamped per attempt by the platform).
        self._trace_task: Optional[str] = None

    # -- basics ---------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._faas.sim

    @property
    def now(self) -> float:
        return self._faas.sim.now

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.deadline - self.now)

    def sleep(self, seconds: float) -> SleepRequest:
        """Yieldable sleep — served by the kernel's direct-resume fast
        path rather than a full future (data-path sleeps dominate the
        event count of a replay)."""
        return SleepRequest(seconds)

    def spawn(self, gen, name: str = "") -> Process:
        return self._faas.sim.spawn(gen, name=name)

    # -- metered request plumbing ---------------------------------------------

    def _request_latency(self, bucket: Bucket) -> float:
        provider = bucket.region.provider
        samplers = self._faas._req_latency_samplers
        sampler = samplers.get(provider)
        if sampler is None:
            sampler = samplers[provider] = BufferedSampler(
                _STORE_REQ_LATENCY[provider], self._faas._rng)
        base = sampler.sample()
        if bucket.region.key != self.region.key:
            surcharges = self._faas._wan_surcharges
            surcharge = surcharges.get(bucket.region.key)
            if surcharge is None:
                from repro.simcloud.regions import geo_distance_km

                surcharge = surcharges[bucket.region.key] = (
                    _WAN_RTT_PER_1000KM
                    * geo_distance_km(self.region, bucket.region) / 1000.0)
            base += surcharge
        return base

    def _charge_request(self, bucket: Bucket, kind: str) -> None:
        faas = self._faas
        cached = faas._req_charge_cache.get((bucket, kind))
        if cached is None:
            price = faas.prices.store[bucket.region.provider]
            cached = faas._req_charge_cache[(bucket, kind)] = (
                price.put if kind == "put" else price.get,
                f"{bucket.region.key}:{bucket.name}:{kind}")
        faas.ledger.charge(self.now, CostCategory.STORAGE_REQUESTS, cached[0],
                           cached[1], task=self._trace_task)

    def _charge_egress(self, src: Region, dst: Region, nbytes: int) -> None:
        faas = self._faas
        cost = faas.prices.egress_cost(src, dst, nbytes)
        if cost > 0:
            cache = faas._egress_detail_cache
            detail = cache.get((src.key, dst.key))
            if detail is None:
                detail = cache[(src.key, dst.key)] = f"{src.key}->{dst.key}"
            faas.ledger.charge(self.now, CostCategory.EGRESS, cost, detail,
                               task=self._trace_task)

    def _client_startup(self):
        """First data-path call per invocation pays the S overhead."""
        if not self._client_ready:
            self._client_ready = True
            startup_from = self.now
            yield SleepRequest(self._faas.fabric.sample_startup(self.region.provider))
            if self._faas.tracer is not None:
                self._faas.tracer.span(
                    "S", "phase", self._trace_task, startup_from, self.now,
                    region=self.region.key,
                    instance=self.instance.instance_id)

    def _leg_seconds(self, bucket: Bucket, nbytes: int, upload: bool,
                     concurrency: int) -> float:
        fabric = self._faas.fabric
        peer = bucket.region
        mbps = fabric.path_mbps(self.region, peer, self.config, upload=upload)
        divisor, extra_sigma = fabric.congestion_scale(self.region.provider, concurrency)
        factor = self.instance.channel.next_factor()
        if extra_sigma > 0:
            factor *= fabric.congestion_jitter(extra_sigma)
        seconds = nbytes * 8 / (mbps * 1e6) * divisor / factor
        if fabric._chaos is not None and peer.key != self.region.key:
            seconds += fabric.chaos_penalty_s(self.now, self.region.key,
                                              peer.key)
        return seconds

    def _trace_leg(self, op: str, bucket: Bucket, nbytes: int,
                   started: float) -> None:
        """One C span: a single chunk's transfer leg, with the observed
        effective bandwidth as an attribute."""
        seconds = self.now - started
        self._faas.tracer.span(
            "C", "phase", self._trace_task, started, self.now,
            op=op, bytes=nbytes, region=bucket.region.key,
            instance=self.instance.instance_id,
            mbps=nbytes * 8 / seconds / 1e6 if seconds > 0 else 0.0)

    # -- object storage data path -----------------------------------------------

    def _flip_in_flight(self, op: str, bucket: Bucket, blob: Blob) -> Blob:
        """Injected fault: flip bits of one WAN transfer's payload.

        Only cross-region transfers are exposed (the WAN is the
        unreliable medium the end-to-end argument targets); the chaos
        RNG stream keeps the flip schedule deterministic per seed.
        """
        faas = self._faas
        prob = (faas.chaos_corrupt_get_prob if op == "get"
                else faas.chaos_corrupt_put_prob)
        if (prob <= 0 or blob.size == 0
                or bucket.region.key == self.region.key
                or faas._chaos_rng.random() >= prob):
            return blob
        if op == "get":
            faas.chaos_corrupt_gets += 1
        else:
            faas.chaos_corrupt_puts += 1
        if faas.tracer is not None:
            faas.tracer.event("chaos-corrupt", "chaos", self._trace_task,
                              kind=op, bytes=blob.size,
                              region=bucket.region.key)
        return Blob.fresh(blob.size, tag=f"flip:{op}")

    def get_object(self, bucket: Bucket, key: str, offset: int = 0,
                   length: Optional[int] = None, concurrency: int = 1):
        """Download a (range of an) object into local storage."""
        yield from self._client_startup()
        yield SleepRequest(self._request_latency(bucket))
        blob, version = bucket.get_object(key, offset, length)
        blob = self._flip_in_flight("get", bucket, blob)
        self._charge_request(bucket, "get")
        leg_from = self.now
        yield SleepRequest(self._leg_seconds(bucket, blob.size, upload=False,
                                           concurrency=concurrency))
        if self._faas.tracer is not None:
            self._trace_leg("get", bucket, blob.size, leg_from)
        self._charge_egress(bucket.region, self.region, blob.size)
        self.bytes_downloaded += blob.size
        return blob, version

    def head_object(self, bucket: Bucket, key: str):
        """Metadata-only request (no data transfer)."""
        yield SleepRequest(self._request_latency(bucket))
        self._charge_request(bucket, "get")
        return bucket.head(key)

    def get_object_fused(self, bucket: Bucket, key: str,
                         concurrency: int = 1):
        """Small-object GET with handshake and data legs fused.

        Pays the same total latency as :meth:`get_object` (the same
        draws, in the same per-stream order) but yields once instead
        of twice, halving the kernel events of the dominant small-PUT
        pipeline.  The caller is responsible for eligibility: no chaos
        or corruption hooks armed and no tracer recording.  The one
        observable difference is that the snapshot read is issued at
        request time rather than after the request round-trip, so its
        visibility window opens one request-latency earlier (plus the
        client-startup overhead S when this is the invocation's first
        data-path call — S is folded into the same fused sleep).
        """
        extra = 0.0
        if not self._client_ready:
            self._client_ready = True
            extra = self._faas.fabric.sample_startup(self.region.provider)
        latency = self._request_latency(bucket)
        blob, version = bucket.get_object(key)
        self._charge_request(bucket, "get")
        yield SleepRequest(extra + latency + self._leg_seconds(
            bucket, blob.size, upload=False, concurrency=concurrency))
        self._charge_egress(bucket.region, self.region, blob.size)
        self.bytes_downloaded += blob.size
        return blob, version

    def put_object_fused(self, bucket: Bucket, key: str, blob: Blob,
                         if_match: Optional[str] = None,
                         concurrency: int = 1):
        """Small-object PUT with handshake and data legs fused.

        Timing-identical to :meth:`put_object` (the store mutation
        lands at the same instant, after both legs) with one yield
        instead of two.  Same eligibility contract (and client-startup
        folding) as :meth:`get_object_fused`.
        """
        extra = 0.0
        if not self._client_ready:
            self._client_ready = True
            extra = self._faas.fabric.sample_startup(self.region.provider)
        yield SleepRequest(extra + self._request_latency(bucket)
                           + self._leg_seconds(bucket, blob.size, upload=True,
                                               concurrency=concurrency))
        version = bucket.put_object(key, blob, self.now, if_match=if_match)
        self._charge_request(bucket, "put")
        self._charge_egress(self.region, bucket.region, blob.size)
        self.bytes_uploaded += blob.size
        return version

    def put_object(self, bucket: Bucket, key: str, blob: Blob,
                   if_match: Optional[str] = None, concurrency: int = 1):
        """Upload ``blob`` from local storage to ``bucket/key``."""
        yield from self._client_startup()
        yield SleepRequest(self._request_latency(bucket))
        leg_from = self.now
        yield SleepRequest(self._leg_seconds(bucket, blob.size, upload=True,
                                           concurrency=concurrency))
        if self._faas.tracer is not None:
            self._trace_leg("put", bucket, blob.size, leg_from)
        version = bucket.put_object(key, self._flip_in_flight("put", bucket, blob),
                                    self.now, if_match=if_match)
        self._charge_request(bucket, "put")
        self._charge_egress(self.region, bucket.region, blob.size)
        self.bytes_uploaded += blob.size
        return version

    def delete_object(self, bucket: Bucket, key: str):
        yield SleepRequest(self._request_latency(bucket))
        bucket.delete_object(key, self.now)
        self._charge_request(bucket, "put")
        return None

    def copy_object(self, bucket: Bucket, src_key: str, dst_key: str,
                    if_match: Optional[str] = None):
        """Server-side copy inside one bucket — no WAN transfer."""
        yield SleepRequest(self._request_latency(bucket))
        if if_match is not None and bucket.current_etag(src_key) != if_match:
            from repro.simcloud.objectstore import PreconditionFailed

            self._charge_request(bucket, "put")
            raise PreconditionFailed(f"copy source {src_key} etag mismatch")
        version = bucket.copy_object(src_key, dst_key, self.now)
        self._charge_request(bucket, "put")
        return version

    # -- multipart ----------------------------------------------------------------

    def initiate_multipart(self, bucket: Bucket, key: str,
                           if_match: Optional[str] = None):
        yield SleepRequest(self._request_latency(bucket))
        self._charge_request(bucket, "put")
        return bucket.initiate_multipart(key, if_match=if_match)

    def upload_part(self, bucket: Bucket, upload_id: str, part_number: int,
                    blob: Blob, concurrency: int = 1, pipelined: bool = False):
        """``pipelined=True`` overlaps the request handshake with the
        previous part's data transfer (streaming uploads), so only the
        transfer time itself is paid; the request is still billed."""
        yield from self._client_startup()
        if not pipelined:
            yield SleepRequest(self._request_latency(bucket))
        leg_from = self.now
        yield SleepRequest(self._leg_seconds(bucket, blob.size, upload=True,
                                           concurrency=concurrency))
        if self._faas.tracer is not None:
            self._trace_leg("upload-part", bucket, blob.size, leg_from)
        etag = bucket.upload_part(upload_id, part_number,
                                  self._flip_in_flight("put", bucket, blob))
        self._charge_request(bucket, "put")
        self._charge_egress(self.region, bucket.region, blob.size)
        self.bytes_uploaded += blob.size
        return etag

    def complete_multipart(self, bucket: Bucket, upload_id: str):
        yield SleepRequest(self._request_latency(bucket))
        version = bucket.complete_multipart(upload_id, self.now)
        self._charge_request(bucket, "put")
        return version

    # -- invoking other functions ---------------------------------------------------

    def invoke(self, target: FaasRegion, name: str, payload: Any,
               fresh_instance: bool = False):
        """Asynchronously invoke a function (possibly on another cloud).

        Generator; returns the :class:`Invocation` handle after the
        caller-side API latency elapses.  ``fresh_instance`` forces the
        callee onto a cold-started instance (hedged clones must draw a
        new per-instance speed factor, not re-land on a warm slow one).
        """
        accepted, _ = target.invoke(name, payload, caller_region=self.region,
                                    fresh_instance=fresh_instance)
        invocation = yield accepted
        return invocation
