"""The multi-cloud facade.

A :class:`Cloud` owns one simulator plus every regional service: object
storage buckets, FaaS platforms, serverless KV databases, VM fleets,
workflow timers, the shared WAN fabric, the notification bus, the price
book and the cost ledger.  Experiments construct one Cloud, wire an
AReplica service (or a baseline) onto it, and drive workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cost import CostLedger
from repro.simcloud.faas import FaasProfile, FaasRegion
from repro.simcloud.kvstore import KvProfile, KvTable
from repro.simcloud.network import DEFAULT_PROFILE, NetworkFabric, NetworkProfile
from repro.simcloud.notifications import NotificationBus, NotificationProfile
from repro.simcloud.objectstore import Bucket
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import REGIONS, Region, get_region
from repro.simcloud.rng import RngFactory
from repro.simcloud.sim import Simulator
from repro.simcloud.vm import VmFleet, VmProfile
from repro.simcloud.workflow import WorkflowTimers

__all__ = ["CloudProfiles", "Cloud", "build_default_cloud"]


@dataclass
class CloudProfiles:
    """Bundle of every tunable profile (all default-calibrated)."""

    network: NetworkProfile = None  # type: ignore[assignment]
    faas: FaasProfile = None  # type: ignore[assignment]
    kv: KvProfile = None  # type: ignore[assignment]
    vm: VmProfile = None  # type: ignore[assignment]
    notifications: NotificationProfile = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.network = self.network or DEFAULT_PROFILE
        self.faas = self.faas or FaasProfile()
        self.kv = self.kv or KvProfile()
        self.vm = self.vm or VmProfile()
        self.notifications = self.notifications or NotificationProfile()


class Cloud:
    """All three providers' services over one shared simulator."""

    def __init__(self, seed: int = 0, profiles: Optional[CloudProfiles] = None,
                 keep_cost_entries: bool = False,
                 chaos: Optional[ChaosConfig] = None,
                 kernel: str = "wheel"):
        self.sim = Simulator(kernel=kernel)
        self.rngs = RngFactory(seed)
        self.profiles = profiles or CloudProfiles()
        self.prices = PriceBook()
        self.ledger = CostLedger(keep_entries=keep_cost_entries)
        self.fabric = NetworkFabric(self.rngs, self.profiles.network)
        self.notifications = NotificationBus(self.sim, self.rngs,
                                             self.profiles.notifications)
        self._buckets: dict[tuple[str, str], Bucket] = {}
        self._faas: dict[str, FaasRegion] = {}
        self._kv: dict[tuple[str, str], KvTable] = {}
        self._vms: dict[str, VmFleet] = {}
        self._timers: dict[str, WorkflowTimers] = {}
        self.chaos: Optional[ChaosConfig] = None
        #: Optional HealthTracker every substrate reports outcomes to
        #: (installed by the AReplica service when health is enabled).
        self.health = None
        #: Optional Tracer every substrate emits causal spans/events to
        #: (installed by the AReplica service when tracing is enabled).
        self.tracer = None
        if chaos is not None:
            self.apply_chaos(chaos)

    # -- region helpers --------------------------------------------------------

    @staticmethod
    def region(key: str) -> Region:
        return get_region(key)

    # -- regional services -------------------------------------------------------

    def bucket(self, region_key: str, name: str, versioning: bool = False) -> Bucket:
        """Get or create a bucket; versioning is fixed at creation."""
        region = get_region(region_key)
        cache_key = (region.key, name)
        if cache_key not in self._buckets:
            bucket = Bucket(name, region, versioning=versioning)
            bucket.health_sink = self.health
            if self.chaos is not None:
                bucket.set_chaos(self.chaos,
                                 self._bucket_chaos_rng(region, name))
            self._buckets[cache_key] = bucket
        bucket = self._buckets[cache_key]
        if versioning and not bucket.versioning:
            raise ValueError(f"bucket {name!r} exists without versioning")
        return bucket

    def faas(self, region_key: str) -> FaasRegion:
        region = get_region(region_key)
        if region.key not in self._faas:
            faas = FaasRegion(
                self.sim, region, self.fabric, self.prices, self.ledger,
                self.rngs, self.profiles.faas,
            )
            if self.chaos is not None:
                faas.configure_chaos(self.chaos)
            faas.health_sink = self.health
            faas.tracer = self.tracer
            self._faas[region.key] = faas
        return self._faas[region.key]

    def kv_table(self, region_key: str, name: str) -> KvTable:
        region = get_region(region_key)
        cache_key = (region.key, name)
        if cache_key not in self._kv:
            table = KvTable(
                self.sim, name, region, self.prices, self.ledger, self.rngs,
                self.profiles.kv,
            )
            if self.chaos is not None:
                table.set_chaos(self.chaos, self._kv_chaos_rng(region, name))
            if self.health is not None:
                table.set_health(self.health)
            table.tracer = self.tracer
            self._kv[cache_key] = table
        return self._kv[cache_key]

    def vm_fleet(self, region_key: str) -> VmFleet:
        region = get_region(region_key)
        if region.key not in self._vms:
            self._vms[region.key] = VmFleet(
                self.sim, region, self.fabric, self.prices, self.ledger,
                self.rngs, self.profiles.vm,
            )
        return self._vms[region.key]

    def timers(self, region_key: str) -> WorkflowTimers:
        region = get_region(region_key)
        if region.key not in self._timers:
            self._timers[region.key] = WorkflowTimers(self.sim, self.ledger)
        return self._timers[region.key]

    # -- fault injection ---------------------------------------------------------

    def _kv_chaos_rng(self, region: Region, name: str):
        return self.rngs.stream(f"chaos:kv:{region.key}:{name}")

    def _bucket_chaos_rng(self, region: Region, name: str):
        return self.rngs.stream(f"chaos:store:{region.key}:{name}")

    def apply_chaos(self, chaos: Optional[ChaosConfig]) -> None:
        """Install (or clear, with None) one fault schedule everywhere.

        Covers every substrate already instantiated *and* any created
        afterwards.  Each substrate only arms the hooks its part of the
        config actually needs — an all-zero config is a full clear, so
        chaos-off hot paths keep their single ``is None`` check.
        """
        if chaos is not None and not chaos.enabled:
            chaos = None
        self.chaos = chaos
        self.fabric.set_chaos(chaos, self.rngs.stream("chaos:wan"),
                              clock=lambda: self.sim.now)
        self.notifications.set_chaos(chaos, self.rngs.stream("chaos:notif"))
        for faas in self._faas.values():
            faas.configure_chaos(chaos)
        for (region_key, name), table in self._kv.items():
            table.set_chaos(chaos, self._kv_chaos_rng(get_region(region_key),
                                                      name))
        for (region_key, name), bucket in self._buckets.items():
            bucket.set_chaos(chaos,
                             self._bucket_chaos_rng(get_region(region_key),
                                                    name))

    def set_health(self, tracker) -> None:
        """Install (or clear, with None) one health tracker everywhere.

        Covers substrates already instantiated and any created later
        (the factories consult ``self.health``).
        """
        self.health = tracker
        for faas in self._faas.values():
            faas.health_sink = tracker
        for table in self._kv.values():
            table.set_health(tracker)
        for bucket in self._buckets.values():
            bucket.health_sink = tracker

    def set_tracer(self, tracer) -> None:
        """Install (or clear, with None) one causal tracer everywhere.

        Mirrors :meth:`set_health`: covers substrates already
        instantiated and any created later (the factories consult
        ``self.tracer``), and hooks the cost ledger's sink so every
        subsequent charge lands in the trace.
        """
        self.tracer = tracer
        for faas in self._faas.values():
            faas.tracer = tracer
        for table in self._kv.values():
            table.tracer = tracer
        self.fabric.tracer = tracer
        if tracer is not None:
            tracer.install_cost_sink(self.ledger)
        else:
            self.ledger.sink = None

    def chaos_stats(self) -> dict[str, int]:
        """Aggregate injected-fault counters across every substrate."""
        return {
            "faas_crashes": sum(f.chaos_crashes for f in self._faas.values()),
            "faas_outage_failures": sum(f.chaos_outage_failures
                                        for f in self._faas.values()),
            "notifications_dropped": self.notifications.chaos_dropped,
            "notifications_duplicated": self.notifications.chaos_duplicated,
            "notifications_reordered": self.notifications.chaos_reordered,
            "kv_rejected": sum(t.chaos_rejected for t in self._kv.values()),
            "kv_delayed": sum(t.chaos_delayed for t in self._kv.values()),
            "kv_outage_rejections": sum(t.chaos_outage_rejections
                                        for t in self._kv.values()),
            "wan_stalls": self.fabric.chaos_stalls,
            "wan_blackout_hits": self.fabric.chaos_blackouts,
            "wan_outage_hits": self.fabric.chaos_region_outage_hits,
            "corrupt_get": sum(f.chaos_corrupt_gets
                               for f in self._faas.values()),
            "corrupt_put": sum(f.chaos_corrupt_puts
                               for f in self._faas.values()),
            "corrupt_at_rest": sum(b.chaos_counters["at_rest_rot"]
                                   for b in self._buckets.values()),
            "corrupt_truncated": sum(b.chaos_counters["truncated_reads"]
                                     for b in self._buckets.values()),
            "corrupt_wrong_etag": sum(b.chaos_counters["wrong_etag"]
                                      for b in self._buckets.values()),
        }

    def corruption_injected(self) -> int:
        """Total silent-corruption faults injected so far (all kinds)."""
        stats = self.chaos_stats()
        return (stats["corrupt_get"] + stats["corrupt_put"]
                + stats["corrupt_at_rest"] + stats["corrupt_truncated"]
                + stats["corrupt_wrong_etag"])

    def inject_outage(self, region_key: str, duration_s: float) -> None:
        """Take every bucket in ``region_key`` offline for ``duration_s``
        simulated seconds, starting now (a region-wide storage outage —
        the §1 motivation for cross-cloud replication)."""
        region = get_region(region_key)
        affected = [b for (rk, _), b in self._buckets.items()
                    if rk == region.key]
        for bucket in affected:
            bucket.in_outage = True

        def restore() -> None:
            for bucket in affected:
                bucket.in_outage = False

        self.sim.call_later(duration_s, restore)

    # -- convenience ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until)

    @property
    def now(self) -> float:
        return self.sim.now

    def all_region_keys(self) -> list[str]:
        return sorted(REGIONS)


def build_default_cloud(seed: int = 0, **kwargs) -> Cloud:
    """A Cloud with the default calibrated profiles."""
    return Cloud(seed=seed, **kwargs)
