"""Discrete-event simulation kernel.

A tiny, dependency-free process-based DES in the style of SimPy.  Time
is a float (seconds).  Concurrency is expressed as generator-based
*processes* that yield :class:`Future` objects; the kernel resumes a
process when the future it waits on resolves.

The kernel is fully deterministic: events scheduled for the same
timestamp fire in scheduling order (a monotonically increasing sequence
number breaks ties), and no wall-clock or OS entropy is consulted.

Performance notes (the event loop is the simulator's hottest path):

* Events are plain ``(time, seq, kind, a, b, c)`` records pushed
  straight onto the heap — no per-event closure, and a :class:`Timer`
  handle is only allocated for the public ``call_at``/``call_later``
  API where the caller may want to cancel.
* Zero-delay events (process kick-off, interrupts, callback fan-out,
  same-instant KV responses) bypass ``heapq`` entirely through a FIFO
  ring; a shared sequence counter keeps them correctly interleaved with
  heap events at the same timestamp.
* Cancelled timers are tombstones: they stay in the queue, are skipped
  lazily (never advancing the clock), and the heap is compacted once
  tombstones outnumber live entries.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.sleep(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Future",
    "Process",
    "SleepRequest",
    "DeferredResult",
    "Interrupt",
    "SimulationError",
    "Timer",
]

# Event record kinds (index 2 of a heap record, index 1 of a ring record).
_TIMER = 0      # a: Timer            -> a.fire()
_CALL = 1       # a: fn, b: value, c: exc -> a(b, c)
_RESOLVE = 2    # a: Future, b: value -> a.resolve(b)
_FAIL = 3       # a: Future, b: exc   -> a.fail(b)


class Timer:
    """Handle for a scheduled callback; ``cancel()`` makes it a no-op.

    Cancelled timers are also dropped from the clock-advance horizon:
    :meth:`Simulator.run` never advances time just to fire a dead timer,
    so long-dated safety timeouts (e.g. FaaS watchdogs) do not drag the
    clock forward when the queue drains.
    """

    __slots__ = ("_fn", "_sim")

    def __init__(self, fn: Callable[[], None], sim: Optional["Simulator"] = None):
        self._fn: Optional[Callable[[], None]] = fn
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        return self._fn is None

    def cancel(self) -> None:
        if self._fn is None:
            return
        self._fn = None
        if self._sim is not None:
            self._sim._note_cancelled()

    def fire(self) -> None:
        if self._fn is not None:
            fn, self._fn = self._fn, None
            fn()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. running time backwards)."""


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupter (for example, a FaaS platform passes the string
    ``"timeout"`` when it kills a function that exceeded its execution
    time limit).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Future:
    """A one-shot container for a value produced at some simulated time.

    Processes wait on futures by yielding them.  A future resolves at
    most once, either with a value (:meth:`resolve`) or with an
    exception (:meth:`fail`).  Callbacks added after resolution fire
    immediately.
    """

    __slots__ = ("sim", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception if self._done else None

    def resolve(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        if self._callbacks:
            self._fire()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        if self._callbacks:
            self._fire()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class SleepRequest:
    """A lightweight "resume me after ``delay``" marker.

    Processes may yield a :class:`SleepRequest` instead of a sleep
    future; the kernel then schedules the process's own resumption
    directly, skipping the future allocation and callback chain.  This
    is the hot path for the data-plane latency sleeps (network legs,
    request admission), which account for the majority of all events in
    a trace replay.  Semantics match ``yield sim.sleep(delay)`` exactly:
    same wake-up time, same event ordering (the event record is pushed
    at the same global sequence point), and the process receives
    ``None``.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay if delay > 0.0 else 0.0


class DeferredResult:
    """A yieldable "resume me after ``delay`` with this outcome" marker.

    Like :class:`SleepRequest`, but carrying a value (or an exception to
    raise into the process).  Services whose response is computed at
    admission time and merely *delivered* after a latency — the KV
    store's point operations are the canonical case — yield this
    instead of allocating a future per request.
    """

    __slots__ = ("delay", "value", "exc")

    def __init__(self, delay: float, value: Any = None,
                 exc: Optional[BaseException] = None):
        self.delay = delay if delay > 0.0 else 0.0
        self.value = value
        self.exc = exc


ProcessBody = Generator[Future, Any, Any]


class Process(Future):
    """A running generator-based process.

    A process is itself a future: it resolves with the generator's
    return value, or fails with the exception that escaped it.  Other
    processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_gen", "_waiting_on", "_epoch", "name")

    def __init__(self, sim: "Simulator", gen: ProcessBody, name: str = ""):
        # Inlined Future.__init__ — processes are created in bulk on the
        # hot path (one per request plus one per invocation).
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[[Future], None]] = []
        self._gen = gen
        self._waiting_on: Optional[Future] = None
        # Bumped on every interrupt so that direct wake-ups scheduled by
        # the SleepRequest fast path (which bypass the stale-future
        # check in _on_wait_done) can be recognised as stale.
        self._epoch = 0
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off on the next kernel step at the current time.
        sim._push(sim.now, _CALL, self._step, None, None)

    @property
    def alive(self) -> bool:
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting an already-finished process is a no-op, mirroring
        the semantics of cancelling a completed task.
        """
        if self._done:
            return
        self._epoch += 1
        if self._waiting_on is not None:
            self._waiting_on = None
        self.sim._schedule_call(0.0, self._step, None, Interrupt(cause))

    def _on_wait_done(self, fut: Future) -> None:
        if self._waiting_on is not fut:
            return  # interrupted while waiting; stale wake-up
        self._waiting_on = None
        if fut._exception is not None:
            self._step(None, fut._exception)
        else:
            self._step(fut._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into future
            self.fail(err)
            return
        tt = type(target)
        if tt is SleepRequest:
            sim = self.sim
            sim._push(sim.now + target.delay, _CALL, self._resume,
                      self._epoch, None)
            return
        if tt is DeferredResult:
            sim = self.sim
            sim._push(sim.now + target.delay, _CALL, self._resume_result,
                      target, self._epoch)
            return
        if not isinstance(target, Future):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Future objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def _resume(self, epoch: int, _exc: Optional[BaseException]) -> None:
        """Wake up from a SleepRequest; stale after an interrupt."""
        if epoch != self._epoch or self._done:
            return
        self._step(None, None)

    def _resume_result(self, result: "DeferredResult", epoch: int) -> None:
        """Wake up from a DeferredResult; stale after an interrupt."""
        if epoch != self._epoch or self._done:
            return
        self._step(result.value, result.exc)


class Simulator:
    """The event loop: a priority queue of timestamped event records,
    plus a FIFO ring for zero-delay events at the current time."""

    #: Compact the heap when at least this many tombstones accumulate
    #: and they outnumber the live entries.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap records: (time, seq, kind, a, b, c); seq is unique, so
        # tuple comparison never reaches the payload fields.
        self._heap: list[tuple] = []
        # Ring records: (seq, kind, a, b, c), all due at ``now``.
        self._ring: deque[tuple] = deque()
        self._seq = 0
        self._tombstones = 0

    # -- scheduling ----------------------------------------------------

    def _push(self, time: float, kind: int, a: Any, b: Any, c: Any) -> None:
        """Schedule one event record; zero-delay goes to the ring."""
        self._seq += 1
        if time <= self.now:
            self._ring.append((self._seq, kind, a, b, c))
        else:
            heapq.heappush(self._heap, (time, self._seq, kind, a, b, c))

    def _schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        value: Any,
        exc: Optional[BaseException],
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _CALL, fn, value, exc)

    def schedule_resolve(self, delay: float, fut: Future, value: Any = None) -> None:
        """Resolve ``fut`` with ``value`` after ``delay`` seconds.

        The allocation-free fast path for the ubiquitous "respond after
        some latency" pattern — no closure, no :class:`Timer`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _RESOLVE, fut, value, None)

    def schedule_fail(self, delay: float, fut: Future, exc: BaseException) -> None:
        """Fail ``fut`` with ``exc`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _FAIL, fut, exc, None)

    def schedule_call(self, delay: float, fn: Callable[..., None],
                      a: Any = None, b: Any = None) -> None:
        """Run ``fn(a, b)`` after ``delay`` seconds.

        The allocation-free cousin of :meth:`call_later`: no closure, no
        :class:`Timer`, therefore not cancellable.  Made for high-volume
        callbacks whose two arguments are known up front (e.g. delivering
        a notification event to a handler).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _CALL, fn, a, b)

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` at absolute simulated ``time``; returns a handle."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        timer = Timer(fn, self)
        self._push(time, _TIMER, timer, None, None)
        return timer

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` after ``delay`` simulated seconds; returns a handle."""
        return self.call_at(self.now + delay, fn)

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves after ``delay`` seconds."""
        fut = Future(self)
        self._push(self.now + max(0.0, delay), _RESOLVE, fut, None, None)
        return fut

    def timeout_at(self, time: float) -> Future:
        """Return a future that resolves at absolute ``time``."""
        fut = Future(self)
        self._push(max(self.now, time), _RESOLVE, fut, None, None)
        return fut

    def spawn(self, gen: ProcessBody, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    # -- tombstone management ------------------------------------------

    def _note_cancelled(self) -> None:
        self._tombstones += 1
        heap = self._heap
        if (self._tombstones >= self._COMPACT_MIN
                and self._tombstones * 2 > len(heap)):
            live = [e for e in heap
                    if e[2] != _TIMER or e[3]._fn is not None]
            self._tombstones -= len(heap) - len(live)
            heapq.heapify(live)
            # In place: the drain loop holds a reference to the list.
            heap[:] = live

    def _skip_dead_head(self) -> None:
        """Pop cancelled-timer tombstones sitting at the heap head."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2] == _TIMER and head[3]._fn is None:
                heapq.heappop(heap)
                self._tombstones -= 1
            else:
                break

    # -- combinators ---------------------------------------------------

    def all_of(self, futures: Iterable[Future]) -> Future:
        """Resolve once every input future has resolved.

        The result is the list of individual values in input order.  The
        first failure fails the combined future immediately.
        """
        futures = list(futures)
        combined = Future(self)
        if not futures:
            self.schedule_resolve(0.0, combined, [])
            return combined
        remaining = [len(futures)]

        def on_done(_fut: Future) -> None:
            if combined.done:
                return
            if _fut._exception is not None:
                combined.fail(_fut._exception)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.resolve([f._value for f in futures])

        for f in futures:
            f.add_callback(on_done)
        return combined

    def any_of(self, futures: Iterable[Future]) -> Future:
        """Resolve with (index, value) of the first future to resolve."""
        futures = list(futures)
        if not futures:
            raise SimulationError("any_of requires at least one future")
        combined = Future(self)

        def make_cb(idx: int) -> Callable[[Future], None]:
            def on_done(fut: Future) -> None:
                if combined.done:
                    return
                if fut._exception is not None:
                    combined.fail(fut._exception)
                else:
                    combined.resolve((idx, fut._value))

            return on_done

        for i, f in enumerate(futures):
            f.add_callback(make_cb(i))
        return combined

    # -- running -------------------------------------------------------

    def _dispatch(self, kind: int, a: Any, b: Any, c: Any) -> None:
        if kind == _TIMER:
            a.fire()
        elif kind == _CALL:
            a(b, c)
        elif kind == _RESOLVE:
            a.resolve(b)
        else:
            a.fail(b)

    def step(self) -> bool:
        """Execute the next live event; return False if none remain.

        Ring events (zero-delay, due now) and heap events at the current
        timestamp are merged by sequence number, preserving global
        scheduling order among same-timestamp events.
        """
        ring = self._ring
        heap = self._heap
        while True:
            if ring:
                if heap:
                    head = heap[0]
                    if head[2] == _TIMER and head[3]._fn is None:
                        heapq.heappop(heap)
                        self._tombstones -= 1
                        continue
                    if head[0] <= self.now and head[1] < ring[0][0]:
                        time, _seq, kind, a, b, c = heapq.heappop(heap)
                        if time < self.now:
                            raise SimulationError(
                                "event heap corrupted: time went backwards")
                        self.now = time
                        self._dispatch(kind, a, b, c)
                        return True
                _seq, kind, a, b, c = ring.popleft()
                if kind == _TIMER and a._fn is None:
                    self._tombstones -= 1
                    continue
                self._dispatch(kind, a, b, c)
                return True
            if not heap:
                return False
            time, _seq, kind, a, b, c = heapq.heappop(heap)
            if kind == _TIMER and a._fn is None:
                self._tombstones -= 1
                continue
            if time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = time
            self._dispatch(kind, a, b, c)
            return True

    def _drain(self) -> None:
        """Run until the event queue is empty.

        Semantically ``while self.step(): pass``, but with the event
        pop and dispatch inlined — the two calls per event that
        :meth:`step` costs add up to a measurable share of a replay's
        runtime.  Any change to the merge/tombstone rules here must be
        mirrored in :meth:`step` (the golden ordering tests cover both).
        """
        ring = self._ring
        heap = self._heap
        pop = heapq.heappop
        while True:
            if ring:
                if heap:
                    head = heap[0]
                    if head[2] == _TIMER and head[3]._fn is None:
                        pop(heap)
                        self._tombstones -= 1
                        continue
                    if head[0] <= self.now and head[1] < ring[0][0]:
                        time, _seq, kind, a, b, c = pop(heap)
                        if time < self.now:
                            raise SimulationError(
                                "event heap corrupted: time went backwards")
                        self.now = time
                    else:
                        _seq, kind, a, b, c = ring.popleft()
                        if kind == _TIMER and a._fn is None:
                            self._tombstones -= 1
                            continue
                else:
                    _seq, kind, a, b, c = ring.popleft()
                    if kind == _TIMER and a._fn is None:
                        self._tombstones -= 1
                        continue
            elif heap:
                time, _seq, kind, a, b, c = pop(heap)
                if kind == _TIMER and a._fn is None:
                    self._tombstones -= 1
                    continue
                if time < self.now:
                    raise SimulationError(
                        "event heap corrupted: time went backwards")
                self.now = time
            else:
                return
            if kind == _CALL:
                a(b, c)
            elif kind == _RESOLVE:
                a.resolve(b)
            elif kind == _TIMER:
                a.fire()
            else:
                a.fail(b)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so repeated
        bounded runs compose predictably.
        """
        if until is None:
            self._drain()
            return
        if until < self.now:
            raise SimulationError(f"cannot run until {until} < now {self.now}")
        while True:
            if not self._ring:
                self._skip_dead_head()
                if not self._heap or self._heap[0][0] > until:
                    break
            self.step()
        self.now = until

    def run_process(self, gen: ProcessBody, name: str = "") -> Any:
        """Spawn ``gen``, drain the queue, and return its result."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.done:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlocked waiting?)"
            )
        return proc.value
