"""Discrete-event simulation kernel.

A tiny, dependency-free process-based DES in the style of SimPy.  Time
is a float (seconds).  Concurrency is expressed as generator-based
*processes* that yield :class:`Future` objects; the kernel resumes a
process when the future it waits on resolves.

The kernel is fully deterministic: events scheduled for the same
timestamp fire in scheduling order (a monotonically increasing sequence
number breaks ties), and no wall-clock or OS entropy is consulted.

Performance notes (the event loop is the simulator's hottest path):

* Timed events live in a two-level **hierarchical timer wheel** with a
  binary-heap overflow for the far future: scheduling and cancelling
  are O(1) appends/marks instead of O(log n) heap operations.  Level 0
  has 256 slots of 1/64 s (a 4 s horizon); level 1 has 256 slots of
  4 s (a 1024 s horizon, comfortably covering the FaaS watchdog
  timers that dominate cancelled-timer churn); anything further out
  waits in ``_heap`` until the wheel window reaches it.
* Event payloads are **slab records**: parallel arrays indexed by a
  recycled free list, so the wheel moves small ``(time, seq, idx)``
  keys around and a cancelled timer is a single in-place kind mark —
  no per-event payload tuple, no heap surgery.
* Zero-delay events (process kick-off, interrupts, callback fan-out,
  same-instant KV responses) bypass the wheel entirely through a FIFO
  ring; a shared sequence counter keeps them correctly interleaved with
  wheel events at the same timestamp.
* Cancelled timers are tombstones: their slab record is marked dead in
  place and reaped when its slot loads (never advancing the clock);
  once dead records outnumber live buffered events the wheel is
  compacted.  The tombstone counter is self-checking — it must end
  every compaction non-negative.

The pre-wheel binary-heap kernel is retained as :class:`HeapSimulator`
(``Simulator(kernel="heap")``), kept byte-for-byte order-compatible so
the golden differential suite can assert the wheel changes nothing.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.sleep(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "HeapSimulator",
    "Future",
    "Process",
    "SleepRequest",
    "DeferredResult",
    "Interrupt",
    "SimulationError",
    "Timer",
]

# Event record kinds (slab ``kind`` field / index 1 of a ring record).
_TIMER = 0      # a: Timer            -> a.fire()
_CALL = 1       # a: fn, b: value, c: exc -> a(b, c)
_RESOLVE = 2    # a: Future, b: value -> a.resolve(b)
_FAIL = 3       # a: Future, b: exc   -> a.fail(b)
_WAKE = 4       # a: Process, b: epoch -> a._step(None, None) if still fresh
_DEFER = 5      # a: Process, b: DeferredResult, c: epoch -> deliver outcome
_DEAD = -1      # cancelled in place; reaped when its slot loads

# Timer-wheel geometry.  Level-0 slots are 1/64 s wide (so the slot of
# an event is ``int(time * 64)``); level-1 slots span 256 level-0 slots.
_SLOTS_PER_S = 64.0
_L0_SLOTS = 256
_L1_RATIO_SHIFT = 8     # 256 level-0 slots per level-1 slot
_SLOT_MASK = 255


class Timer:
    """Handle for a scheduled callback; ``cancel()`` makes it a no-op.

    Cancelled timers are also dropped from the clock-advance horizon:
    :meth:`Simulator.run` never advances time just to fire a dead timer,
    so long-dated safety timeouts (e.g. FaaS watchdogs) do not drag the
    clock forward when the queue drains.
    """

    __slots__ = ("_fn", "_sim", "_idx")

    def __init__(self, fn: Callable[[], None], sim: Optional["Simulator"] = None):
        self._fn: Optional[Callable[[], None]] = fn
        self._sim = sim
        #: Slab index of the timer's event record (None when the record
        #: is a ring tuple or the kernel keeps tuple records).
        self._idx: Optional[int] = None

    @property
    def cancelled(self) -> bool:
        return self._fn is None

    def cancel(self) -> None:
        if self._fn is None:
            return
        self._fn = None
        if self._sim is not None:
            self._sim._cancel_timer(self._idx)

    def fire(self) -> None:
        if self._fn is not None:
            fn, self._fn = self._fn, None
            fn()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. running time backwards)."""


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupter (for example, a FaaS platform passes the string
    ``"timeout"`` when it kills a function that exceeded its execution
    time limit).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Future:
    """A one-shot container for a value produced at some simulated time.

    Processes wait on futures by yielding them.  A future resolves at
    most once, either with a value (:meth:`resolve`) or with an
    exception (:meth:`fail`).  Callbacks added after resolution fire
    immediately.
    """

    __slots__ = ("sim", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception if self._done else None

    def resolve(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        if self._callbacks:
            self._fire()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        if self._callbacks:
            self._fire()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class SleepRequest:
    """A lightweight "resume me after ``delay``" marker.

    Processes may yield a :class:`SleepRequest`; the kernel then
    schedules the process's own resumption directly, skipping the
    future allocation and callback chain.  This is the hot path for
    the data-plane latency sleeps (network legs, request admission),
    which account for the majority of all events in a trace replay —
    and it is what :meth:`Simulator.sleep` returns, so every plain
    ``yield sim.sleep(d)`` rides it too.  The process receives
    ``None``, and the wake-up event is pushed at the same global
    sequence point as an eagerly scheduled future would have been.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay if delay > 0.0 else 0.0


#: Shared zero-delay request returned by :meth:`Simulator.sleep` — the
#: "yield the floor" idiom is frequent enough that the allocation shows.
_SLEEP_ZERO = SleepRequest(0.0)


class DeferredResult:
    """A yieldable "resume me after ``delay`` with this outcome" marker.

    Like :class:`SleepRequest`, but carrying a value (or an exception to
    raise into the process).  Services whose response is computed at
    admission time and merely *delivered* after a latency — the KV
    store's point operations are the canonical case — yield this
    instead of allocating a future per request.
    """

    __slots__ = ("delay", "value", "exc")

    def __init__(self, delay: float, value: Any = None,
                 exc: Optional[BaseException] = None):
        self.delay = delay if delay > 0.0 else 0.0
        self.value = value
        self.exc = exc


ProcessBody = Generator[Future, Any, Any]


class Process(Future):
    """A running generator-based process.

    A process is itself a future: it resolves with the generator's
    return value, or fails with the exception that escaped it.  Other
    processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_gen", "_waiting_on", "_epoch", "name")

    def __init__(self, sim: "Simulator", gen: ProcessBody, name: str = "",
                 eager: bool = False):
        # Inlined Future.__init__ — processes are created in bulk on the
        # hot path (one per request plus one per invocation).
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[[Future], None]] = []
        self._gen = gen
        self._waiting_on: Optional[Future] = None
        # Bumped on every interrupt so that direct wake-ups scheduled by
        # the SleepRequest fast path (which bypass the stale-future
        # check in _on_wait_done) can be recognised as stale.
        self._epoch = 0
        self.name = name or getattr(gen, "__name__", "process")
        if eager:
            # Run the first segment synchronously instead of paying a
            # zero-delay kick-off event.  Same timestamp; only the
            # ordering relative to other work at this instant differs,
            # so callers must not depend on running *after* their
            # spawner's current step.
            self._step(None, None)
        else:
            # Kick off on the next kernel step at the current time
            # (inlined zero-delay push — the ring is shared by both
            # kernels).
            sim._seq = seq = sim._seq + 1
            sim._ring.append((seq, _CALL, self._step, None, None))

    @property
    def alive(self) -> bool:
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting an already-finished process is a no-op, mirroring
        the semantics of cancelling a completed task.
        """
        if self._done:
            return
        self._epoch += 1
        if self._waiting_on is not None:
            self._waiting_on = None
        self.sim._schedule_call(0.0, self._step, None, Interrupt(cause))

    def _on_wait_done(self, fut: Future) -> None:
        if self._waiting_on is not fut:
            return  # interrupted while waiting; stale wake-up
        self._waiting_on = None
        if fut._exception is not None:
            self._step(None, fut._exception)
        else:
            self._step(fut._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into future
            self.fail(err)
            return
        if type(target) is SleepRequest:
            # A wake-up is a (process, epoch) slab record — no future, no
            # bound-method closure.  The kernel dispatch checks the epoch
            # so wake-ups scheduled before an interrupt stay stale.
            sim = self.sim
            delay = target.delay
            if delay == 0.0:
                # Inlined zero-delay push: straight onto the FIFO ring.
                sim._seq = seq = sim._seq + 1
                sim._ring.append((seq, _WAKE, self, self._epoch, None))
            else:
                sim._push(sim.now + delay, _WAKE, self, self._epoch, None)
            return
        self._handle_target(target)

    def _handle_target(self, target: Any) -> None:
        """Wire up a yielded wait target (all shapes except SleepRequest,
        which the kernel loops special-case inline)."""
        if type(target) is DeferredResult:
            sim = self.sim
            sim._push(sim.now + target.delay, _DEFER, self, target,
                      self._epoch)
            return
        if not isinstance(target, Future):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Future objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)



class Simulator:
    """The event loop: a hierarchical timer wheel of slab event records,
    plus a FIFO ring for zero-delay events at the current time.

    ``Simulator(kernel="heap")`` returns the legacy single-heap kernel
    (:class:`HeapSimulator`) instead — same semantics, kept for the
    golden differential tests and as a paranoia escape hatch.
    """

    #: Compact the wheel when at least this many dead records are parked
    #: in it and they outnumber the live buffered events.
    _COMPACT_MIN = 64

    def __new__(cls, kernel: str = "wheel"):
        if cls is Simulator and kernel == "heap":
            return object.__new__(HeapSimulator)
        return object.__new__(cls)

    def __init__(self, kernel: str = "wheel") -> None:
        if kernel not in ("wheel", "heap"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.now: float = 0.0
        # Ring records: (seq, kind, a, b, c), all due at ``now``.
        self._ring: deque[tuple] = deque()
        self._seq = 0
        #: Cancelled-but-unreaped timers (all locations).
        self._tombstones = 0
        # -- slab event records (parallel arrays + free list) ----------
        self._slab_kind: list[int] = []
        self._slab_a: list[Any] = []
        self._slab_b: list[Any] = []
        self._slab_c: list[Any] = []
        self._free: list[int] = []
        #: Dead slab records still parked in a wheel structure (the
        #: sweepable subset of ``_tombstones``).
        self._dead_buffered = 0
        # -- timer wheel -----------------------------------------------
        #: Events of the already-open level-0 slot, sorted descending by
        #: (time, seq); the next event to fire is ``_active[-1]``.
        self._active: list[tuple] = []
        self._l0: list[list] = [[] for _ in range(_L0_SLOTS)]
        self._l1: list[list] = [[] for _ in range(_L0_SLOTS)]
        self._n0 = 0            # events parked in _l0
        self._n1 = 0            # events parked in _l1
        self._cur0 = 0          # absolute index of the open level-0 slot
        self._next1 = 1         # next absolute level-1 slot to scatter
        #: Far-future overflow (beyond the level-1 horizon), a plain
        #: heap of (time, seq, idx).
        self._heap: list[tuple] = []

    # -- scheduling ----------------------------------------------------

    def _push(self, time: float, kind: int, a: Any, b: Any, c: Any) -> Optional[int]:
        """Schedule one event record; zero-delay goes to the ring.

        Returns the slab index for wheel-resident records (used by
        :meth:`call_at` to make cancellation an O(1) in-place mark), or
        None for ring records.
        """
        self._seq = seq = self._seq + 1
        if time <= self.now:
            self._ring.append((seq, kind, a, b, c))
            return None
        free = self._free
        if free:
            i = free.pop()
            self._slab_kind[i] = kind
            self._slab_a[i] = a
            self._slab_b[i] = b
            self._slab_c[i] = c
        else:
            i = len(self._slab_kind)
            self._slab_kind.append(kind)
            self._slab_a.append(a)
            self._slab_b.append(b)
            self._slab_c.append(c)
        s = int(time * _SLOTS_PER_S)
        entry = (time, seq, i)
        if s <= self._cur0:
            # Due within the already-open slot: ordered insert into the
            # descending active list (common for sub-16 ms latencies).
            active = self._active
            lo, hi = 0, len(active)
            while lo < hi:
                mid = (lo + hi) >> 1
                if entry < active[mid]:
                    lo = mid + 1
                else:
                    hi = mid
            active.insert(lo, entry)
        elif (s >> _L1_RATIO_SHIFT) < self._next1:
            self._l0[s & _SLOT_MASK].append(entry)
            self._n0 += 1
        else:
            s1 = s >> _L1_RATIO_SHIFT
            if s1 < self._next1 + _L0_SLOTS:
                self._l1[s1 & _SLOT_MASK].append(entry)
                self._n1 += 1
            else:
                heapq.heappush(self._heap, entry)
        return i

    def _schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        value: Any,
        exc: Optional[BaseException],
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _CALL, fn, value, exc)

    def schedule_resolve(self, delay: float, fut: Future, value: Any = None) -> None:
        """Resolve ``fut`` with ``value`` after ``delay`` seconds.

        The allocation-free fast path for the ubiquitous "respond after
        some latency" pattern — no closure, no :class:`Timer`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _RESOLVE, fut, value, None)

    def schedule_fail(self, delay: float, fut: Future, exc: BaseException) -> None:
        """Fail ``fut`` with ``exc`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _FAIL, fut, exc, None)

    def schedule_call(self, delay: float, fn: Callable[..., None],
                      a: Any = None, b: Any = None) -> None:
        """Run ``fn(a, b)`` after ``delay`` seconds.

        The allocation-free cousin of :meth:`call_later`: no closure, no
        :class:`Timer`, therefore not cancellable.  Made for high-volume
        callbacks whose two arguments are known up front (e.g. delivering
        a notification event to a handler).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self.now + delay, _CALL, fn, a, b)

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` at absolute simulated ``time``; returns a handle."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        timer = Timer(fn, self)
        timer._idx = self._push(time, _TIMER, timer, None, None)
        return timer

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` after ``delay`` simulated seconds; returns a handle."""
        return self.call_at(self.now + delay, fn)

    def sleep(self, delay: float) -> SleepRequest:
        """Return a yieldable that resumes the caller after ``delay``.

        Rides the :class:`SleepRequest` direct-resume fast path — no
        future, no callback chain.  The wake-up is scheduled when the
        request is yielded, which for the universal ``yield
        sim.sleep(d)`` idiom is the same sequence point as the eager
        future this method used to allocate.
        """
        if delay <= 0.0:
            return _SLEEP_ZERO
        return SleepRequest(delay)

    def timeout_at(self, time: float) -> Future:
        """Return a future that resolves at absolute ``time``."""
        fut = Future(self)
        self._push(max(self.now, time), _RESOLVE, fut, None, None)
        return fut

    def spawn(self, gen: ProcessBody, name: str = "",
              eager: bool = False) -> Process:
        """Start a new process from a generator.

        ``eager=True`` runs the first segment synchronously (saving the
        zero-delay kick-off event) — only for spawners that don't rely
        on the child starting after the current step completes.
        """
        return Process(self, gen, name=name, eager=eager)

    # -- tombstone management ------------------------------------------

    def _cancel_timer(self, idx: Optional[int]) -> None:
        """A timer was cancelled; mark its slab record dead in place."""
        self._tombstones += 1
        if idx is None:
            return          # ring-resident: reaped lazily at pop
        self._slab_kind[idx] = _DEAD
        self._slab_a[idx] = None    # drop the Timer ref immediately
        dead = self._dead_buffered = self._dead_buffered + 1
        if (dead >= self._COMPACT_MIN
                and dead * 2 > (len(self._active) + self._n0 + self._n1
                                + len(self._heap))):
            self._compact()

    def _reap(self, idx: int) -> None:
        """Recycle one dead slab record pulled out of a queue."""
        self._free.append(idx)
        self._dead_buffered -= 1
        self._tombstones -= 1

    def _compact(self) -> None:
        """Sweep dead records out of every wheel structure.

        Keeps memory bounded under cancelled-timer churn (the FaaS
        watchdog pattern parks hundreds of thousands of dead records in
        level 1 otherwise).  The tombstone bookkeeping is self-checking:
        both counters must end the sweep non-negative.
        """
        kinds = self._slab_kind

        def sweep(bucket: list) -> list:
            live = [e for e in bucket if kinds[e[2]] != _DEAD]
            if len(live) != len(bucket):
                for e in bucket:
                    if kinds[e[2]] == _DEAD:
                        self._reap(e[2])
            return live

        active = sweep(self._active)
        self._active[:] = active
        for slots, count_attr in ((self._l0, "_n0"), (self._l1, "_n1")):
            removed = 0
            for j, bucket in enumerate(slots):
                if not bucket:
                    continue
                live = sweep(bucket)
                if len(live) != len(bucket):
                    removed += len(bucket) - len(live)
                    slots[j] = live
            if removed:
                setattr(self, count_attr, getattr(self, count_attr) - removed)
        heap = self._heap
        live = sweep(heap)
        if len(live) != len(heap):
            heapq.heapify(live)
            heap[:] = live
        if self._tombstones < 0 or self._dead_buffered < 0 \
                or self._n0 < 0 or self._n1 < 0:
            raise SimulationError(
                "tombstone accounting drifted negative after compaction: "
                f"tombstones={self._tombstones} dead={self._dead_buffered} "
                f"n0={self._n0} n1={self._n1}")

    # -- wheel advance --------------------------------------------------

    def _advance_l1(self) -> None:
        """Scatter the next level-1 slot into level 0 and pull any
        overflow events that now fit the level-1 window.  Only called
        with the level-0 window fully drained (``_cur0`` one slot short
        of the boundary), so every scattered event lands in a distinct
        level-0 bucket."""
        k = self._next1
        self._next1 = k + 1
        bucket = self._l1[k & _SLOT_MASK]
        if bucket:
            self._l1[k & _SLOT_MASK] = []
            self._n1 -= len(bucket)
            kinds = self._slab_kind
            l0 = self._l0
            moved = 0
            for e in bucket:
                i = e[2]
                if kinds[i] == _DEAD:
                    self._reap(i)
                    continue
                l0[int(e[0] * _SLOTS_PER_S) & _SLOT_MASK].append(e)
                moved += 1
            self._n0 += moved
        if self._heap:
            self._pull_overflow()

    def _pull_overflow(self) -> None:
        """Move overflow events that fit the level-1 window onto the
        wheel (level 0 if they are inside the level-0 window)."""
        heap = self._heap
        kinds = self._slab_kind
        limit = self._next1 + _L0_SLOTS - 1
        boundary = self._next1 << _L1_RATIO_SHIFT
        while heap:
            s = int(heap[0][0] * _SLOTS_PER_S)
            if (s >> _L1_RATIO_SHIFT) > limit:
                break
            e = heapq.heappop(heap)
            i = e[2]
            if kinds[i] == _DEAD:
                self._reap(i)
                continue
            if s < boundary:
                self._l0[s & _SLOT_MASK].append(e)
                self._n0 += 1
            else:
                self._l1[(s >> _L1_RATIO_SHIFT) & _SLOT_MASK].append(e)
                self._n1 += 1

    def _refill(self) -> bool:
        """Advance the wheel until ``_active`` holds the next batch of
        live events; False when the simulation is out of events.  Never
        advances ``self.now`` — the clock moves only when an event
        fires, so cancelled horizons cannot drag it."""
        l0 = self._l0
        while True:
            if self._n0:
                cur0 = self._cur0
                s = cur0 + 1
                while not l0[s & _SLOT_MASK]:
                    s += 1
                    if s > cur0 + _L0_SLOTS + 1:
                        raise SimulationError(
                            "timer wheel invariant broken: level-0 count "
                            f"{self._n0} but no populated slot in window")
                self._cur0 = s
                bucket = l0[s & _SLOT_MASK]
                l0[s & _SLOT_MASK] = []
                self._n0 -= len(bucket)
                if self._dead_buffered:
                    kinds = self._slab_kind
                    live = [e for e in bucket if kinds[e[2]] != _DEAD]
                    if len(live) != len(bucket):
                        for e in bucket:
                            if kinds[e[2]] == _DEAD:
                                self._reap(e[2])
                        if not live:
                            continue
                    bucket = live
                if len(bucket) > 1:
                    bucket.sort(reverse=True)
                self._active = bucket
                return True
            if self._n1:
                # Level 0 is empty: fast-forward to the next level-1
                # boundary and open that slot.
                self._cur0 = (self._next1 << _L1_RATIO_SHIFT) - 1
                self._advance_l1()
                continue
            heap = self._heap
            kinds = self._slab_kind
            while heap and kinds[heap[0][2]] == _DEAD:
                self._reap(heapq.heappop(heap)[2])
            if not heap:
                return False
            # Jump the whole window to the overflow horizon.
            s = int(heap[0][0] * _SLOTS_PER_S)
            self._cur0 = s - 1
            self._next1 = ((s - 1) >> _L1_RATIO_SHIFT) + 1
            self._pull_overflow()

    # -- combinators ---------------------------------------------------

    def all_of(self, futures: Iterable[Future]) -> Future:
        """Resolve once every input future has resolved.

        The result is the list of individual values in input order.  The
        first failure fails the combined future immediately.
        """
        futures = list(futures)
        combined = Future(self)
        if not futures:
            self.schedule_resolve(0.0, combined, [])
            return combined
        remaining = [len(futures)]

        def on_done(_fut: Future) -> None:
            if combined.done:
                return
            if _fut._exception is not None:
                combined.fail(_fut._exception)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.resolve([f._value for f in futures])

        for f in futures:
            f.add_callback(on_done)
        return combined

    def any_of(self, futures: Iterable[Future]) -> Future:
        """Resolve with (index, value) of the first future to resolve."""
        futures = list(futures)
        if not futures:
            raise SimulationError("any_of requires at least one future")
        combined = Future(self)

        def make_cb(idx: int) -> Callable[[Future], None]:
            def on_done(fut: Future) -> None:
                if combined.done:
                    return
                if fut._exception is not None:
                    combined.fail(fut._exception)
                else:
                    combined.resolve((idx, fut._value))

            return on_done

        for i, f in enumerate(futures):
            f.add_callback(make_cb(i))
        return combined

    # -- running -------------------------------------------------------

    def _dispatch(self, kind: int, a: Any, b: Any, c: Any) -> None:
        if kind == _WAKE:
            if b == a._epoch:
                a._step(None, None)
        elif kind == _DEFER:
            if c == a._epoch and not a._done:
                a._step(b.value, b.exc)
        elif kind == _CALL:
            a(b, c)
        elif kind == _RESOLVE:
            a.resolve(b)
        elif kind == _TIMER:
            a.fire()
        else:
            a.fail(b)

    def step(self) -> bool:
        """Execute the next live event; return False if none remain.

        Ring events (zero-delay, due now) and wheel events at the
        current timestamp are merged by sequence number, preserving
        global scheduling order among same-timestamp events.
        """
        ring = self._ring
        kinds = self._slab_kind
        while True:
            active = self._active
            if ring:
                if active:
                    entry = active[-1]
                    i = entry[2]
                    if kinds[i] == _DEAD:
                        active.pop()
                        self._reap(i)
                        continue
                    if entry[0] <= self.now and entry[1] < ring[0][0]:
                        active.pop()
                        return self._fire_record(entry)
                seq, kind, a, b, c = ring.popleft()
                if kind == _TIMER and a._fn is None:
                    self._tombstones -= 1
                    continue
                self._dispatch(kind, a, b, c)
                return True
            if active:
                entry = active[-1]
                i = entry[2]
                if kinds[i] == _DEAD:
                    active.pop()
                    self._reap(i)
                    continue
                active.pop()
                return self._fire_record(entry)
            if not self._refill():
                return False

    def _fire_record(self, entry: tuple) -> bool:
        """Advance the clock to a live slab event and dispatch it."""
        time = entry[0]
        if time < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = time
        i = entry[2]
        kind = self._slab_kind[i]
        a = self._slab_a[i]
        b = self._slab_b[i]
        c = self._slab_c[i]
        self._slab_a[i] = None
        self._slab_b[i] = None
        self._slab_c[i] = None
        self._free.append(i)
        self._dispatch(kind, a, b, c)
        return True

    def _drain(self) -> None:
        """Run until the event queue is empty.

        Semantically ``while self.step(): pass``, but with the event
        pop, slab access, dispatch, *and the process-wake fast path*
        (generator send + re-schedule of the next sleep) inlined — the
        call frames that :meth:`step` pays per event add up to a large
        share of a replay's runtime.  Any change to the merge/tombstone
        rules here must be mirrored in :meth:`step` (the golden
        ordering and differential tests cover both).

        Loop shape: the outer iteration establishes the next live wheel
        event, then (a) fires the batch of ring events due now — gated
        by the wheel event's sequence number so same-timestamp ordering
        is global — or (b) fires the wheel event.  Dispatches during a
        ring batch can only append ring events with larger sequence
        numbers or park wheel events strictly in the future, so the
        gate computed at batch start stays valid throughout.

        Two scheduling shortcuts, both order-invisible:

        * a woken process that immediately sleeps again reuses its
          just-fired slab slot verbatim (same kind/process/epoch — zero
          field writes);
        * a zero-delay sleep yielded when *nothing else is runnable at
          the current instant* resumes the process directly instead of
          round-tripping through the ring — it would have been the very
          next event regardless.
        """
        ring = self._ring
        kinds = self._slab_kind
        slab_a = self._slab_a
        slab_b = self._slab_b
        slab_c = self._slab_c
        free = self._free
        l0 = self._l0
        l1 = self._l1
        heappush = heapq.heappush
        sleep_cls = SleepRequest
        deferred_cls = DeferredResult
        active = self._active
        slot_mul = _SLOTS_PER_S
        mask = _SLOT_MASK
        l1_shift = _L1_RATIO_SHIFT
        l0_slots = _L0_SLOTS
        # Read-only mirrors: _cur0/_next1 are only mutated by _refill
        # (and its helpers), whose sole call site below re-syncs them.
        cur0 = self._cur0
        next1 = self._next1
        while True:
            e = None
            while active:
                e = active[-1]
                i = e[2]
                if kinds[i] != _DEAD:
                    break
                active.pop()
                free.append(i)
                self._dead_buffered -= 1
                self._tombstones -= 1
                e = None
            if ring:
                now = self.now
                gate = e[1] if (e is not None and e[0] <= now) else None
                progressed = False
                while ring:
                    r = ring[0]
                    if gate is not None and gate < r[0]:
                        break
                    ring.popleft()
                    progressed = True
                    kind = r[1]
                    a = r[2]
                    if kind == _WAKE:
                        if r[3] != a._epoch or a._done:
                            continue
                        while True:
                            try:
                                target = a._gen.send(None)
                            except StopIteration as stop:
                                a.resolve(stop.value)
                                break
                            except BaseException as err:  # noqa: BLE001
                                a.fail(err)
                                break
                            if target.__class__ is sleep_cls:
                                delay = target.delay
                                if delay == 0.0:
                                    if not ring and gate is None:
                                        continue  # sole runnable: resume now
                                    self._seq = seq = self._seq + 1
                                    ring.append((seq, _WAKE, a, a._epoch,
                                                 None))
                                    break
                                self._seq = seq = self._seq + 1
                                time = now + delay
                                if free:
                                    i = free.pop()
                                    kinds[i] = _WAKE
                                    slab_a[i] = a
                                    slab_b[i] = a._epoch
                                else:
                                    i = len(kinds)
                                    kinds.append(_WAKE)
                                    slab_a.append(a)
                                    slab_b.append(a._epoch)
                                    slab_c.append(None)
                                s = int(time * slot_mul)
                                entry = (time, seq, i)
                                if s <= cur0:
                                    lo, hi = 0, len(active)
                                    while lo < hi:
                                        mid = (lo + hi) >> 1
                                        if entry < active[mid]:
                                            lo = mid + 1
                                        else:
                                            hi = mid
                                    active.insert(lo, entry)
                                elif (s >> l1_shift) < next1:
                                    l0[s & mask].append(entry)
                                    self._n0 += 1
                                else:
                                    s1 = s >> l1_shift
                                    if s1 < next1 + l0_slots:
                                        l1[s1 & mask].append(entry)
                                        self._n1 += 1
                                    else:
                                        heappush(self._heap, entry)
                                break
                            a._handle_target(target)
                            break
                    elif kind == _DEFER:
                        if r[4] == a._epoch and not a._done:
                            d = r[3]
                            a._step(d.value, d.exc)
                    elif kind == _CALL:
                        a(r[3], r[4])
                    elif kind == _TIMER:
                        fn = a._fn
                        if fn is None:
                            self._tombstones -= 1
                        else:
                            a._fn = None
                            fn()
                    elif kind == _RESOLVE:
                        a.resolve(r[3])
                    else:
                        a.fail(r[3])
                if progressed:
                    continue
                # The gate blocked the very first ring event: the due
                # wheel event fires first; fall through.
            if e is None:
                if not self._refill():
                    return
                active = self._active
                cur0 = self._cur0
                next1 = self._next1
                continue
            # Fire the next wheel event.  Slab fields are NOT cleared on
            # fire — they are overwritten at the next allocation of the
            # slot.
            active.pop()
            time = e[0]
            if time < self.now:
                raise SimulationError(
                    "event queue corrupted: time went backwards")
            self.now = time
            i = e[2]
            kind = kinds[i]
            a = slab_a[i]
            if kind == _WAKE or kind == _DEFER:
                # Merged process-resume fast path: a timed wake delivers
                # None, a deferred result delivers its payload; both
                # then route the process's next wait inline, reusing
                # slot i for single-event waits (a field rewrite at
                # most — no free-list round trip).
                if kind == _WAKE:
                    epoch = slab_b[i]
                    if epoch != a._epoch or a._done:
                        free.append(i)
                        continue
                    val = err = None
                else:
                    epoch = slab_c[i]
                    if epoch != a._epoch or a._done:
                        free.append(i)
                        continue
                    d = slab_b[i]
                    val = d.value
                    err = d.exc
                while True:
                    try:
                        if err is not None:
                            target = a._gen.throw(err)
                        else:
                            target = a._gen.send(val)
                    except StopIteration as stop:
                        free.append(i)
                        a.resolve(stop.value)
                        break
                    except BaseException as err2:  # noqa: BLE001
                        free.append(i)
                        a.fail(err2)
                        break
                    val = err = None
                    cls = target.__class__
                    if cls is sleep_cls:
                        delay = target.delay
                        if delay == 0.0:
                            if not ring and not (active
                                                 and active[-1][0] <= time):
                                continue  # sole runnable: resume now
                            self._seq = seq = self._seq + 1
                            free.append(i)
                            ring.append((seq, _WAKE, a, epoch, None))
                            break
                        # Reuse slot i in place (rewrite fields only if
                        # it fired as a deferred-result record).
                        self._seq = seq = self._seq + 1
                        if kind == _DEFER:
                            kinds[i] = kind = _WAKE
                            slab_b[i] = epoch
                        time = time + delay
                        s = int(time * slot_mul)
                        entry = (time, seq, i)
                        if s <= cur0:
                            lo, hi = 0, len(active)
                            while lo < hi:
                                mid = (lo + hi) >> 1
                                if entry < active[mid]:
                                    lo = mid + 1
                                else:
                                    hi = mid
                            active.insert(lo, entry)
                        elif (s >> l1_shift) < next1:
                            l0[s & mask].append(entry)
                            self._n0 += 1
                        else:
                            s1 = s >> l1_shift
                            if s1 < next1 + l0_slots:
                                l1[s1 & mask].append(entry)
                                self._n1 += 1
                            else:
                                heappush(self._heap, entry)
                        break
                    if cls is deferred_cls:
                        delay = target.delay
                        self._seq = seq = self._seq + 1
                        if delay == 0.0:
                            free.append(i)
                            ring.append((seq, _DEFER, a, target, epoch))
                            break
                        if kind == _WAKE:
                            kinds[i] = kind = _DEFER
                        slab_b[i] = target
                        slab_c[i] = epoch
                        time = time + delay
                        s = int(time * slot_mul)
                        entry = (time, seq, i)
                        if s <= cur0:
                            lo, hi = 0, len(active)
                            while lo < hi:
                                mid = (lo + hi) >> 1
                                if entry < active[mid]:
                                    lo = mid + 1
                                else:
                                    hi = mid
                            active.insert(lo, entry)
                        elif (s >> l1_shift) < next1:
                            l0[s & mask].append(entry)
                            self._n0 += 1
                        else:
                            s1 = s >> l1_shift
                            if s1 < next1 + l0_slots:
                                l1[s1 & mask].append(entry)
                                self._n1 += 1
                            else:
                                heappush(self._heap, entry)
                        break
                    free.append(i)
                    a._handle_target(target)
                    break
            elif kind == _TIMER:
                free.append(i)
                fn = a._fn
                if fn is None:
                    self._tombstones -= 1
                else:
                    a._fn = None
                    fn()
            elif kind == _CALL:
                b = slab_b[i]
                c = slab_c[i]
                free.append(i)
                a(b, c)
            elif kind == _RESOLVE:
                b = slab_b[i]
                free.append(i)
                a.resolve(b)
            else:
                b = slab_b[i]
                free.append(i)
                a.fail(b)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so repeated
        bounded runs compose predictably.
        """
        if until is None:
            self._drain()
            return
        if until < self.now:
            raise SimulationError(f"cannot run until {until} < now {self.now}")
        kinds = self._slab_kind
        while True:
            if not self._ring:
                active = self._active
                while active and kinds[active[-1][2]] == _DEAD:
                    self._reap(active.pop()[2])
                if not active:
                    if not self._refill():
                        break
                    continue
                if active[-1][0] > until:
                    break
            self.step()
        self.now = until

    def run_process(self, gen: ProcessBody, name: str = "") -> Any:
        """Spawn ``gen``, drain the queue, and return its result."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.done:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlocked waiting?)"
            )
        return proc.value


class HeapSimulator(Simulator):
    """The legacy single-binary-heap kernel (pre timer wheel).

    Kept behind ``Simulator(kernel="heap")`` so the golden differential
    suite can assert the wheel kernel reproduces its event order, chaos
    stats, and cost ledgers byte for byte.  Heap records are the
    original ``(time, seq, kind, a, b, c)`` tuples; cancelled timers
    are lazily skipped tombstones with the same self-checking
    accounting as the wheel."""

    def __init__(self, kernel: str = "heap") -> None:
        self.now = 0.0
        self._heap: list[tuple] = []
        self._ring: deque[tuple] = deque()
        self._seq = 0
        self._tombstones = 0

    # -- scheduling ----------------------------------------------------

    def _push(self, time: float, kind: int, a: Any, b: Any, c: Any) -> Optional[int]:
        self._seq += 1
        if time <= self.now:
            self._ring.append((self._seq, kind, a, b, c))
        else:
            heapq.heappush(self._heap, (time, self._seq, kind, a, b, c))
        return None

    # -- tombstone management ------------------------------------------

    def _cancel_timer(self, idx: Optional[int]) -> None:
        self._tombstones += 1
        heap = self._heap
        if (self._tombstones >= self._COMPACT_MIN
                and self._tombstones * 2 > len(heap)):
            live = [e for e in heap
                    if e[2] != _TIMER or e[3]._fn is not None]
            self._tombstones -= len(heap) - len(live)
            if self._tombstones < 0:
                raise SimulationError(
                    "tombstone accounting drifted negative after compaction: "
                    f"tombstones={self._tombstones}")
            heapq.heapify(live)
            # In place: the drain loop holds a reference to the list.
            heap[:] = live

    def _skip_dead_head(self) -> None:
        """Pop cancelled-timer tombstones sitting at the heap head."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2] == _TIMER and head[3]._fn is None:
                heapq.heappop(heap)
                self._tombstones -= 1
            else:
                break

    # -- running -------------------------------------------------------

    def step(self) -> bool:
        ring = self._ring
        heap = self._heap
        while True:
            if ring:
                if heap:
                    head = heap[0]
                    if head[2] == _TIMER and head[3]._fn is None:
                        heapq.heappop(heap)
                        self._tombstones -= 1
                        continue
                    if head[0] <= self.now and head[1] < ring[0][0]:
                        time, _seq, kind, a, b, c = heapq.heappop(heap)
                        if time < self.now:
                            raise SimulationError(
                                "event heap corrupted: time went backwards")
                        self.now = time
                        self._dispatch(kind, a, b, c)
                        return True
                _seq, kind, a, b, c = ring.popleft()
                if kind == _TIMER and a._fn is None:
                    self._tombstones -= 1
                    continue
                self._dispatch(kind, a, b, c)
                return True
            if not heap:
                return False
            time, _seq, kind, a, b, c = heapq.heappop(heap)
            if kind == _TIMER and a._fn is None:
                self._tombstones -= 1
                continue
            if time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = time
            self._dispatch(kind, a, b, c)
            return True

    def _drain(self) -> None:
        ring = self._ring
        heap = self._heap
        pop = heapq.heappop
        while True:
            if ring:
                if heap:
                    head = heap[0]
                    if head[2] == _TIMER and head[3]._fn is None:
                        pop(heap)
                        self._tombstones -= 1
                        continue
                    if head[0] <= self.now and head[1] < ring[0][0]:
                        time, _seq, kind, a, b, c = pop(heap)
                        if time < self.now:
                            raise SimulationError(
                                "event heap corrupted: time went backwards")
                        self.now = time
                    else:
                        _seq, kind, a, b, c = ring.popleft()
                        if kind == _TIMER and a._fn is None:
                            self._tombstones -= 1
                            continue
                else:
                    _seq, kind, a, b, c = ring.popleft()
                    if kind == _TIMER and a._fn is None:
                        self._tombstones -= 1
                        continue
            elif heap:
                time, _seq, kind, a, b, c = pop(heap)
                if kind == _TIMER and a._fn is None:
                    self._tombstones -= 1
                    continue
                if time < self.now:
                    raise SimulationError(
                        "event heap corrupted: time went backwards")
                self.now = time
            else:
                return
            if kind == _WAKE:
                if b == a._epoch:
                    a._step(None, None)
            elif kind == _DEFER:
                if c == a._epoch and not a._done:
                    a._step(b.value, b.exc)
            elif kind == _CALL:
                a(b, c)
            elif kind == _RESOLVE:
                a.resolve(b)
            elif kind == _TIMER:
                a.fire()
            else:
                a.fail(b)

    def run(self, until: Optional[float] = None) -> None:
        if until is None:
            self._drain()
            return
        if until < self.now:
            raise SimulationError(f"cannot run until {until} < now {self.now}")
        while True:
            if not self._ring:
                self._skip_dead_head()
                if not self._heap or self._heap[0][0] > until:
                    break
            self.step()
        self.now = until
