"""Discrete-event simulation kernel.

A tiny, dependency-free process-based DES in the style of SimPy.  Time
is a float (seconds).  Concurrency is expressed as generator-based
*processes* that yield :class:`Future` objects; the kernel resumes a
process when the future it waits on resolves.

The kernel is fully deterministic: events scheduled for the same
timestamp fire in scheduling order (a monotonically increasing sequence
number breaks ties), and no wall-clock or OS entropy is consulted.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.sleep(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("a", 2.0))
>>> _ = sim.spawn(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Future",
    "Process",
    "Interrupt",
    "SimulationError",
    "Timer",
]


class Timer:
    """Handle for a scheduled callback; ``cancel()`` makes it a no-op.

    Cancelled timers are also dropped from the clock-advance horizon:
    :meth:`Simulator.run` never advances time just to fire a dead timer,
    so long-dated safety timeouts (e.g. FaaS watchdogs) do not drag the
    clock forward when the queue drains.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]):
        self._fn: Optional[Callable[[], None]] = fn

    @property
    def cancelled(self) -> bool:
        return self._fn is None

    def cancel(self) -> None:
        self._fn = None

    def fire(self) -> None:
        if self._fn is not None:
            fn, self._fn = self._fn, None
            fn()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. running time backwards)."""


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    The ``cause`` attribute carries an arbitrary payload supplied by the
    interrupter (for example, a FaaS platform passes the string
    ``"timeout"`` when it kills a function that exceeded its execution
    time limit).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Future:
    """A one-shot container for a value produced at some simulated time.

    Processes wait on futures by yielding them.  A future resolves at
    most once, either with a value (:meth:`resolve`) or with an
    exception (:meth:`fail`).  Callbacks added after resolution fire
    immediately.
    """

    __slots__ = ("sim", "_done", "_value", "_exception", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception if self._done else None

    def resolve(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


ProcessBody = Generator[Future, Any, Any]


class Process(Future):
    """A running generator-based process.

    A process is itself a future: it resolves with the generator's
    return value, or fails with the exception that escaped it.  Other
    processes may therefore ``yield`` a process to join it.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: ProcessBody, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Future] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off on the next kernel step at the current time.
        sim._schedule_call(0.0, self._step, None, None)

    @property
    def alive(self) -> bool:
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting an already-finished process is a no-op, mirroring
        the semantics of cancelling a completed task.
        """
        if self._done:
            return
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
        self.sim._schedule_call(0.0, self._step, None, Interrupt(cause))

    def _on_wait_done(self, fut: Future) -> None:
        if self._waiting_on is not fut:
            return  # interrupted while waiting; stale wake-up
        self._waiting_on = None
        if fut._exception is not None:
            self._step(None, fut._exception)
        else:
            self._step(fut._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate into future
            self.fail(err)
            return
        if not isinstance(target, Future):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Future objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = 0

    # -- scheduling ----------------------------------------------------

    def _schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        value: Any,
        exc: Optional[BaseException],
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.call_later(delay, lambda: fn(value, exc))

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` at absolute simulated ``time``; returns a handle."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        timer = Timer(fn)
        heapq.heappush(self._heap, (time, self._seq, timer))
        return timer

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn()`` after ``delay`` simulated seconds; returns a handle."""
        return self.call_at(self.now + delay, fn)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves after ``delay`` seconds."""
        fut = Future(self)
        self.call_later(max(0.0, delay), lambda: fut.resolve(None) if not fut.done else None)
        return fut

    def timeout_at(self, time: float) -> Future:
        """Return a future that resolves at absolute ``time``."""
        fut = Future(self)
        self.call_at(max(self.now, time), lambda: fut.resolve(None) if not fut.done else None)
        return fut

    def spawn(self, gen: ProcessBody, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    # -- combinators ---------------------------------------------------

    def all_of(self, futures: Iterable[Future]) -> Future:
        """Resolve once every input future has resolved.

        The result is the list of individual values in input order.  The
        first failure fails the combined future immediately.
        """
        futures = list(futures)
        combined = Future(self)
        if not futures:
            self.call_later(0.0, lambda: combined.resolve([]))
            return combined
        remaining = [len(futures)]

        def on_done(_fut: Future) -> None:
            if combined.done:
                return
            if _fut._exception is not None:
                combined.fail(_fut._exception)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.resolve([f._value for f in futures])

        for f in futures:
            f.add_callback(on_done)
        return combined

    def any_of(self, futures: Iterable[Future]) -> Future:
        """Resolve with (index, value) of the first future to resolve."""
        futures = list(futures)
        if not futures:
            raise SimulationError("any_of requires at least one future")
        combined = Future(self)

        def make_cb(idx: int) -> Callable[[Future], None]:
            def on_done(fut: Future) -> None:
                if combined.done:
                    return
                if fut._exception is not None:
                    combined.fail(fut._exception)
                else:
                    combined.resolve((idx, fut._value))

            return on_done

        for i, f in enumerate(futures):
            f.add_callback(make_cb(i))
        return combined

    # -- running -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event; return False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        time, _seq, timer = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = time
        timer.fire()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so repeated
        bounded runs compose predictably.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise SimulationError(f"cannot run until {until} < now {self.now}")
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0][0] > until:
                break
            self.step()
        self.now = until

    def run_process(self, gen: ProcessBody, name: str = "") -> Any:
        """Spawn ``gen``, drain the queue, and return its result."""
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.done:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlocked waiting?)"
            )
        return proc.value
