"""Price book for the three simulated clouds.

All prices are taken from the providers' public list prices circa the
paper's evaluation (and the figures the paper itself quotes, e.g.
DynamoDB at $0.625 per million writes in us-east-1).  Prices are USD.

The egress model follows each provider's published bandwidth pricing
structure:

* intra-region transfers are free;
* same-provider inter-region transfers are billed at a reduced
  backbone rate that grows with continental distance;
* cross-provider transfers are billed at the source provider's
  internet egress rate (data leaving for a competitor always goes over
  the public internet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simcloud.regions import Provider, Region

__all__ = ["FaasPrice", "VmPrice", "KvPrice", "ObjectStorePrice", "PriceBook"]

GIB = 1024**3
GB = 10**9


@dataclass(frozen=True)
class FaasPrice:
    """Serverless compute pricing for one platform."""

    gb_second: float          # $ per GiB-second of configured memory
    vcpu_second: float        # $ per vCPU-second (GCP bills CPU separately)
    per_request: float        # $ per invocation
    min_billed_ms: float = 1.0


@dataclass(frozen=True)
class VmPrice:
    """VM pricing for one platform (Skyplane's substrate)."""

    per_hour: float
    min_billed_seconds: float = 60.0


@dataclass(frozen=True)
class KvPrice:
    """Serverless NoSQL pricing (per single-item operation)."""

    write: float
    read: float


@dataclass(frozen=True)
class ObjectStorePrice:
    """Object storage request + capacity pricing."""

    put: float                 # $ per PUT/COPY/POST/LIST request
    get: float                 # $ per GET request
    gb_month: float            # $ per GB-month stored
    rtc_fee_per_gb: float = 0.0  # S3 Replication Time Control data fee


# -- platform price tables ------------------------------------------------

FAAS_PRICES: dict[str, FaasPrice] = {
    # AWS Lambda: $0.0000166667/GB-s, $0.20 per 1M requests.
    Provider.AWS: FaasPrice(gb_second=1.66667e-5, vcpu_second=0.0, per_request=2.0e-7),
    # Azure Functions (consumption): $0.000016/GB-s, $0.20 per 1M.
    Provider.AZURE: FaasPrice(gb_second=1.6e-5, vcpu_second=0.0, per_request=2.0e-7),
    # Cloud Run functions: $0.0000025/GiB-s + $0.000024/vCPU-s, $0.40/M.
    Provider.GCP: FaasPrice(gb_second=2.5e-6, vcpu_second=2.4e-5, per_request=4.0e-7),
}

VM_PRICES: dict[str, VmPrice] = {
    # Roughly the general-purpose instance classes Skyplane provisions.
    Provider.AWS: VmPrice(per_hour=1.65, min_billed_seconds=60.0),
    Provider.AZURE: VmPrice(per_hour=1.90, min_billed_seconds=60.0),
    Provider.GCP: VmPrice(per_hour=1.50, min_billed_seconds=60.0),
}

KV_PRICES: dict[str, KvPrice] = {
    # DynamoDB on-demand (the paper quotes $0.6250 per million writes).
    Provider.AWS: KvPrice(write=6.25e-7, read=1.25e-7),
    # Cosmos DB serverless, approximated per point operation.
    Provider.AZURE: KvPrice(write=8.0e-7, read=2.0e-7),
    # Firestore: $0.108 per 100k writes, $0.036 per 100k reads -> pricier.
    Provider.GCP: KvPrice(write=1.08e-6, read=3.6e-7),
}

STORE_PRICES: dict[str, ObjectStorePrice] = {
    Provider.AWS: ObjectStorePrice(
        put=5.0e-6, get=4.0e-7, gb_month=0.023, rtc_fee_per_gb=0.015
    ),
    Provider.AZURE: ObjectStorePrice(put=6.5e-6, get=5.2e-7, gb_month=0.018),
    Provider.GCP: ObjectStorePrice(put=5.0e-6, get=4.0e-7, gb_month=0.020),
}

# Same-provider inter-region backbone $/GB by (src continent, dst continent).
_INTER_REGION_EGRESS: dict[str, dict[tuple[str, str], float]] = {
    Provider.AWS: {("same", "same"): 0.02, ("na", "eu"): 0.02, ("na", "ap"): 0.02,
                   ("eu", "ap"): 0.02, ("eu", "na"): 0.02, ("ap", "na"): 0.09,
                   ("ap", "eu"): 0.09},
    Provider.AZURE: {("same", "same"): 0.02, ("na", "eu"): 0.05, ("na", "ap"): 0.06,
                     ("eu", "ap"): 0.06, ("eu", "na"): 0.05, ("ap", "na"): 0.08,
                     ("ap", "eu"): 0.08},
    Provider.GCP: {("same", "same"): 0.01, ("na", "eu"): 0.05, ("na", "ap"): 0.08,
                   ("eu", "ap"): 0.08, ("eu", "na"): 0.05, ("ap", "na"): 0.08,
                   ("ap", "eu"): 0.08},
}

# Internet egress $/GB (used for cross-provider transfers).
_INTERNET_EGRESS: dict[str, float] = {
    Provider.AWS: 0.09,
    Provider.AZURE: 0.087,
    Provider.GCP: 0.12,
}


@dataclass(frozen=True)
class PriceBook:
    """Resolves prices for any metered operation in the simulation."""

    faas: dict[str, FaasPrice] = field(default_factory=lambda: dict(FAAS_PRICES))
    vm: dict[str, VmPrice] = field(default_factory=lambda: dict(VM_PRICES))
    kv: dict[str, KvPrice] = field(default_factory=lambda: dict(KV_PRICES))
    store: dict[str, ObjectStorePrice] = field(default_factory=lambda: dict(STORE_PRICES))

    def egress_per_gb(self, src: Region, dst: Region) -> float:
        """Data transfer price for moving bytes out of ``src`` to ``dst``."""
        if src.key == dst.key:
            return 0.0
        if src.provider != dst.provider:
            return _INTERNET_EGRESS[src.provider]
        table = _INTER_REGION_EGRESS[src.provider]
        if src.continent == dst.continent:
            return table[("same", "same")]
        return table[(src.continent, dst.continent)]

    def egress_cost(self, src: Region, dst: Region, nbytes: int) -> float:
        return self.egress_per_gb(src, dst) * nbytes / GB

    def faas_compute_cost(
        self, provider: str, memory_mb: int, vcpus: float, duration_s: float
    ) -> float:
        p = self.faas[provider]
        billed = max(duration_s, p.min_billed_ms / 1000.0)
        return (memory_mb / 1024.0) * billed * p.gb_second + vcpus * billed * p.vcpu_second

    def vm_cost(self, provider: str, duration_s: float) -> float:
        p = self.vm[provider]
        return max(duration_s, p.min_billed_seconds) * p.per_hour / 3600.0
