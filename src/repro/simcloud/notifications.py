"""Cloud event notification service.

When an object is created or deleted, the platform generates a
JSON-format notification delivered to subscribed functions after a
platform-dependent delay ``T_n`` (the paper's notation in §5.3).  The
SLO math in the strategy planner subtracts this delay from the user's
budget, so the delivery delay distribution is part of the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.simcloud.objectstore import Bucket, ObjectEvent
from repro.simcloud.regions import Provider
from repro.simcloud.rng import BufferedSampler, Dist, RngFactory, normal
from repro.simcloud.sim import Simulator

__all__ = ["NotificationProfile", "NotificationBus"]


@dataclass(frozen=True)
class NotificationProfile:
    """Per-provider notification delivery delay distributions."""

    delay_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.45, 0.12, floor=0.05),
            Provider.AZURE: normal(0.80, 0.25, floor=0.08),
            Provider.GCP: normal(0.60, 0.18, floor=0.06),
        }
    )


class NotificationBus:
    """Connects buckets to handlers with realistic delivery delay."""

    def __init__(self, sim: Simulator, rngs: RngFactory,
                 profile: NotificationProfile | None = None):
        self.sim = sim
        self.profile = profile or NotificationProfile()
        self._rng = rngs.stream("notifications")
        self.delivered = 0

    def connect(self, bucket: Bucket,
                handler: Callable[[ObjectEvent], None]) -> None:
        """Deliver ``bucket``'s events to ``handler`` after ``T_n``."""
        sampler = BufferedSampler(self.profile.delay_s[bucket.region.provider],
                                  self._rng, block=256)
        schedule_call = self.sim.schedule_call

        def on_event(event: ObjectEvent) -> None:
            schedule_call(sampler.sample(), self._deliver, handler, event)

        bucket.subscribe(on_event)

    def _deliver(self, handler: Callable[[ObjectEvent], None],
                 event: ObjectEvent) -> None:
        self.delivered += 1
        handler(event)

    def sample_delay(self, provider: str) -> float:
        """One delivery-delay draw (used by the profiler)."""
        return float(self.profile.delay_s[provider].sample(self._rng))
