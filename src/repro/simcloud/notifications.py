"""Cloud event notification service.

When an object is created or deleted, the platform generates a
JSON-format notification delivered to subscribed functions after a
platform-dependent delay ``T_n`` (the paper's notation in §5.3).  The
SLO math in the strategy planner subtracts this delay from the user's
budget, so the delivery delay distribution is part of the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.objectstore import Bucket, ObjectEvent
from repro.simcloud.regions import Provider
from repro.simcloud.rng import BufferedSampler, Dist, RngFactory, normal
from repro.simcloud.sim import Simulator

__all__ = ["NotificationProfile", "NotificationBus"]


@dataclass(frozen=True)
class NotificationProfile:
    """Per-provider notification delivery delay distributions."""

    delay_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.45, 0.12, floor=0.05),
            Provider.AZURE: normal(0.80, 0.25, floor=0.08),
            Provider.GCP: normal(0.60, 0.18, floor=0.06),
        }
    )


class NotificationBus:
    """Connects buckets to handlers with realistic delivery delay."""

    def __init__(self, sim: Simulator, rngs: RngFactory,
                 profile: NotificationProfile | None = None):
        self.sim = sim
        self.profile = profile or NotificationProfile()
        self._rng = rngs.stream("notifications")
        self.delivered = 0
        # Fault injection: None keeps delivery on the single-schedule
        # fast path (one check per event).
        self._chaos: Optional[ChaosConfig] = None
        self._chaos_rng = None
        self.chaos_dropped = 0
        self.chaos_duplicated = 0
        self.chaos_reordered = 0

    def set_chaos(self, chaos: Optional[ChaosConfig], rng) -> None:
        """Install (or clear) delivery fault injection.

        Real cloud buses are *at-least-once*: a "dropped" notification
        is one whose prompt delivery is lost and that the bus retries
        much later from its internal queue — it is never silently gone
        (that would make convergence impossible and does not model any
        real service).  Each redelivery may be dropped again with the
        same probability, so delivery happens eventually with
        probability one (``notif_drop_prob < 1``).
        """
        active = chaos is not None and chaos.notifications_enabled
        self._chaos = chaos if active else None
        self._chaos_rng = rng

    def connect(self, bucket: Bucket,
                handler: Callable[[ObjectEvent], None]) -> None:
        """Deliver ``bucket``'s events to ``handler`` after ``T_n``."""
        sampler = BufferedSampler(self.profile.delay_s[bucket.region.provider],
                                  self._rng, block=256)
        schedule_call = self.sim.schedule_call

        def on_event(event: ObjectEvent) -> None:
            delay = sampler.sample()
            if self._chaos is not None:
                delay = self._chaos_delivery(delay, handler, event)
            schedule_call(delay, self._deliver, handler, event)

        bucket.subscribe(on_event)

    def _chaos_delivery(self, delay: float, handler, event) -> float:
        """Apply the fault schedule to one delivery; returns its delay.

        Duplicates are scheduled here as extra deliveries; drops and
        reorders stretch the primary delivery's delay.
        """
        chaos, rng = self._chaos, self._chaos_rng
        if chaos.notif_reorder_prob and rng.random() < chaos.notif_reorder_prob:
            # Held back long enough to land behind later events.
            self.chaos_reordered += 1
            delay += float(rng.uniform(0.0, chaos.notif_reorder_spread_s))
        if chaos.notif_dup_prob and rng.random() < chaos.notif_dup_prob:
            self.chaos_duplicated += 1
            self.sim.schedule_call(
                delay + float(rng.exponential(chaos.notif_dup_lag_s)),
                self._deliver, handler, event)
        while chaos.notif_drop_prob and rng.random() < chaos.notif_drop_prob:
            # Lost delivery; the bus redelivers from its queue later.
            self.chaos_dropped += 1
            delay += float(rng.exponential(chaos.notif_redelivery_s))
        return delay

    def _deliver(self, handler: Callable[[ObjectEvent], None],
                 event: ObjectEvent) -> None:
        self.delivered += 1
        handler(event)

    def sample_delay(self, provider: str) -> float:
        """One delivery-delay draw (used by the profiler)."""
        return float(self.profile.delay_s[provider].sample(self._rng))
