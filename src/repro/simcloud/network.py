"""Wide-area network fabric.

Models the two empirical phenomena the paper's characterization (§3)
identifies as the key challenges for serverless replication:

* **Asymmetric performance of clouds/regions** (Fig 8): the achievable
  bandwidth depends not only on the (source, destination) pair but on
  *which platform executes the function*.  We compose a per-platform
  NIC cap, a platform WAN efficiency factor, a continental distance
  factor, and a cross-provider (public internet) penalty; specific
  pairs can additionally be overridden.

* **Performance variability of instances** (Fig 9): every function
  instance draws a persistent lognormal speed factor at cold start, and
  each transfer additionally sees autocorrelated jitter, so bandwidth
  differs by more than 2x between instances with identical
  configuration, with no predictable pattern.

Bandwidths also depend on the function's memory/vCPU configuration
(Fig 6): AWS and Azure scale network with memory up to a sweet spot,
GCP with vCPU count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.simcloud.chaos import ChaosConfig, ChaosDraws
from repro.simcloud.regions import Provider, Region
from repro.simcloud.rng import BufferedSampler, Dist, RngFactory, normal

__all__ = ["FunctionConfig", "NetworkProfile", "InstanceChannel", "NetworkFabric",
           "DEFAULT_PROFILE", "MBPS"]

MBPS = 1e6  # bits per second in one Mbps


@dataclass(frozen=True)
class FunctionConfig:
    """Compute configuration of a cloud function (drives bandwidth)."""

    memory_mb: int = 1024
    vcpus: float = 1.0


# Default, best-price configurations the paper uses in §8 ("we manually
# configure cloud functions so that they achieve the best performance at
# the lowest cost").
BEST_CONFIGS: dict[str, FunctionConfig] = {
    Provider.AWS: FunctionConfig(memory_mb=1024, vcpus=0.6),
    Provider.AZURE: FunctionConfig(memory_mb=2048, vcpus=1.0),
    Provider.GCP: FunctionConfig(memory_mb=1024, vcpus=2.0),
}


@dataclass(frozen=True)
class NetworkProfile:
    """All tunable parameters of the WAN model (calibration lives here)."""

    # Per-function WAN cap (Mbps) at full configuration scale.
    nic_cap_mbps: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 620.0,
            Provider.AZURE: 480.0,
            Provider.GCP: 540.0,
        }
    )
    # In-region object store access bandwidth per function (Mbps).
    intra_mbps: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 950.0,
            Provider.AZURE: 750.0,
            Provider.GCP: 850.0,
        }
    )
    # Platform efficiency on WAN paths (AWS Lambda fastest & most stable).
    platform_wan_factor: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 1.0,
            Provider.AZURE: 0.62,
            Provider.GCP: 0.85,
        }
    )
    # Continental distance factors for a single TCP stream.
    same_region_factor: float = 1.0
    same_continent_factor: float = 0.82
    continent_factor: dict[tuple[str, str], float] = field(
        default_factory=lambda: {
            ("na", "eu"): 0.52,
            ("eu", "na"): 0.52,
            ("na", "ap"): 0.30,
            ("ap", "na"): 0.30,
            ("eu", "ap"): 0.24,
            ("ap", "eu"): 0.24,
        }
    )
    # Crossing the public internet between providers.
    cross_provider_factor: float = 0.78
    # Upload (PUT) achieves slightly less than download (GET).
    upload_factor: float = 0.92
    # Persistent per-instance lognormal sigma (the Fig 9 spread).
    instance_sigma: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 0.16,
            Provider.AZURE: 0.42,
            Provider.GCP: 0.34,
        }
    )
    # Per-transfer multiplicative jitter sigma.
    transfer_sigma: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 0.08,
            Provider.AZURE: 0.22,
            Provider.GCP: 0.18,
        }
    )
    # AR(1) coefficient for within-instance bandwidth drift over time.
    drift_rho: float = 0.85
    # Client startup overhead S before bytes flow (seconds).
    startup_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.22, 0.05),
            Provider.AZURE: normal(0.35, 0.10),
            Provider.GCP: normal(0.28, 0.08),
        }
    )
    # Mean-bandwidth degradation with concurrency: bw /= 1 + alpha*(n-1)/64.
    congestion_alpha: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 0.06,
            Provider.AZURE: 0.55,
            Provider.GCP: 0.40,
        }
    )
    # Extra variability under concurrency ("links unstable with parallelism").
    congestion_sigma: dict[str, float] = field(
        default_factory=lambda: {
            Provider.AWS: 0.02,
            Provider.AZURE: 0.10,
            Provider.GCP: 0.07,
        }
    )
    # Directed Mbps overrides for specific (exec_provider, src_key, dst_key).
    pair_overrides: dict[tuple[str, str, str], float] = field(default_factory=dict)

    def config_scale(self, provider: str, config: FunctionConfig) -> float:
        """Bandwidth scale in (0, 1] as a function of compute config.

        Captures Fig 6: bandwidth grows with memory (AWS/Azure) or vCPUs
        (GCP) and saturates at a sweet spot beyond which more expensive
        configurations buy nothing.
        """
        if provider == Provider.AWS:
            # Scales with memory up to ~1 GB, flat afterwards.
            return min(1.0, 0.25 + 0.75 * config.memory_mb / 1024.0)
        if provider == Provider.AZURE:
            # 2048 MB is both the minimum and the knee.
            return min(1.0, 0.40 + 0.60 * config.memory_mb / 2048.0)
        # GCP: network follows vCPUs; saturates at 2 vCPUs.
        return min(1.0, 0.35 + 0.65 * config.vcpus / 2.0)


DEFAULT_PROFILE = NetworkProfile()


class InstanceChannel:
    """Per-function-instance view of the network.

    Holds the instance's persistent speed factor and an AR(1) drift
    state so that consecutive transfers by the same instance are
    correlated (an instance that is slow now tends to stay slow), which
    is what makes straggler mitigation worthwhile: the engine's hedged
    clones force a cold start (``fresh_instance``) precisely to draw an
    independent :attr:`base_factor` instead of inheriting a warm
    instance's persistent one.
    """

    def __init__(self, provider: str, profile: NetworkProfile, rng: np.random.Generator):
        self.provider = provider
        self.profile = profile
        self._rng = rng
        sigma = profile.instance_sigma[provider]
        # Mean-one lognormal: E[exp(N(-s^2/2, s^2))] = 1.
        self.base_factor = float(rng.lognormal(-sigma**2 / 2, sigma))
        self._drift = 0.0
        # Per-transfer constants and a block buffer of innovations —
        # next_factor is called once per data leg, so the scalar NumPy
        # dispatch would otherwise dominate it.
        t_sigma = profile.transfer_sigma[provider]
        self._innov_std = t_sigma * math.sqrt(1 - profile.drift_rho**2)
        self._half_sigma2 = t_sigma**2 / 2
        self._rho = profile.drift_rho
        self._innov_buf: list[float] = []
        self._innov_idx = 0

    def next_factor(self) -> float:
        """Sample the instantaneous speed multiplier for one transfer."""
        idx = self._innov_idx
        buf = self._innov_buf
        if idx >= len(buf):
            buf = self._rng.normal(0.0, self._innov_std, 64).tolist()
            self._innov_buf = buf
            idx = 0
        self._innov_idx = idx + 1
        self._drift = self._rho * self._drift + buf[idx]
        return max(0.05, self.base_factor * math.exp(self._drift - self._half_sigma2))


class NetworkFabric:
    """Samples transfer times for functions/VMs moving object data."""

    def __init__(self, rngs: RngFactory, profile: NetworkProfile = DEFAULT_PROFILE):
        self.profile = profile
        self._rng = rngs.stream("network")
        self._channel_seq = 0
        # path_mbps/congestion_scale are pure functions of their
        # arguments (given the profile), and every transfer evaluates
        # both — memoize on the small set of distinct inputs.
        self._mbps_memo: dict[tuple, float] = {}
        self._congestion_memo: dict[tuple[str, int], tuple[float, float]] = {}
        self._startup_samplers: dict[str, BufferedSampler] = {}
        # Vectorized block buffers: standard normals for the congestion
        # jitter (one per concurrent transfer leg) and child seeds for
        # per-instance channels (one per cold start).
        self._std_normal_buf: list[float] = []
        self._std_normal_idx = 0
        self._channel_seed_buf: list[int] = []
        self._channel_seed_idx = 0
        # Fault injection: None keeps transfers on the chaos-free path.
        self._chaos: ChaosConfig | None = None
        self._chaos_rng = None
        self._clock = None
        self.chaos_stalls = 0
        self.chaos_blackouts = 0
        #: Regional outage windows keyed by region: transfers touching
        #: the region as any endpoint wait out the window.
        self._outage_by_region: dict[str, tuple[tuple[float, float], ...]] = {}
        self.chaos_region_outage_hits = 0
        #: Optional :class:`~repro.core.tracing.Tracer` receiving
        #: wan-stall / wan-blackout / wan-outage-wait events (only
        #: consulted on the chaos path; the clean path never checks it).
        self.tracer = None

    # -- fault injection --------------------------------------------------

    def set_chaos(self, chaos: ChaosConfig | None, rng, clock=None) -> None:
        """Install (or clear) WAN fault injection.

        ``clock`` is a zero-argument callable returning simulated time
        (needed to test transfer starts against blackout windows; the
        fabric itself is clockless).
        """
        self._chaos = chaos if chaos is not None and chaos.wan_enabled else None
        self._chaos_rng = ChaosDraws(rng) if rng is not None else None
        self._clock = clock
        self._outage_by_region = {}
        if self._chaos is not None:
            for region_key, start, duration in self._chaos.wan_outages:
                windows = self._outage_by_region.setdefault(region_key, ())
                self._outage_by_region[region_key] = windows + (
                    (start, start + duration),)

    def chaos_penalty_s(self, now: float, *region_keys: str) -> float:
        """Extra seconds a cross-region transfer starting ``now`` pays.

        A transfer that begins inside a global blackout window, or a
        regional outage window touching any of ``region_keys`` (the
        transfer's endpoints and executing region), waits for the
        window to close; independently it may hit a transient stall
        (routing flap, throttled NAT) with an exponential duration.
        Only called when a chaos config with WAN faults is installed.
        """
        chaos = self._chaos
        extra = 0.0
        for start, duration in chaos.wan_blackout_windows:
            if start <= now < start + duration:
                self.chaos_blackouts += 1
                if self.tracer is not None:
                    self.tracer.event("wan-blackout-wait", "net", None,
                                      seconds=(start + duration) - now)
                extra += (start + duration) - now
                break
        if self._outage_by_region and region_keys:
            # The transfer resumes once every touched region is back:
            # wait until the latest end among currently-active windows.
            until = 0.0
            for key in region_keys:
                for start, end in self._outage_by_region.get(key, ()):
                    if start <= now < end:
                        until = max(until, end)
            if until > now:
                self.chaos_region_outage_hits += 1
                if self.tracer is not None:
                    self.tracer.event("wan-outage-wait", "net", None,
                                      regions=list(region_keys),
                                      seconds=until - now)
                extra += until - now
        if (chaos.wan_stall_prob
                and self._chaos_rng.random() < chaos.wan_stall_prob):
            self.chaos_stalls += 1
            stall = float(self._chaos_rng.exponential(chaos.wan_stall_mean_s))
            if self.tracer is not None:
                self.tracer.event("wan-stall", "net", None,
                                  regions=list(region_keys), seconds=stall)
            extra += stall
        return extra

    # -- deterministic mean bandwidths ----------------------------------

    def path_mbps(self, exec_region: Region, peer: Region, config: FunctionConfig,
                  upload: bool) -> float:
        """Mean bandwidth (Mbps) between a function and an object store.

        ``peer`` is the bucket's region; ``upload`` selects the PUT
        direction.  Intra-region access bypasses the WAN model.
        """
        memo_key = (exec_region.key, peer.key, config.memory_mb, config.vcpus,
                    upload)
        cached = self._mbps_memo.get(memo_key)
        if cached is not None:
            return cached
        p = self.profile
        provider = exec_region.provider
        scale = p.config_scale(provider, config)
        # Overrides are keyed by data-flow direction:
        # (exec provider, region bytes leave, region bytes enter).
        flow = ((exec_region.key, peer.key) if upload
                else (peer.key, exec_region.key))
        override = p.pair_overrides.get((provider, *flow))
        if override is not None:
            bw = override * scale
            result = bw * (p.upload_factor if upload else 1.0)
            self._mbps_memo[memo_key] = result
            return result
        if exec_region.key == peer.key:
            bw = p.intra_mbps[provider] * scale
            result = bw * (p.upload_factor if upload else 1.0)
            self._mbps_memo[memo_key] = result
            return result
        nic = p.nic_cap_mbps[provider] * scale
        if exec_region.continent == peer.continent:
            dist = (p.same_continent_factor
                    if exec_region.name != peer.name or exec_region.provider != peer.provider
                    else p.same_region_factor)
        else:
            dist = p.continent_factor[(exec_region.continent, peer.continent)]
        cross = 1.0 if exec_region.provider == peer.provider else p.cross_provider_factor
        bw = nic * p.platform_wan_factor[provider] * dist * cross
        result = bw * (p.upload_factor if upload else 1.0)
        self._mbps_memo[memo_key] = result
        return result

    def mean_transfer_seconds(self, exec_region: Region, src: Region, dst: Region,
                              nbytes: int, config: FunctionConfig) -> float:
        """Expected store-and-forward time, excluding startup overhead."""
        down = self.path_mbps(exec_region, src, config, upload=False) * MBPS
        up = self.path_mbps(exec_region, dst, config, upload=True) * MBPS
        bits = nbytes * 8
        return bits / down + bits / up

    # -- stochastic sampling ---------------------------------------------

    def open_channel(self, provider: str) -> InstanceChannel:
        """Create the network view for a newly started instance."""
        self._channel_seq += 1
        idx = self._channel_seed_idx
        if idx >= len(self._channel_seed_buf):
            self._channel_seed_buf = self._rng.integers(
                0, 2**63, size=64).tolist()
            idx = 0
        self._channel_seed_idx = idx + 1
        child = np.random.default_rng(self._channel_seed_buf[idx])
        return InstanceChannel(provider, self.profile, child)

    def congestion_jitter(self, extra_sigma: float) -> float:
        """Mean-one lognormal jitter factor for a congested leg.

        Equals ``exp(N(-sigma^2/2, sigma))``; the standard normals
        behind it are drawn in blocks from the fabric stream.
        """
        idx = self._std_normal_idx
        if idx >= len(self._std_normal_buf):
            self._std_normal_buf = self._rng.standard_normal(128).tolist()
            idx = 0
        self._std_normal_idx = idx + 1
        return math.exp(extra_sigma * self._std_normal_buf[idx]
                        - extra_sigma**2 / 2)

    def sample_startup(self, provider: str) -> float:
        sampler = self._startup_samplers.get(provider)
        if sampler is None:
            sampler = BufferedSampler(self.profile.startup_s[provider],
                                      self._rng, block=128)
            self._startup_samplers[provider] = sampler
        return sampler.sample()

    def congestion_scale(self, provider: str, concurrency: int) -> tuple[float, float]:
        """(mean divisor, extra sigma) for ``concurrency`` parallel streams."""
        if concurrency <= 1:
            return 1.0, 0.0
        memo_key = (provider, concurrency)
        cached = self._congestion_memo.get(memo_key)
        if cached is not None:
            return cached
        p = self.profile
        divisor = 1.0 + p.congestion_alpha[provider] * (concurrency - 1) / 64.0
        extra = p.congestion_sigma[provider] * math.log2(concurrency)
        self._congestion_memo[memo_key] = (divisor, extra)
        return divisor, extra

    def sample_transfer_seconds(
        self,
        exec_region: Region,
        src: Region,
        dst: Region,
        nbytes: int,
        config: FunctionConfig,
        channel: InstanceChannel,
        concurrency: int = 1,
    ) -> float:
        """One store-and-forward transfer time draw for ``nbytes``."""
        base = self.mean_transfer_seconds(exec_region, src, dst, nbytes, config)
        divisor, extra_sigma = self.congestion_scale(exec_region.provider, concurrency)
        factor = channel.next_factor()
        if extra_sigma > 0:
            factor *= self.congestion_jitter(extra_sigma)
        seconds = base * divisor / factor
        if (self._chaos is not None and self._clock is not None
                and (exec_region.key != src.key or exec_region.key != dst.key)):
            seconds += self.chaos_penalty_s(self._clock(), exec_region.key,
                                            src.key, dst.key)
        return seconds
