"""Simulated serverless NoSQL database (DynamoDB / Cosmos DB / Firestore).

AReplica keeps all intermediate replication state — the shared part
pool, task progress counters, and the object-granularity replication
lock — in a pay-as-you-go cloud database.  The simulation provides the
exact primitives those components need:

* point reads/writes with single-digit-millisecond latency,
* atomic conditional writes (the basis of the lock client),
* atomic read-modify-write updates and counters,
* per-operation pricing metered into the cost ledger.

Mutations are applied atomically at request admission and the response
is delivered after the sampled latency, giving linearizable semantics
(a real conditional-write API provides the same guarantee).  Responses
are returned as kernel :class:`DeferredResult` markers — the outcome is
already known at admission, so the caller's process is resumed directly
without a future allocation (KV round trips dominate the control-plane
event count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import Provider, Region
from repro.simcloud.rng import BufferedSampler, Dist, RngFactory, normal
from repro.simcloud.sim import DeferredResult, Future, Simulator

__all__ = ["KvProfile", "KvTable", "ConditionFailed", "Throttled"]


class ConditionFailed(RuntimeError):
    """A conditional write's condition evaluated to false."""


class Throttled(RuntimeError):
    """A write was rejected by capacity throttling (chaos injection).

    Mirrors DynamoDB's ``ProvisionedThroughputExceededException``: the
    request was refused *before* any mutation applied, so retrying it
    is always safe.
    """


@dataclass(frozen=True)
class KvProfile:
    """Per-provider operation latency distributions."""

    latency_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.004, 0.0012, floor=0.001),
            Provider.AZURE: normal(0.006, 0.002, floor=0.0015),
            Provider.GCP: normal(0.007, 0.002, floor=0.0015),
        }
    )


class KvTable:
    """One table in one region's serverless database."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        region: Region,
        prices: PriceBook,
        ledger: CostLedger,
        rngs: RngFactory,
        profile: KvProfile | None = None,
    ):
        self.sim = sim
        self.name = name
        self.region = region
        self._prices = prices
        self._ledger = ledger
        self._profile = profile or KvProfile()
        self._rng = rngs.stream(f"kv:{region.key}:{name}")
        self._items: dict[str, dict[str, Any]] = {}
        self.op_counts = {"read": 0, "write": 0}
        self._latency_sampler = BufferedSampler(
            self._profile.latency_s[region.provider], self._rng)
        # Per-op constants, hoisted out of the (very hot) _respond path.
        price = prices.kv[region.provider]
        self._op_cost = {"read": price.read, "write": price.write}
        self._op_detail = {"read": f"kv:read:{name}", "write": f"kv:write:{name}"}
        # Fault injection: None keeps every operation on the inline
        # admission fast path (a single check per call).
        self._chaos: Optional[ChaosConfig] = None
        self._chaos_rng = None
        self.chaos_rejected = 0
        self.chaos_delayed = 0
        #: Sustained-outage schedule: ``(start, end)`` windows during
        #: which every operation (reads included) is rejected with
        #: :class:`Throttled` — the regional database is dark.
        self._outage_windows: tuple[tuple[float, float], ...] = ()
        self.chaos_outage_rejections = 0
        # Optional HealthTracker fed one ("kv", region) result per
        # operation; None keeps the hot path at a single check.
        self._health = None
        self._health_target = ("kv", region.key)
        #: Optional :class:`~repro.core.tracing.Tracer`.  Only the chaos
        #: rejection/outage paths emit — the admitted-op hot path stays
        #: untouched (KV round trips dominate control-plane event
        #: counts; per-op spans would double the trace for no oracle
        #: value, and charges already flow through the ledger sink).
        self.tracer = None

    # -- fault injection ---------------------------------------------------

    def set_chaos(self, chaos: Optional[ChaosConfig], rng) -> None:
        """Install (or clear) the table's fault schedule.

        ``rng`` must be a dedicated chaos stream so a seed's rejection
        pattern does not shift with unrelated latency sampling.
        """
        self._chaos = chaos if chaos is not None and chaos.kv_enabled else None
        self._chaos_rng = rng
        if self._chaos is not None:
            self._outage_windows = tuple(
                (start, start + duration)
                for region_key, start, duration in self._chaos.kv_outages
                if region_key == self.region.key)
        else:
            self._outage_windows = ()

    def set_health(self, tracker) -> None:
        """Report per-operation outcomes to ``tracker`` (None clears)."""
        self._health = tracker

    def _chaos_admit(self, kind: str,
                     apply: Callable[[], Any]) -> DeferredResult | Future:
        """Admission under chaos: maybe reject, maybe delay, else apply.

        Writes may be thrown away with :class:`Throttled` *before* the
        mutation runs (throttling never half-applies).  Delayed
        operations defer the mutation itself to the admission instant —
        the serialization point moves with the delay, preserving
        linearizability while making "the clock advanced during the
        round-trip" a real phenomenon lock clients must survive.
        """
        chaos, rng = self._chaos, self._chaos_rng
        if self._outage_windows:
            now = self.sim.now
            for start, end in self._outage_windows:
                if start <= now < end:
                    # Regional database outage: everything — reads
                    # included — is refused before any mutation applies.
                    self.chaos_outage_rejections += 1
                    if self._health is not None:
                        self._health.record(self._health_target, False)
                    if self.tracer is not None:
                        self.tracer.event("kv-outage-reject", "kv", None,
                                          table=self.name,
                                          region=self.region.key, op=kind)
                    return DeferredResult(
                        self._latency(), None,
                        Throttled(f"{self.name}: {self.region.key} "
                                  f"KV outage"))
        if (kind == "write" and chaos.kv_reject_prob
                and rng.random() < chaos.kv_reject_prob):
            self.chaos_rejected += 1
            if self._health is not None:
                self._health.record(self._health_target, False)
            if self.tracer is not None:
                self.tracer.event("kv-reject", "kv", None, table=self.name,
                                  region=self.region.key, op=kind)
            # Refused requests are not billed (DynamoDB does not charge
            # throttled writes) and never reach the item store.
            return DeferredResult(self._latency(), None,
                                  Throttled(f"{self.name}: {kind} throttled"))
        if chaos.kv_delay_prob and rng.random() < chaos.kv_delay_prob:
            self.chaos_delayed += 1
            extra = float(rng.exponential(chaos.kv_delay_mean_s))
            if self.tracer is not None:
                self.tracer.event("kv-delay", "kv", None, table=self.name,
                                  region=self.region.key, op=kind,
                                  seconds=extra)
            fut = Future(self.sim)

            def admit(_a: Any, _b: Any) -> None:
                if self._health is not None:
                    # The database answered (even a ConditionFailed is
                    # a healthy, linearizable response).
                    self._health.record(self._health_target, True)
                try:
                    value = apply()
                except Exception as exc:  # ConditionFailed etc.
                    fut.fail(exc)
                    return
                self.op_counts[kind] += 1
                self._ledger.charge(self.sim.now, CostCategory.KV_OPS,
                                    self._op_cost[kind], self._op_detail[kind])
                fut.resolve(value)

            self.sim.schedule_call(extra + self._latency(), admit)
            return fut
        try:
            value = apply()
        except Exception as exc:
            return self._respond(kind, error=exc)
        return self._respond(kind, value)

    # -- internals ---------------------------------------------------------

    def _latency(self) -> float:
        return self._latency_sampler.sample()

    def _respond(self, kind: str, value: Any = None,
                 error: Optional[BaseException] = None) -> DeferredResult:
        self.op_counts[kind] += 1
        self._ledger.charge(self.sim.now, CostCategory.KV_OPS,
                            self._op_cost[kind], self._op_detail[kind])
        if self._health is not None:
            # Any admitted response — ConditionFailed included — means
            # the database is up; only rejections (which bypass this
            # path) count against the region's health.
            self._health.record(self._health_target, True)
        return DeferredResult(self._latency(), value, error)

    # -- point operations ----------------------------------------------------

    def get_item(self, key: str) -> DeferredResult:
        """Read an item; resolves with a copy of the dict or None."""
        if self._chaos is not None:
            return self._chaos_admit("read", lambda: self._do_get(key))
        item = self._items.get(key)
        return self._respond("read", dict(item) if item is not None else None)

    def put_item(self, key: str, item: dict[str, Any]) -> DeferredResult:
        """Unconditional upsert."""
        if self._chaos is not None:
            return self._chaos_admit("write", lambda: self._do_put(key, item))
        self._items[key] = dict(item)
        return self._respond("write", None)

    def delete_item(self, key: str) -> DeferredResult:
        if self._chaos is not None:
            return self._chaos_admit("write", lambda: self._do_delete(key))
        self._items.pop(key, None)
        return self._respond("write", None)

    def conditional_put(
        self,
        key: str,
        item: dict[str, Any],
        condition: Callable[[Optional[dict[str, Any]]], bool],
    ) -> DeferredResult:
        """Upsert only if ``condition(current_item)`` holds.

        Resolves with True on success; fails with
        :class:`ConditionFailed` otherwise (mirroring DynamoDB's
        ``ConditionalCheckFailedException``).
        """
        if self._chaos is not None:
            return self._chaos_admit(
                "write", lambda: self._do_conditional_put(key, item, condition))
        current = self._items.get(key)
        if not condition(dict(current) if current is not None else None):
            return self._respond("write", error=ConditionFailed(key))
        self._items[key] = dict(item)
        return self._respond("write", True)

    def put_if_absent(self, key: str, item: dict[str, Any]) -> DeferredResult:
        """Create the item only if the key does not exist; bool result."""
        if self._chaos is not None:
            return self._chaos_admit(
                "write", lambda: self._do_put_if_absent(key, item))
        if key in self._items:
            return self._respond("write", False)
        self._items[key] = dict(item)
        return self._respond("write", True)

    def update_item(
        self, key: str, fn: Callable[[Optional[dict[str, Any]]], Optional[dict[str, Any]]]
    ) -> DeferredResult:
        """Atomic read-modify-write.

        ``fn`` receives a copy of the current item (or None) and returns
        the new item, or None to delete.  Resolves with the new item.
        ``fn`` runs at the admission instant — under injected admission
        delay that is *later* than the call, which is why lock-style
        closures must read clocks inside ``fn``, not before the call.
        """
        if self._chaos is not None:
            return self._chaos_admit("write", lambda: self._do_update(key, fn))
        current = self._items.get(key)
        updated = fn(dict(current) if current is not None else None)
        if updated is None:
            self._items.pop(key, None)
        else:
            self._items[key] = dict(updated)
        return self._respond("write", dict(updated) if updated is not None else None)

    def increment(self, key: str, field_name: str, by: int = 1) -> DeferredResult:
        """Atomic counter; creates the item/field at 0 when missing."""
        if self._chaos is not None:
            return self._chaos_admit(
                "write", lambda: self._do_increment(key, field_name, by))
        item = self._items.setdefault(key, {})
        item[field_name] = item.get(field_name, 0) + by
        return self._respond("write", item[field_name])

    # -- the mutations themselves (chaos path; mirrors the inline code) ------

    def _do_get(self, key: str) -> Optional[dict[str, Any]]:
        item = self._items.get(key)
        return dict(item) if item is not None else None

    def _do_put(self, key: str, item: dict[str, Any]) -> None:
        self._items[key] = dict(item)

    def _do_delete(self, key: str) -> None:
        self._items.pop(key, None)

    def _do_conditional_put(self, key, item, condition) -> bool:
        current = self._items.get(key)
        if not condition(dict(current) if current is not None else None):
            raise ConditionFailed(key)
        self._items[key] = dict(item)
        return True

    def _do_put_if_absent(self, key: str, item: dict[str, Any]) -> bool:
        if key in self._items:
            return False
        self._items[key] = dict(item)
        return True

    def _do_update(self, key, fn) -> Optional[dict[str, Any]]:
        current = self._items.get(key)
        updated = fn(dict(current) if current is not None else None)
        if updated is None:
            self._items.pop(key, None)
        else:
            self._items[key] = dict(updated)
        return dict(updated) if updated is not None else None

    def _do_increment(self, key: str, field_name: str, by: int) -> int:
        item = self._items.setdefault(key, {})
        item[field_name] = item.get(field_name, 0) + by
        return item[field_name]

    # -- test/debug helpers ---------------------------------------------------

    def peek(self, key: str) -> Optional[dict[str, Any]]:
        """Zero-latency, zero-cost read for assertions in tests."""
        item = self._items.get(key)
        return dict(item) if item is not None else None

    def peek_prefix(self, prefix: str) -> list[tuple[str, dict[str, Any]]]:
        """Zero-cost snapshot of every item whose key starts with ``prefix``.

        Like :meth:`peek`, this models an out-of-band inspection (an
        operator console, a sweeper reading a table scan) rather than a
        simulated request: no latency, no chaos, no billing.
        """
        return [(key, dict(item)) for key, item in sorted(self._items.items())
                if key.startswith(prefix)]

    def __len__(self) -> int:
        return len(self._items)
