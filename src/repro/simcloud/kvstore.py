"""Simulated serverless NoSQL database (DynamoDB / Cosmos DB / Firestore).

AReplica keeps all intermediate replication state — the shared part
pool, task progress counters, and the object-granularity replication
lock — in a pay-as-you-go cloud database.  The simulation provides the
exact primitives those components need:

* point reads/writes with single-digit-millisecond latency,
* atomic conditional writes (the basis of the lock client),
* atomic read-modify-write updates and counters,
* per-operation pricing metered into the cost ledger.

Mutations are applied atomically at request admission and the response
is delivered after the sampled latency, giving linearizable semantics
(a real conditional-write API provides the same guarantee).  Responses
are returned as kernel :class:`DeferredResult` markers — the outcome is
already known at admission, so the caller's process is resumed directly
without a future allocation (KV round trips dominate the control-plane
event count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import Provider, Region
from repro.simcloud.rng import BufferedSampler, Dist, RngFactory, normal
from repro.simcloud.sim import DeferredResult, Simulator

__all__ = ["KvProfile", "KvTable", "ConditionFailed"]


class ConditionFailed(RuntimeError):
    """A conditional write's condition evaluated to false."""


@dataclass(frozen=True)
class KvProfile:
    """Per-provider operation latency distributions."""

    latency_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(0.004, 0.0012, floor=0.001),
            Provider.AZURE: normal(0.006, 0.002, floor=0.0015),
            Provider.GCP: normal(0.007, 0.002, floor=0.0015),
        }
    )


class KvTable:
    """One table in one region's serverless database."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        region: Region,
        prices: PriceBook,
        ledger: CostLedger,
        rngs: RngFactory,
        profile: KvProfile | None = None,
    ):
        self.sim = sim
        self.name = name
        self.region = region
        self._prices = prices
        self._ledger = ledger
        self._profile = profile or KvProfile()
        self._rng = rngs.stream(f"kv:{region.key}:{name}")
        self._items: dict[str, dict[str, Any]] = {}
        self.op_counts = {"read": 0, "write": 0}
        self._latency_sampler = BufferedSampler(
            self._profile.latency_s[region.provider], self._rng)
        # Per-op constants, hoisted out of the (very hot) _respond path.
        price = prices.kv[region.provider]
        self._op_cost = {"read": price.read, "write": price.write}
        self._op_detail = {"read": f"kv:read:{name}", "write": f"kv:write:{name}"}

    # -- internals ---------------------------------------------------------

    def _latency(self) -> float:
        return self._latency_sampler.sample()

    def _respond(self, kind: str, value: Any = None,
                 error: Optional[BaseException] = None) -> DeferredResult:
        self.op_counts[kind] += 1
        self._ledger.charge(self.sim.now, CostCategory.KV_OPS,
                            self._op_cost[kind], self._op_detail[kind])
        return DeferredResult(self._latency(), value, error)

    # -- point operations ----------------------------------------------------

    def get_item(self, key: str) -> DeferredResult:
        """Read an item; resolves with a copy of the dict or None."""
        item = self._items.get(key)
        return self._respond("read", dict(item) if item is not None else None)

    def put_item(self, key: str, item: dict[str, Any]) -> DeferredResult:
        """Unconditional upsert."""
        self._items[key] = dict(item)
        return self._respond("write", None)

    def delete_item(self, key: str) -> DeferredResult:
        self._items.pop(key, None)
        return self._respond("write", None)

    def conditional_put(
        self,
        key: str,
        item: dict[str, Any],
        condition: Callable[[Optional[dict[str, Any]]], bool],
    ) -> DeferredResult:
        """Upsert only if ``condition(current_item)`` holds.

        Resolves with True on success; fails with
        :class:`ConditionFailed` otherwise (mirroring DynamoDB's
        ``ConditionalCheckFailedException``).
        """
        current = self._items.get(key)
        if not condition(dict(current) if current is not None else None):
            return self._respond("write", error=ConditionFailed(key))
        self._items[key] = dict(item)
        return self._respond("write", True)

    def put_if_absent(self, key: str, item: dict[str, Any]) -> DeferredResult:
        """Create the item only if the key does not exist; bool result."""
        if key in self._items:
            return self._respond("write", False)
        self._items[key] = dict(item)
        return self._respond("write", True)

    def update_item(
        self, key: str, fn: Callable[[Optional[dict[str, Any]]], Optional[dict[str, Any]]]
    ) -> DeferredResult:
        """Atomic read-modify-write.

        ``fn`` receives a copy of the current item (or None) and returns
        the new item, or None to delete.  Resolves with the new item.
        """
        current = self._items.get(key)
        updated = fn(dict(current) if current is not None else None)
        if updated is None:
            self._items.pop(key, None)
        else:
            self._items[key] = dict(updated)
        return self._respond("write", dict(updated) if updated is not None else None)

    def increment(self, key: str, field_name: str, by: int = 1) -> DeferredResult:
        """Atomic counter; creates the item/field at 0 when missing."""
        item = self._items.setdefault(key, {})
        item[field_name] = item.get(field_name, 0) + by
        return self._respond("write", item[field_name])

    # -- test/debug helpers ---------------------------------------------------

    def peek(self, key: str) -> Optional[dict[str, Any]]:
        """Zero-latency, zero-cost read for assertions in tests."""
        item = self._items.get(key)
        return dict(item) if item is not None else None

    def __len__(self) -> int:
        return len(self._items)
