"""Simulated VMs — the substrate of the Skyplane baseline.

The paper's Figure 4 breaks a Skyplane transfer into VM provisioning
(31.16 s), container startup (25.97 s), data transfer (1.49 s) and
other overheads (18.27 s), with >99 % of the cost going to the VMs.
This module reproduces that envelope: slow provisioning with
platform-dependent distributions, container deployment, per-second
billing with a minimum billed duration, and a VM-class network that is
faster than a single cloud function (VMs get multi-stream gateways).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.network import FunctionConfig, NetworkFabric
from repro.simcloud.pricing import PriceBook
from repro.simcloud.regions import Provider, Region
from repro.simcloud.rng import Dist, RngFactory, normal
from repro.simcloud.sim import Simulator

__all__ = ["VmProfile", "Vm", "VmFleet"]

# A VM opens many parallel streams, so its effective WAN bandwidth is a
# multiple of a single function's NIC-capped stream.
_VM_BANDWIDTH_MULT = 2.6
# Configuration handed to the fabric for VM transfers (full scale).
_VM_NET_CONFIG = FunctionConfig(memory_mb=32768, vcpus=16.0)


@dataclass(frozen=True)
class VmProfile:
    """Provisioning/boot distributions per provider."""

    provision_s: dict[str, Dist] = field(
        default_factory=lambda: {
            Provider.AWS: normal(31.0, 5.0, floor=15.0),
            Provider.AZURE: normal(58.0, 10.0, floor=30.0),
            Provider.GCP: normal(42.0, 7.0, floor=20.0),
        }
    )
    container_startup_s: Dist = normal(26.0, 4.0, floor=12.0)
    # Gateway setup, key exchange, chunk planning ("others" in Fig 4).
    session_overhead_s: Dist = normal(9.0, 2.0, floor=3.0)


class Vm:
    """A provisioned VM with a running replication gateway container."""

    def __init__(self, vm_id: int, region: Region, fleet: "VmFleet",
                 provision_s: float = 0.0, container_s: float = 0.0):
        self.vm_id = vm_id
        self.region = region
        self._fleet = fleet
        self.channel = fleet.fabric.open_channel(region.provider)
        self.launched_at = fleet.sim.now
        self.terminated_at: Optional[float] = None
        self.last_active = fleet.sim.now
        #: How long this VM took to provision / boot its container
        #: (Fig 4's breakdown).
        self.provision_s = provision_s
        self.container_s = container_s

    @property
    def alive(self) -> bool:
        return self.terminated_at is None

    def wan_seconds(self, peer: Region, nbytes: int, upload: bool) -> float:
        """Sampled single-leg transfer time between this VM and a bucket
        or peer gateway in ``peer``'s region."""
        fabric = self._fleet.fabric
        mbps = fabric.path_mbps(self.region, peer, _VM_NET_CONFIG, upload=upload)
        mbps *= _VM_BANDWIDTH_MULT
        return nbytes * 8 / (mbps * 1e6) / self.channel.next_factor()

    def terminate(self) -> None:
        """Stop the VM and bill its lifetime (with the billing minimum)."""
        if not self.alive:
            return
        self.terminated_at = self._fleet.sim.now
        duration = self.terminated_at - self.launched_at
        cost = self._fleet.prices.vm_cost(self.region.provider, duration)
        self._fleet.ledger.charge(self._fleet.sim.now, CostCategory.VM_COMPUTE,
                                  cost, f"vm:{self.region.key}:{self.vm_id}")


class VmFleet:
    """Provisions and tracks VMs in one region."""

    def __init__(self, sim: Simulator, region: Region, fabric: NetworkFabric,
                 prices: PriceBook, ledger: CostLedger, rngs: RngFactory,
                 profile: VmProfile | None = None):
        self.sim = sim
        self.region = region
        self.fabric = fabric
        self.prices = prices
        self.ledger = ledger
        self.profile = profile or VmProfile()
        self._rng = rngs.stream(f"vm:{region.key}")
        self._seq = itertools.count(1)
        self.provisioned = 0

    def provision(self):
        """Process: boot a VM and start its gateway container.

        Takes provisioning + container startup time (tens of seconds;
        the dominant term in Skyplane's replication delay).
        """
        provision = float(
            self.profile.provision_s[self.region.provider].sample(self._rng)
        )
        yield self.sim.sleep(provision)
        container = float(self.profile.container_startup_s.sample(self._rng))
        yield self.sim.sleep(container)
        self.provisioned += 1
        return Vm(next(self._seq), self.region, self,
                  provision_s=provision, container_s=container)

    def sample_session_overhead(self) -> float:
        return float(self.profile.session_overhead_s.sample(self._rng))
