"""Serverless workflow timers.

The paper realizes SLO-bounded batching with cloud-managed serverless
workflows (AWS Step Functions ``Wait`` states, Durable Functions
timers, Google Workflows sleeps).  The simulation needs only the one
primitive those services share: *durably schedule a callback for a
future instant*, billed per state transition.
"""

from __future__ import annotations

from typing import Callable

from repro.simcloud.cost import CostCategory, CostLedger
from repro.simcloud.sim import Simulator

__all__ = ["WorkflowTimers"]

# AWS Step Functions standard workflows: $25 per million state
# transitions; a wait-then-invoke is ~2 transitions.
_COST_PER_TIMER = 5.0e-5


class WorkflowTimers:
    """Durable delayed invocations for one cloud region."""

    def __init__(self, sim: Simulator, ledger: CostLedger):
        self.sim = sim
        self._ledger = ledger
        self.scheduled = 0

    def schedule_at(self, time: float, fn: Callable[[], None], detail: str = "") -> None:
        """Run ``fn`` at absolute simulated ``time`` (>= now)."""
        self.scheduled += 1
        self._ledger.charge(self.sim.now, CostCategory.WORKFLOW,
                            _COST_PER_TIMER, detail or "timer")
        self.sim.call_at(max(time, self.sim.now), fn)

    def schedule_after(self, delay: float, fn: Callable[[], None], detail: str = "") -> None:
        self.schedule_at(self.sim.now + max(0.0, delay), fn, detail)
