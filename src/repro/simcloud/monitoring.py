"""Lightweight time-series monitoring for the simulated clouds.

Production replication systems live and die by their dashboards.  This
module provides the simulation-side equivalent: counters and gauges
sampled on the simulated clock, plus a :class:`CloudMonitor` that wires
standard probes (concurrent function instances, queued invocations,
cumulative egress dollars, replication backlog) onto a cloud and a
service.  Series render directly to the text-chart strips used in the
benchmark outputs.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.stats import latest_window_percentile
from repro.analysis.textchart import series_strip
from repro.simcloud.sim import Simulator

__all__ = ["TimeSeries", "CloudMonitor"]


@dataclass
class TimeSeries:
    """Timestamped samples of one metric."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(f"{self.name}: time went backwards")
        self.times.append(time)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def latest(self) -> float:
        return self.values[-1] if self.values else math.nan

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else math.nan

    def mean(self) -> float:
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    def at(self, time: float) -> float:
        """The last sample at or before ``time`` (step interpolation)."""
        idx = bisect.bisect_right(self.times, time) - 1
        return self.values[idx] if idx >= 0 else math.nan

    def window_max(self, start: float, end: float) -> float:
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        window = self.values[lo:hi]
        return max(window) if window else math.nan

    def window(self, start: float,
               end: float | None = None) -> tuple[list[float], list[float]]:
        """The (times, values) samples in ``[start, end]`` (``end``
        defaults to the newest sample).  O(log n) slicing — the hedge
        monitor reads its trailing completion window through this on
        every deadline computation."""
        lo = bisect.bisect_left(self.times, start)
        hi = len(self.times) if end is None else bisect.bisect_right(
            self.times, end)
        return self.times[lo:hi], self.values[lo:hi]

    def window_percentile(self, p: float, window_s: float,
                          now: float) -> Optional[float]:
        """The p-quantile of the samples in ``[now - window_s, now]``.

        Thin accessor over :func:`repro.analysis.stats.
        latest_window_percentile`, preserving its explicit ``None``
        sentinel for a cold signal (no samples in the window).  Every
        decision path that derives a threshold from a trailing window —
        the hedge deadline, the autopilot's SLO error — goes through
        this one fail-closed quantile, so a cold window can never leak
        a NaN into a comparison.
        """
        return latest_window_percentile(self.times, self.values, p,
                                        window_s, now)

    def discard_before(self, cutoff: float) -> None:
        """Drop samples older than ``cutoff`` (bounded-memory trailing
        windows: a busy-hour replay records one sample per part)."""
        lo = bisect.bisect_left(self.times, cutoff)
        if lo:
            del self.times[:lo]
            del self.values[:lo]

    def strip(self, width: int = 60) -> str:
        """Render as a one-line sparkline."""
        return series_strip(self.values, width=width, title=self.name)


class CloudMonitor:
    """Periodic sampler of standard cloud/service health metrics."""

    def __init__(self, sim: Simulator, interval_s: float = 10.0,
                 retention_s: Optional[float] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if retention_s is not None and retention_s <= 0:
            raise ValueError("retention_s must be positive (or None)")
        self.sim = sim
        self.interval_s = interval_s
        #: Trailing retention window: samples older than ``retention_s``
        #: are discarded on every sampling tick, bounding the monitor's
        #: memory on long runs (a scale-100 busy hour would otherwise
        #: grow every probe series without limit).  ``None`` keeps the
        #: historical keep-everything behaviour for plotting runs.
        self.retention_s = retention_s
        self.series: dict[str, TimeSeries] = {}
        self._probes: list[tuple[str, Callable[[], float]]] = []
        self._running = False

    # -- wiring ----------------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        """Sample ``fn()`` into a series every interval."""
        if name in self.series:
            raise ValueError(f"duplicate probe {name!r}")
        ts = TimeSeries(name)
        self.series[name] = ts
        self._probes.append((name, fn))
        return ts

    def watch_faas(self, faas, prefix: Optional[str] = None) -> None:
        """Standard FaaS probes: running instances and queue depth."""
        p = prefix or faas.region.key
        self.add_probe(f"{p}.running", lambda: float(faas.running))
        self.add_probe(f"{p}.queued", lambda: float(len(faas._queue)))

    def watch_ledger(self, ledger, category: Optional[str] = None,
                     name: str = "cost") -> None:
        self.add_probe(name, lambda: ledger.total(category))

    def watch_service(self, service, name: str = "backlog") -> None:
        """Replication backlog: source writes not yet visible."""
        self.add_probe(name, lambda: float(service.pending_count()))

    # -- sampling loop -------------------------------------------------------

    def start(self, duration_s: float) -> None:
        """Sample every ``interval_s`` for the next ``duration_s`` of
        simulated time (bounded, so a drained simulation still
        terminates; call again to extend, or :meth:`stop` to end early).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self._running:
            raise RuntimeError("monitor already started")
        self._running = True
        deadline = self.sim.now + duration_s

        def tick() -> None:
            if not self._running:
                return
            self.sample()
            if self.sim.now >= deadline:
                self._running = False
                return
            self._timer = self.sim.call_later(self.interval_s, tick)

        self.sample()
        self._timer = self.sim.call_later(self.interval_s, tick)

    def stop(self) -> None:
        self._running = False
        timer = getattr(self, "_timer", None)
        if timer is not None:
            timer.cancel()

    def sample(self) -> None:
        """Take one sample of every probe, now (pruning expired samples
        when a retention window is configured)."""
        now = self.sim.now
        cutoff = None if self.retention_s is None else now - self.retention_s
        for name, fn in self._probes:
            ts = self.series[name]
            ts.record(now, fn())
            if cutoff is not None:
                ts.discard_before(cutoff)

    # -- reporting ----------------------------------------------------------------

    def report(self, width: int = 60) -> str:
        """All series as sparkline strips."""
        return "\n".join(ts.strip(width) for ts in self.series.values())
