"""Simulated object storage (S3 / Blob Storage / GCS).

Implements the API surface AReplica depends on (§2 of the paper):

* a simple ``PUT``/``DELETE`` write interface — objects are immutable,
  an update overwrites the whole object;
* flexible ranged ``GET``;
* multipart upload for writing a large object in parallel parts;
* platform-generated **ETags** (content hashes);
* optional versioning (required by the proprietary replication
  baselines);
* event notifications on object creation/deletion.

Object *content* is symbolic: a :class:`Blob` is a size plus a content
identifier, and slices/concatenations derive new identifiers.  This
lets the simulation replicate 100 GB objects without allocating bytes
while still detecting consistency bugs — an object assembled from parts
of two different source versions yields a different content id (and
hence ETag) than either source version, exactly the corruption the
paper's Figure 14 race produces.

State changes here are instantaneous; request latency, transfer time,
and cost metering are applied by the caller (the function/VM runtime
contexts in :mod:`repro.simcloud.faas` / :mod:`repro.simcloud.vm`),
because they depend on where the caller executes.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Callable, Iterable, Optional

from repro.simcloud.regions import Region

__all__ = [
    "Blob",
    "ObjectVersion",
    "ObjectEvent",
    "Bucket",
    "NoSuchKey",
    "NoSuchUpload",
    "PreconditionFailed",
    "ServiceUnavailable",
]


class NoSuchKey(KeyError):
    """GET/DELETE/COPY on a key that does not exist."""


class ServiceUnavailable(RuntimeError):
    """The bucket's region is suffering an outage (injected fault)."""


class NoSuchUpload(KeyError):
    """Operation on an unknown or already-completed multipart upload."""


class PreconditionFailed(RuntimeError):
    """A conditional request (If-Match etc.) failed."""


_fresh_counter = itertools.count()

#: One contiguous run of bytes from an original content source:
#: (source id, offset within the source, length).
Segment = tuple[str, int, int]


@dataclass(frozen=True)
class Blob:
    """Symbolic object content.

    Content is a sequence of *segments*, each referencing a byte range
    of some originally-written content source.  Slicing and
    concatenation are exact segment arithmetic, and adjacent contiguous
    segments merge, so content identity is fully normalized:
    reassembling the parts of an object — in any partition — reproduces
    the original identity (and hence ETag), slices of concatenations
    behave like real byte ranges, and an object assembled from parts of
    two different versions matches neither (the Figure 14 corruption is
    detectable by ETag).
    """

    size: int
    segments: tuple[Segment, ...]

    @staticmethod
    def fresh(size: int, tag: str = "") -> "Blob":
        """New, globally unique content of ``size`` bytes."""
        if size < 0:
            raise ValueError("blob size must be non-negative")
        if size == 0:
            return Blob(0, ())
        return Blob(size, ((f"c{next(_fresh_counter)}:{tag}", 0, size),))

    def slice(self, offset: int, length: int) -> "Blob":
        """The sub-range ``[offset, offset+length)`` of this content."""
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"invalid range [{offset}, {offset + length}) of {self.size}-byte blob"
            )
        if offset == 0 and length == self.size:
            return self
        out: list[Segment] = []
        remaining = length
        cursor = offset
        pos = 0
        for source, seg_off, seg_len in self.segments:
            if remaining == 0:
                break
            seg_end = pos + seg_len
            if cursor < seg_end:
                take_off = seg_off + (cursor - pos)
                take_len = min(seg_end - cursor, remaining)
                out.append((source, take_off, take_len))
                cursor += take_len
                remaining -= take_len
            pos = seg_end
        return Blob(length, _merge_segments(out))

    @staticmethod
    def concat(parts: Iterable["Blob"]) -> "Blob":
        """Content formed by concatenating ``parts`` in order."""
        parts = [p for p in parts if p.size > 0]
        if not parts:
            return Blob(0, ())
        if len(parts) == 1:
            return parts[0]
        segments: list[Segment] = []
        for p in parts:
            segments.extend(p.segments)
        return Blob(sum(p.size for p in parts), _merge_segments(segments))

    @cached_property
    def content_id(self) -> str:
        """Canonical string identity of the content."""
        return "+".join(f"{s}@{o}#{n}" for s, o, n in self.segments) or "empty"

    @cached_property
    def etag(self) -> str:
        """Platform-generated content hash (like the S3 ETag)."""
        return hashlib.md5(self.content_id.encode()).hexdigest()


def _merge_segments(segments: list[Segment]) -> tuple[Segment, ...]:
    """Coalesce adjacent segments that are contiguous in one source."""
    merged: list[Segment] = []
    for source, off, length in segments:
        if length == 0:
            continue
        if merged:
            prev_source, prev_off, prev_len = merged[-1]
            if prev_source == source and prev_off + prev_len == off:
                merged[-1] = (source, prev_off, prev_len + length)
                continue
        merged.append((source, off, length))
    return tuple(merged)


@dataclass(frozen=True)
class ObjectVersion:
    """One immutable version of an object."""

    key: str
    blob: Blob
    version_id: str
    put_time: float
    sequencer: int
    #: Injected-fault override: a store that misreports an ETag on a
    #: read hands back metadata whose hash does not match the payload.
    reported_etag: Optional[str] = None

    @property
    def size(self) -> int:
        return self.blob.size

    @property
    def etag(self) -> str:
        return self.reported_etag if self.reported_etag is not None \
            else self.blob.etag


@dataclass(frozen=True)
class ObjectEvent:
    """A cloud notification payload (JSON-equivalent metadata)."""

    kind: str                  # "created" | "deleted"
    bucket: str
    region: Region
    key: str
    size: int
    etag: str
    sequencer: int
    event_time: float          # when the triggering request completed


@dataclass
class _MultipartUpload:
    key: str
    upload_id: str
    base_etag: Optional[str]   # If-Match guard captured at initiation
    parts: dict[int, Blob] = field(default_factory=dict)
    completed: bool = False


class Bucket:
    """A bucket in one region of one provider."""

    def __init__(self, name: str, region: Region, versioning: bool = False):
        self.name = name
        self.region = region
        self.versioning = versioning
        self._objects: dict[str, ObjectVersion] = {}
        self._noncurrent: dict[str, list[ObjectVersion]] = {}
        self._uploads: dict[str, _MultipartUpload] = {}
        self._seq = itertools.count(1)
        self._upload_seq = itertools.count(1)
        #: The most recently issued sequencer (0 before any write).
        self.last_sequencer = 0
        self._listeners: list[Callable[[ObjectEvent], None]] = []
        self._listeners_snapshot: tuple[Callable[[ObjectEvent], None], ...] = ()
        #: Injected-fault flag: while True, every data-plane operation
        #: raises :class:`ServiceUnavailable` (a region-wide outage).
        self.in_outage = False
        #: Optional HealthTracker told about every outage rejection;
        #: healthy calls are not recorded here (the data plane is too
        #: hot) — store breakers close via the engine's transfer-success
        #: reports instead.
        self.health_sink = None
        #: Silent-corruption fault injection (see :meth:`set_chaos`).
        self._chaos = None
        self._chaos_rng = None
        #: Per-bucket injected-corruption tally, aggregated into
        #: ``Cloud.chaos_stats``.
        self.chaos_counters = {
            "at_rest_rot": 0, "truncated_reads": 0, "wrong_etag": 0,
        }

    def set_chaos(self, chaos, rng) -> None:
        """Install (or clear) at-rest corruption faults on this bucket.

        ``chaos`` is a :class:`~repro.simcloud.chaos.ChaosConfig` (or
        None); ``rng`` a dedicated seeded stream.  Only the at-rest
        knobs apply here — in-flight flips live on the FaaS client data
        path — and a config without them installs nothing, keeping the
        clean read path a single ``is None`` check.
        """
        if chaos is not None and chaos.corruption_at_rest_enabled:
            self._chaos = chaos
            self._chaos_rng = rng
        else:
            self._chaos = None
            self._chaos_rng = None

    def _chaos_read(self, key: str, payload: Blob,
                    obj: ObjectVersion) -> tuple[Blob, ObjectVersion]:
        """Apply injected read faults: rot, truncation, wrong ETag.

        Rot and truncation are *medium* faults — the stored bytes stay
        good, this read returned bad data — so a verified re-read
        recovers.  Durable rot is injected via :meth:`rot_object`.
        """
        chaos, rng = self._chaos, self._chaos_rng
        # One draw, cumulative thresholds: at most one fault per read,
        # so every injected corruption maps to exactly one detectable
        # anomaly (the accounting the corruption drill audits).
        draw = rng.random()
        if draw < chaos.corrupt_at_rest_prob:
            self.chaos_counters["at_rest_rot"] += 1
            payload = Blob.fresh(payload.size, tag=f"rot:{key}")
            return payload, obj
        draw -= chaos.corrupt_at_rest_prob
        if draw < chaos.corrupt_truncate_prob and payload.size > 1:
            self.chaos_counters["truncated_reads"] += 1
            return payload.slice(0, max(1, payload.size // 2)), obj
        draw -= chaos.corrupt_truncate_prob
        if draw < chaos.corrupt_wrong_etag_prob:
            self.chaos_counters["wrong_etag"] += 1
            obj = replace(
                obj, reported_etag=f"bogus{int(rng.integers(1 << 32)):08x}")
        return payload, obj

    def rot_object(self, key: str) -> tuple[str, str]:
        """Durably rot the current version's stored content (bit rot).

        The object silently now holds garbage of the original size — no
        event, no new sequencer, and HEAD keeps reporting the *pre-rot*
        ETag (object-store ETags are computed at write time, so decayed
        media lies until something re-reads the bytes).  Only a
        byte-level deep scrub can catch this — exactly the divergence
        the shallow ETag diff cannot.  Deterministic hook for scrub
        drills and tests.  Returns ``(reported_etag, true_etag)``.
        """
        obj = self.head(key)
        if obj.size == 0:
            return obj.etag, obj.etag
        rotten = Blob.fresh(obj.size, tag=f"rot:{key}")
        self._objects[key] = replace(obj, blob=rotten,
                                     reported_etag=obj.etag)
        self.chaos_counters["at_rest_rot"] += 1
        return obj.etag, rotten.etag

    def _check_available(self) -> None:
        if self.in_outage:
            if self.health_sink is not None:
                self.health_sink.record(("store", self.region.key), False)
            raise ServiceUnavailable(
                f"{self.region.key}/{self.name} is unavailable (outage)")

    # -- introspection ---------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def head(self, key: str) -> ObjectVersion:
        """Metadata lookup; raises :class:`NoSuchKey` if absent."""
        self._check_available()
        try:
            return self._objects[key]
        except KeyError:
            raise NoSuchKey(key) from None

    def current_etag(self, key: str) -> Optional[str]:
        obj = self._objects.get(key)
        return obj.etag if obj is not None else None

    def total_bytes(self, include_noncurrent: bool = False) -> int:
        total = sum(o.size for o in self._objects.values())
        if include_noncurrent:
            total += sum(o.size for vs in self._noncurrent.values() for o in vs)
        return total

    def noncurrent_versions(self, key: str) -> list[ObjectVersion]:
        return list(self._noncurrent.get(key, []))

    def noncurrent_bytes(self) -> int:
        return sum(o.size for vs in self._noncurrent.values() for o in vs)

    def expire_noncurrent(self, now: float, older_than_s: float) -> int:
        """Lifecycle sweep: drop non-current versions superseded more
        than ``older_than_s`` ago (day-granularity in real clouds — the
        reason §5.2 says versioning at least doubles the storage cost of
        a daily-updated object).  Returns bytes reclaimed.

        A version's supersession time is approximated by the put time of
        the next version; the current version is never expired.
        """
        reclaimed = 0
        for key, versions in list(self._noncurrent.items()):
            timeline = versions + ([self._objects[key]] if key in self._objects
                                   else [])
            keep = []
            for i, version in enumerate(versions):
                if i + 1 < len(timeline):
                    superseded_at = timeline[i + 1].put_time
                else:
                    # The key was deleted and this was its final version;
                    # the exact delete time is not retained, so date the
                    # supersession from the version's own write.
                    superseded_at = version.put_time
                if now - superseded_at > older_than_s:
                    reclaimed += version.size
                else:
                    keep.append(version)
            if keep:
                self._noncurrent[key] = keep
            else:
                del self._noncurrent[key]
        return reclaimed

    # -- event wiring ------------------------------------------------------

    def subscribe(self, listener: Callable[[ObjectEvent], None]) -> None:
        """Register for creation/deletion events (raw, undelayed)."""
        self._listeners.append(listener)
        self._listeners_snapshot = tuple(self._listeners)

    def _emit(self, event: ObjectEvent) -> None:
        # Iterate the subscribe-time snapshot: no per-event list copy,
        # and listeners registered mid-emit only see later events.
        for listener in self._listeners_snapshot:
            listener(event)

    # -- write path ---------------------------------------------------------

    def put_object(
        self,
        key: str,
        blob: Blob,
        time: float,
        if_match: Optional[str] = None,
        notify: bool = True,
    ) -> ObjectVersion:
        """Create/overwrite ``key`` with ``blob``.

        ``if_match`` enforces a conditional write on the current ETag
        (used by changelog application to guard against stale sources).
        """
        self._check_available()
        if if_match is not None:
            current = self.current_etag(key)
            if current != if_match:
                raise PreconditionFailed(
                    f"If-Match {if_match} != current {current} for {key!r}"
                )
        seq = next(self._seq)
        self.last_sequencer = seq
        version = ObjectVersion(key, blob, f"v{seq}", time, seq)
        prior = self._objects.get(key)
        if prior is not None and self.versioning:
            self._noncurrent.setdefault(key, []).append(prior)
        self._objects[key] = version
        if notify:
            self._emit(
                ObjectEvent(
                    "created", self.name, self.region, key, blob.size,
                    blob.etag, seq, time,
                )
            )
        return version

    def delete_object(self, key: str, time: float, notify: bool = True) -> None:
        self._check_available()
        prior = self._objects.pop(key, None)
        if prior is None:
            # Object storage DELETE is idempotent; deleting a missing
            # key succeeds without an event.
            return
        if self.versioning:
            self._noncurrent.setdefault(key, []).append(prior)
        if notify:
            seq = next(self._seq)
            self.last_sequencer = seq
            self._emit(
                ObjectEvent(
                    "deleted", self.name, self.region, key, prior.size,
                    prior.etag, seq, time,
                )
            )

    def copy_object(self, src_key: str, dst_key: str, time: float,
                    notify: bool = True) -> ObjectVersion:
        """Server-side copy within this bucket (no WAN traffic)."""
        src = self.head(src_key)
        return self.put_object(dst_key, src.blob, time, notify=notify)

    def compose_objects(self, src_keys: list[str], dst_key: str, time: float,
                        notify: bool = True) -> ObjectVersion:
        """Server-side concatenation of existing objects (GCS ``compose``
        / S3 multipart ``UploadPartCopy``) — no WAN traffic."""
        blobs = [self.head(k).blob for k in src_keys]
        return self.put_object(dst_key, Blob.concat(blobs), time, notify=notify)

    # -- read path ----------------------------------------------------------

    def get_object(self, key: str, offset: int = 0,
                   length: Optional[int] = None) -> tuple[Blob, ObjectVersion]:
        """Ranged GET: returns the requested slice and version metadata."""
        obj = self.head(key)
        if length is None:
            length = obj.size - offset
        payload = obj.blob.slice(offset, length)
        if self._chaos is not None and payload.size > 0:
            payload, obj = self._chaos_read(key, payload, obj)
        return payload, obj

    # -- multipart upload -----------------------------------------------------

    def initiate_multipart(self, key: str, if_match: Optional[str] = None) -> str:
        self._check_available()
        upload_id = f"mpu{next(self._upload_seq)}"
        self._uploads[upload_id] = _MultipartUpload(key, upload_id, if_match)
        return upload_id

    def upload_part(self, upload_id: str, part_number: int, blob: Blob) -> str:
        """Store one part; returns the part's ETag."""
        self._check_available()
        upload = self._uploads.get(upload_id)
        if upload is None or upload.completed:
            raise NoSuchUpload(upload_id)
        if part_number < 1:
            raise ValueError("part numbers start at 1")
        upload.parts[part_number] = blob
        return blob.etag

    def complete_multipart(self, upload_id: str, time: float,
                           notify: bool = True) -> ObjectVersion:
        upload = self._uploads.get(upload_id)
        if upload is None or upload.completed:
            raise NoSuchUpload(upload_id)
        if not upload.parts:
            raise ValueError("multipart upload has no parts")
        ordered = [upload.parts[n] for n in sorted(upload.parts)]
        blob = Blob.concat(ordered)
        upload.completed = True
        del self._uploads[upload_id]
        return self.put_object(upload.key, blob, time, if_match=upload.base_etag,
                               notify=notify)

    def abort_multipart(self, upload_id: str) -> None:
        self._uploads.pop(upload_id, None)

    def pending_uploads(self) -> list[str]:
        """Upload ids initiated but neither completed nor aborted.

        Real clouds keep billing the parts of abandoned multipart
        uploads until a lifecycle rule cleans them up; the replication
        auditor flags such leaks.
        """
        return sorted(u for u, s in self._uploads.items() if not s.completed)
