"""Cost accounting.

Every simulated cloud component reports its metered usage to a
:class:`CostLedger`.  Experiments snapshot the ledger before and after
an operation to attribute cost, exactly the way the paper "estimates
cost based on listed prices and metered usage from recorded logs".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["CostCategory", "CostEntry", "CostLedger", "CostSnapshot"]


class CostCategory:
    """Cost buckets used throughout the evaluation."""

    FAAS_COMPUTE = "faas_compute"
    FAAS_REQUESTS = "faas_requests"
    VM_COMPUTE = "vm_compute"
    EGRESS = "egress"
    STORAGE_REQUESTS = "storage_requests"
    KV_OPS = "kv_ops"
    STORAGE_CAPACITY = "storage_capacity"
    RTC_FEE = "rtc_fee"
    WORKFLOW = "workflow"
    #: Speculative-hedging clone invocations (the engine's tail-latency
    #: cloning).  Tracked as its own line — separate from the clone's
    #: ordinary FAAS_* / EGRESS metering — so the delay/cost frontier
    #: of hedging versus plain retries is readable off the ledger.
    HEDGE_CLONES = "hedge_clones"

    ALL = (
        FAAS_COMPUTE,
        FAAS_REQUESTS,
        VM_COMPUTE,
        EGRESS,
        STORAGE_REQUESTS,
        KV_OPS,
        STORAGE_CAPACITY,
        RTC_FEE,
        WORKFLOW,
        HEDGE_CLONES,
    )


@dataclass(frozen=True)
class CostEntry:
    """One metered charge."""

    time: float
    category: str
    amount: float
    detail: str = ""


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable totals, used to compute per-operation deltas."""

    totals: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def delta(self, later: "CostSnapshot") -> "CostSnapshot":
        keys = set(self.totals) | set(later.totals)
        return CostSnapshot(
            {k: later.totals.get(k, 0.0) - self.totals.get(k, 0.0) for k in keys}
        )


@dataclass
class CostLedger:
    """Append-only record of charges with per-category totals."""

    keep_entries: bool = False
    entries: list[CostEntry] = field(default_factory=list)
    _totals: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Optional observer called with every charge — the tracing layer
    #: installs one to mirror charges (with task attribution where the
    #: charging site knows it) into the causal trace.  None by default:
    #: the hot path pays a single identity check.
    sink: object = None

    def charge(self, time: float, category: str, amount: float,
               detail: str = "", task: str | None = None) -> None:
        if amount < 0:
            raise ValueError(f"negative charge {amount} ({category}: {detail})")
        if category not in CostCategory.ALL:
            raise ValueError(f"unknown cost category {category!r}")
        self._totals[category] += amount
        if self.keep_entries:
            self.entries.append(CostEntry(time, category, amount, detail))
        if self.sink is not None:
            self.sink(time, category, amount, detail, task)

    def total(self, category: str | None = None) -> float:
        if category is None:
            return sum(self._totals.values())
        return self._totals.get(category, 0.0)

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(dict(self._totals))

    def breakdown(self) -> dict[str, float]:
        """Non-zero totals per category, for reporting."""
        return {k: v for k, v in self._totals.items() if v > 0}
