"""Cost accounting.

Every simulated cloud component reports its metered usage to a
:class:`CostLedger`.  Experiments snapshot the ledger before and after
an operation to attribute cost, exactly the way the paper "estimates
cost based on listed prices and metered usage from recorded logs".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["CostCategory", "CostEntry", "CostLedger", "CostSnapshot",
           "TenantLedger", "estimate_task_cost"]


class CostCategory:
    """Cost buckets used throughout the evaluation."""

    FAAS_COMPUTE = "faas_compute"
    FAAS_REQUESTS = "faas_requests"
    VM_COMPUTE = "vm_compute"
    EGRESS = "egress"
    STORAGE_REQUESTS = "storage_requests"
    KV_OPS = "kv_ops"
    STORAGE_CAPACITY = "storage_capacity"
    RTC_FEE = "rtc_fee"
    WORKFLOW = "workflow"
    #: Speculative-hedging clone invocations (the engine's tail-latency
    #: cloning).  Tracked as its own line — separate from the clone's
    #: ordinary FAAS_* / EGRESS metering — so the delay/cost frontier
    #: of hedging versus plain retries is readable off the ledger.
    HEDGE_CLONES = "hedge_clones"

    ALL = (
        FAAS_COMPUTE,
        FAAS_REQUESTS,
        VM_COMPUTE,
        EGRESS,
        STORAGE_REQUESTS,
        KV_OPS,
        STORAGE_CAPACITY,
        RTC_FEE,
        WORKFLOW,
        HEDGE_CLONES,
    )


@dataclass(frozen=True)
class CostEntry:
    """One metered charge."""

    time: float
    category: str
    amount: float
    detail: str = ""


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable totals, used to compute per-operation deltas."""

    totals: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def delta(self, later: "CostSnapshot") -> "CostSnapshot":
        keys = set(self.totals) | set(later.totals)
        return CostSnapshot(
            {k: later.totals.get(k, 0.0) - self.totals.get(k, 0.0) for k in keys}
        )


@dataclass
class CostLedger:
    """Append-only record of charges with per-category totals."""

    keep_entries: bool = False
    entries: list[CostEntry] = field(default_factory=list)
    _totals: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Optional observer called with every charge — the tracing layer
    #: installs one to mirror charges (with task attribution where the
    #: charging site knows it) into the causal trace.  None by default:
    #: the hot path pays a single identity check.
    sink: object = None

    def charge(self, time: float, category: str, amount: float,
               detail: str = "", task: str | None = None) -> None:
        if amount < 0:
            raise ValueError(f"negative charge {amount} ({category}: {detail})")
        if category not in CostCategory.ALL:
            raise ValueError(f"unknown cost category {category!r}")
        self._totals[category] += amount
        if self.keep_entries:
            self.entries.append(CostEntry(time, category, amount, detail))
        if self.sink is not None:
            self.sink(time, category, amount, detail, task)

    def total(self, category: str | None = None) -> float:
        if category is None:
            return sum(self._totals.values())
        return self._totals.get(category, 0.0)

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(dict(self._totals))

    def breakdown(self) -> dict[str, float]:
        """Non-zero totals per category, for reporting."""
        return {k: v for k, v in self._totals.items() if v > 0}


def estimate_task_cost(prices, src_region, dst_region, size: int) -> float:
    """Deterministic admission-time estimate of one replication task.

    The budget admission controller reserves this amount against the
    tenant's window budget *before* dispatch.  The estimate is a pure
    function of the object size and the region pair — egress at the
    published per-GB rate plus a nominal request/compute surcharge — so
    it is identical across seeds, shard counts, and execution orders:
    the property the shard-equivalence and no-post-exhaustion-spend
    guarantees rest on.  Actual metered spend (cold starts, retries,
    congestion) still lands on the global :class:`CostLedger`; the
    tenant ledger tracks reservations, which is what the hard budget
    caps.
    """
    egress = prices.egress_cost(src_region, dst_region, size)
    src_store = prices.store[src_region.provider]
    dst_store = prices.store[dst_region.provider]
    faas = prices.faas[src_region.provider]
    # One GET at the source, one PUT at the destination, one
    # orchestrator invocation at roughly one billed second of the
    # platform's cheapest configuration — a floor, not a forecast.
    requests = src_store.get + dst_store.put + faas.per_request
    compute = prices.faas_compute_cost(src_region.provider, 1024, 1.0, 1.0)
    return egress + requests + compute


@dataclass(frozen=True)
class TenantChargeEntry:
    """One admission reservation against a tenant's window budget."""

    time: float
    window: int
    amount: float
    detail: str = ""


class TenantLedger:
    """Per-tenant admission spend over rolling budget windows.

    Records the estimated cost of every *admitted* task (a reservation,
    charged before dispatch) and the index of the accounting window it
    landed in.  ``window_spent`` resets when :meth:`roll` advances the
    window; lifetime totals are monotonic.  The admission rule the
    service applies — admit while ``window_spent < budget`` — keeps the
    entry stream self-certifying: within any window, the cumulative
    spend *before* each entry is strictly below the budget, which is
    exactly the "no post-exhaustion spend" check drills replay from
    :attr:`entries`.
    """

    __slots__ = ("tenant_id", "budget_usd", "window_s", "window_index",
                 "window_spent", "lifetime_spent", "entries")

    def __init__(self, tenant_id: str, budget_usd: float | None,
                 window_s: float):
        self.tenant_id = tenant_id
        self.budget_usd = budget_usd
        self.window_s = window_s
        self.window_index = 0
        self.window_spent = 0.0
        self.lifetime_spent = 0.0
        self.entries: list[TenantChargeEntry] = []

    def window_of(self, time: float) -> int:
        """The accounting window a timestamp falls in."""
        return int(time // self.window_s)

    def sync(self, time: float) -> None:
        """Advance to the window containing ``time`` (idempotent)."""
        index = self.window_of(time)
        if index > self.window_index:
            self.roll(index)

    def roll(self, index: int) -> None:
        """Open window ``index``, resetting the window spend."""
        if index <= self.window_index:
            return
        self.window_index = index
        self.window_spent = 0.0

    @property
    def exhausted(self) -> bool:
        """No further admission in the current window."""
        return (self.budget_usd is not None
                and self.window_spent >= self.budget_usd)

    def charge(self, time: float, amount: float, detail: str = "") -> None:
        """Reserve ``amount`` in the window containing ``time``."""
        if amount < 0:
            raise ValueError(f"negative tenant charge {amount}")
        self.sync(time)
        self.window_spent += amount
        self.lifetime_spent += amount
        self.entries.append(
            TenantChargeEntry(time, self.window_index, amount, detail))

    def over_admissions(self) -> int:
        """Entries whose window had already exhausted the budget when
        they were charged — must be zero for a correct controller."""
        if self.budget_usd is None:
            return 0
        violations = 0
        running: dict[int, float] = {}
        for entry in self.entries:
            before = running.get(entry.window, 0.0)
            if before >= self.budget_usd:
                violations += 1
            running[entry.window] = before + entry.amount
        return violations
