"""Azure object replication baseline model.

Azure's managed block-blob replication between two Azure storage
accounts: no SLO guarantee, consistently >60 s replication delay in the
paper's measurements (Table 2), versioning required on both ends.  The
service itself is free of charge; the user still pays inter-region
bandwidth, requests, and versioning storage — which is why AReplica is
*more expensive* than AZ Rep on Azure-to-Azure paths (Table 2's
positive cost deltas) while being ~4-8x faster.
"""

from __future__ import annotations

from repro.baselines.s3rtc import GB, _ManagedReplicatorBase
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Bucket
from repro.simcloud.regions import geo_distance_km

__all__ = ["AzureObjectReplicator"]


class AzureObjectReplicator(_ManagedReplicatorBase):
    """Azure object replication between two Azure buckets."""

    _BASE_MEAN = 60.0
    _BASE_STD = 2.5
    _PER_1000KM = 0.35
    _PER_GB = 1.5
    _RATE_KNEE = 25.0
    _RATE_SLOPE = 0.3

    def _check_buckets(self, src: Bucket, dst: Bucket) -> None:
        if src.region.provider != "azure" or dst.region.provider != "azure":
            raise ValueError("Azure object replication is Azure-to-Azure only")
        if not (src.versioning and dst.versioning):
            raise ValueError("Azure object replication requires versioning")

    def _sample_delay(self, size: int) -> float:
        mean = (self._BASE_MEAN
                + self._PER_1000KM * geo_distance_km(self.src_bucket.region,
                                                     self.dst_bucket.region) / 1000.0
                + self._PER_GB * size / GB)
        rate = self._load_rate()
        if rate > self._RATE_KNEE:
            mean += self._RATE_SLOPE * (rate - self._RATE_KNEE)
            mean += float(self._rng.lognormal(0.5, 1.0))
        return max(5.0, float(self._rng.normal(mean, self._BASE_STD)))

    def _charge(self, size: int) -> None:
        prices = self.cloud.prices
        ledger = self.cloud.ledger
        now = self.cloud.now
        # No service fee; bandwidth + requests + versioning storage only.
        egress = prices.egress_cost(self.src_bucket.region,
                                    self.dst_bucket.region, size)
        if egress > 0:
            ledger.charge(now, CostCategory.EGRESS, egress, "azrep")
        store = prices.store["azure"]
        ledger.charge(now, CostCategory.STORAGE_REQUESTS,
                      store.get + store.put, "azrep")
        ledger.charge(now, CostCategory.STORAGE_CAPACITY,
                      self._versioning_surcharge(size), "azrep-versioning")
