"""AWS S3 Replication Time Control (S3 RTC) baseline model.

S3 RTC is the proprietary managed replication service AWS offers
between two S3 buckets (same-cloud only) with a 15-minute SLO.  The
paper's measurements (§8.1, Fig 23) show a typical replication delay of
15-26 seconds that grows mildly with object size and distance, with a
heavy tail exceeding 30 seconds during traffic bursts.  Versioning must
be enabled on both buckets (a prerequisite), and usage is billed as the
RTC data fee ($0.015/GB) on top of inter-region transfer and request
charges, plus the extra storage the mandatory versioning retains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcloud.cloud import Cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Bucket, ObjectEvent
from repro.simcloud.regions import geo_distance_km

__all__ = ["S3RTCReplicator", "ProprietaryRecord"]

GB = 10**9


@dataclass(frozen=True)
class ProprietaryRecord:
    """One managed-service replication completion."""

    key: str
    size: int
    event_time: float
    done_time: float

    @property
    def delay(self) -> float:
        return self.done_time - self.event_time


class _ManagedReplicatorBase:
    """Shared machinery of the managed (black-box) baselines."""

    #: Sliding window for burst detection (seconds).
    _LOAD_WINDOW = 30.0

    def __init__(self, cloud: Cloud, src_bucket: Bucket, dst_bucket: Bucket):
        self._check_buckets(src_bucket, dst_bucket)
        self.cloud = cloud
        self.src_bucket = src_bucket
        self.dst_bucket = dst_bucket
        self.records: list[ProprietaryRecord] = []
        self._rng = cloud.rngs.stream(type(self).__name__)
        self._recent_arrivals: list[float] = []

    def _check_buckets(self, src: Bucket, dst: Bucket) -> None:
        raise NotImplementedError

    def connect_notifications(self) -> None:
        """Replicate every subsequent write of the source bucket."""
        self.src_bucket.subscribe(self._on_event)

    def _on_event(self, event: ObjectEvent) -> None:
        delay = self._sample_delay(event.size)

        def deliver() -> None:
            if event.kind == "created":
                try:
                    blob, version = self.src_bucket.get_object(event.key)
                except KeyError:
                    return
                if version.sequencer < event.sequencer:
                    return
                self.dst_bucket.put_object(event.key, blob, self.cloud.now,
                                           notify=False)
            else:
                self.dst_bucket.delete_object(event.key, self.cloud.now,
                                              notify=False)
            self._charge(event.size)
            self.records.append(ProprietaryRecord(
                event.key, event.size, event.event_time, self.cloud.now))

        self.cloud.sim.call_later(delay, deliver)

    def replicate_once(self, key: str) -> ProprietaryRecord:
        """Synchronous helper for single-object measurements."""
        obj = self.src_bucket.head(key)
        event = ObjectEvent("created", self.src_bucket.name,
                            self.src_bucket.region, key, obj.size, obj.etag,
                            obj.sequencer, self.cloud.now)
        self._on_event(event)
        self.cloud.run()
        return self.records[-1]

    # -- burst tracking ------------------------------------------------------

    def _load_rate(self) -> float:
        """Arrivals per second over the recent window."""
        now = self.cloud.now
        self._recent_arrivals = [t for t in self._recent_arrivals
                                 if now - t <= self._LOAD_WINDOW]
        self._recent_arrivals.append(now)
        return len(self._recent_arrivals) / self._LOAD_WINDOW

    def _sample_delay(self, size: int) -> float:
        raise NotImplementedError

    def _charge(self, size: int) -> None:
        raise NotImplementedError

    def _versioning_surcharge(self, size: int) -> float:
        """One day of non-current-version storage at both ends — the
        minimum lifecycle granularity the paper notes (§5.2)."""
        src_p = self.cloud.prices.store[self.src_bucket.region.provider]
        dst_p = self.cloud.prices.store[self.dst_bucket.region.provider]
        return size / GB * (src_p.gb_month + dst_p.gb_month) / 30.0


class S3RTCReplicator(_ManagedReplicatorBase):
    """S3 Replication Time Control between two AWS buckets."""

    #: Baseline delay (s) and its mild per-1000-km / per-GB growth.
    _BASE_MEAN = 17.0
    _BASE_STD = 2.6
    _PER_1000KM = 0.55
    _PER_GB = 4.0
    #: Burst behaviour: above this arrival rate, delay inflates.
    _RATE_KNEE = 40.0
    _RATE_SLOPE = 0.10

    def _check_buckets(self, src: Bucket, dst: Bucket) -> None:
        if src.region.provider != "aws" or dst.region.provider != "aws":
            raise ValueError("S3 RTC only replicates between AWS buckets")
        if not (src.versioning and dst.versioning):
            raise ValueError("S3 RTC requires versioning on both buckets")

    def _sample_delay(self, size: int) -> float:
        mean = (self._BASE_MEAN
                + self._PER_1000KM * geo_distance_km(self.src_bucket.region,
                                                     self.dst_bucket.region) / 1000.0
                + self._PER_GB * size / GB)
        rate = self._load_rate()
        if rate > self._RATE_KNEE:
            # Managed replication queues during bursts; the excess has a
            # lognormal (heavy) tail — Fig 23's >30 s p99.99 spikes.
            mean += self._RATE_SLOPE * (rate - self._RATE_KNEE)
            mean += float(self._rng.lognormal(0.2, 0.9))
        return max(1.0, float(self._rng.normal(mean, self._BASE_STD)))

    def _charge(self, size: int) -> None:
        prices = self.cloud.prices
        ledger = self.cloud.ledger
        now = self.cloud.now
        src_store = prices.store[self.src_bucket.region.provider]
        ledger.charge(now, CostCategory.RTC_FEE,
                      src_store.rtc_fee_per_gb * size / GB, "s3rtc")
        egress = prices.egress_cost(self.src_bucket.region,
                                    self.dst_bucket.region, size)
        if egress > 0:
            ledger.charge(now, CostCategory.EGRESS, egress, "s3rtc")
        ledger.charge(now, CostCategory.STORAGE_REQUESTS,
                      src_store.get + prices.store[self.dst_bucket.region.provider].put,
                      "s3rtc")
        ledger.charge(now, CostCategory.STORAGE_CAPACITY,
                      self._versioning_surcharge(size), "s3rtc-versioning")
