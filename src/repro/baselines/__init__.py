"""Baseline replication systems the paper compares against (§8).

* :mod:`repro.baselines.skyplane` — the open-source, VM-based
  cross-cloud replicator (Skyplane v0.3.2's workflow envelope).
* :mod:`repro.baselines.s3rtc` — AWS S3 Replication Time Control
  (proprietary, AWS→AWS only, 15-minute SLO).
* :mod:`repro.baselines.azrep` — Azure object replication (proprietary,
  Azure→Azure only, no SLO).
"""

from repro.baselines.skyplane import SkyplaneReplicator, TransferRecord
from repro.baselines.s3rtc import S3RTCReplicator
from repro.baselines.azrep import AzureObjectReplicator

__all__ = [
    "SkyplaneReplicator",
    "TransferRecord",
    "S3RTCReplicator",
    "AzureObjectReplicator",
]
