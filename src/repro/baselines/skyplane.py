"""Skyplane-style VM-based replication baseline.

Reproduces the workflow envelope of Skyplane v0.3.2 that Figure 4
characterizes: for each transfer the system provisions a VM in the
source region and one in the destination region, deploys gateway
containers on them, establishes a relay session, streams the object
through the VM pair, and (by default) shuts the VMs down afterwards.
Provisioning and container startup dominate the replication delay;
VM-hours dominate the cost.

The keep-alive optimization from Figure 5 is supported: VMs stay warm
after a transfer and are shut down only after an idle timeout (20 s,
1 min, 5 min, or never), amortizing provisioning across a workload at
the price of idle VM-hours.  Bulk transfers (Figure 16) stripe one
object across multiple VM pairs; all stripes must finish — and all VMs
must have provisioned — before the transfer completes, so one slow VM
start extends the end-to-end time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.simcloud.cloud import Cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Bucket
from repro.simcloud.rng import normal
from repro.simcloud.vm import Vm

__all__ = ["SkyplaneReplicator", "TransferRecord"]

# Effective intra-region bucket<->VM bandwidth multiplier (matches the
# VM WAN multiplier in repro.simcloud.vm).
_VM_BANDWIDTH_MULT = 2.6
# Fixed per-transfer overhead inside the "data transfer" stage:
# chunking, gateway dispatch, TLS session per object.
_TRANSFER_FIXED = normal(1.1, 0.25, floor=0.3)
# Post-transfer finalize/teardown bookkeeping ("others" in Fig 4,
# together with the pre-transfer session overhead).
_FINALIZE = normal(8.0, 1.5, floor=3.0)


@dataclass(frozen=True)
class TransferRecord:
    """One completed Skyplane transfer."""

    key: str
    size: int
    submit_time: float          # source PUT completion / job submission
    start_time: float           # VMs ready, bytes start flowing
    done_time: float            # object visible at the destination

    @property
    def delay(self) -> float:
        return self.done_time - self.submit_time

    @property
    def transfer_seconds(self) -> float:
        return self.done_time - self.start_time


@dataclass
class _VmPair:
    """A relay chain of gateway VMs: source, optional overlay, destination."""

    src: Optional[Vm] = None
    relay: Optional[Vm] = None
    dst: Optional[Vm] = None
    uses_relay: bool = False

    @property
    def alive(self) -> bool:
        ok = (self.src is not None and self.src.alive
              and self.dst is not None and self.dst.alive)
        if self.uses_relay:
            ok = ok and self.relay is not None and self.relay.alive
        return ok

    def terminate(self) -> None:
        for vm in (self.src, self.relay, self.dst):
            if vm is not None:
                vm.terminate()
        self.src = self.relay = self.dst = None


class SkyplaneReplicator:
    """VM-pair relay replicator between two buckets."""

    def __init__(
        self,
        cloud: Cloud,
        src_bucket: Bucket,
        dst_bucket: Bucket,
        vm_pairs: int = 1,
        keepalive_s: Optional[float] = 0.0,
        overlay_region: Optional[str] = None,
    ):
        """``keepalive_s=0`` shuts VMs down after every transfer (the
        default Skyplane workflow); ``None`` keeps them alive forever;
        a positive value shuts them down after that much idle time.

        ``overlay_region`` routes the transfer through a gateway VM in a
        third region — Skyplane's cloud-aware overlay.  It can raise the
        bottleneck bandwidth on slow direct links at the price of a
        third VM and a second egress charge (see
        :meth:`plan_overlay` for the data-driven choice)."""
        if vm_pairs < 1:
            raise ValueError("need at least one VM pair")
        self.cloud = cloud
        self.src_bucket = src_bucket
        self.dst_bucket = dst_bucket
        self.vm_pairs = vm_pairs
        self.keepalive_s = keepalive_s
        self.overlay_region = (cloud.region(overlay_region).key
                               if overlay_region else None)
        if self.overlay_region in (src_bucket.region.key,
                                   dst_bucket.region.key):
            self.overlay_region = None
        self.records: list[TransferRecord] = []
        self._pairs = [_VmPair() for _ in range(vm_pairs)]
        self._queue: deque[tuple[str, int, float]] = deque()
        self._worker_busy = False
        self._rng = cloud.rngs.stream("skyplane")
        self._idle_since: Optional[float] = None
        self._shutdown_timer = None
        self.stats = {"transfers": 0, "provisions": 0, "shutdowns": 0}
        #: Phase timings of the most recent transfer (Fig 4's breakdown):
        #: provision_s, container_s, session_s, transfer_s, finalize_s.
        self.last_breakdown: dict[str, float] = {}

    # -- overlay planning --------------------------------------------------

    @staticmethod
    def plan_overlay(cloud: Cloud, src_bucket: Bucket, dst_bucket: Bucket,
                     candidates: Optional[list[str]] = None) -> Optional[str]:
        """Pick the overlay region that maximizes the bottleneck
        bandwidth, or None when the direct path is already best —
        Skyplane's cloud-aware overlay decision, reduced to one hop.

        Uses the fabric's *mean* bandwidths (what a profiling pass would
        measure); the extra egress cost of relaying is the operator's
        explicit trade-off, as in §6's discussion.
        """
        from repro.simcloud.network import FunctionConfig
        from repro.simcloud.regions import REGIONS

        vm_cfg = FunctionConfig(memory_mb=32768, vcpus=16.0)
        fabric = cloud.fabric
        src, dst = src_bucket.region, dst_bucket.region

        def leg(a, b) -> float:
            return fabric.path_mbps(a, b, vm_cfg, upload=True)

        direct = leg(src, dst)
        best_key, best_bw = None, direct
        for key in (candidates if candidates is not None else sorted(REGIONS)):
            relay = cloud.region(key)
            if relay.key in (src.key, dst.key):
                continue
            bottleneck = min(leg(src, relay), leg(relay, dst))
            if bottleneck > best_bw * 1.05:  # require a real improvement
                best_key, best_bw = relay.key, bottleneck
        return best_key

    # -- public API ---------------------------------------------------------

    def submit(self, key: str, event_time: Optional[float] = None) -> None:
        """Queue a replication job for the object's current version."""
        obj = self.src_bucket.head(key)
        self._queue.append((key, obj.size,
                            self.cloud.now if event_time is None else event_time))
        if self._shutdown_timer is not None:
            self._shutdown_timer.cancel()
            self._shutdown_timer = None
        if not self._worker_busy:
            self._worker_busy = True
            self.cloud.sim.spawn(self._drain(), name="skyplane-worker")

    def connect_notifications(self) -> None:
        """Drive jobs from the source bucket's event notifications."""
        self.cloud.notifications.connect(
            self.src_bucket,
            lambda ev: self.submit(ev.key, ev.event_time)
            if ev.kind == "created" and ev.key in self.src_bucket else None,
        )

    def replicate_once(self, key: str) -> TransferRecord:
        """Synchronous helper: submit one job and drain the simulation."""
        self.submit(key)
        self.cloud.run()
        return self.records[-1]

    def shutdown(self) -> None:
        """Terminate all live VMs (bills their runtime)."""
        for pair in self._pairs:
            if pair.src is not None or pair.dst is not None:
                self.stats["shutdowns"] += 1
            pair.terminate()

    # -- internal workflow -----------------------------------------------------

    def _drain(self):
        while self._queue:
            key, size, submit_time = self._queue.popleft()
            yield from self._transfer(key, size, submit_time)
        self._worker_busy = False
        self._arm_idle_shutdown()

    def _arm_idle_shutdown(self) -> None:
        if self.keepalive_s is None:
            return
        if self.keepalive_s == 0:
            self.shutdown()
            return
        idle_mark = self.cloud.now
        self._idle_since = idle_mark

        def maybe_shutdown() -> None:
            if self._idle_since == idle_mark and not self._worker_busy:
                self.shutdown()

        self._shutdown_timer = self.cloud.sim.call_later(self.keepalive_s,
                                                         maybe_shutdown)

    def _ensure_pairs(self):
        """Process: provision any dead VM pairs (in parallel) and wait
        for all of them — stragglers extend the end-to-end time."""
        procs = []
        fresh = False
        for pair in self._pairs:
            if pair.alive:
                continue
            fresh = True
            self.stats["provisions"] += 1
            pair.uses_relay = self.overlay_region is not None
            procs.append((pair, "src", self.cloud.sim.spawn(
                self.cloud.vm_fleet(self.src_bucket.region.key).provision())))
            if pair.uses_relay:
                procs.append((pair, "relay", self.cloud.sim.spawn(
                    self.cloud.vm_fleet(self.overlay_region).provision())))
            procs.append((pair, "dst", self.cloud.sim.spawn(
                self.cloud.vm_fleet(self.dst_bucket.region.key).provision())))
        if procs:
            yield self.cloud.sim.all_of([p for _, _, p in procs])
            for pair, side, proc in procs:
                setattr(pair, side, proc.value)
        if fresh:
            vms = [vm for pair in self._pairs for vm in (pair.src, pair.dst)
                   if vm is not None]
            self.last_breakdown["provision_s"] = max(v.provision_s for v in vms)
            self.last_breakdown["container_s"] = max(v.container_s for v in vms)
            # Gateway session setup, key exchange, chunk planning.
            session = self.cloud.vm_fleet(
                self.src_bucket.region.key).sample_session_overhead()
            self.last_breakdown["session_s"] = session
            yield self.cloud.sim.sleep(session)
        else:
            self.last_breakdown["provision_s"] = 0.0
            self.last_breakdown["container_s"] = 0.0
            self.last_breakdown["session_s"] = 0.0
        return fresh

    def _stripe_seconds(self, pair: _VmPair, nbytes: int) -> float:
        """Pipelined relay time for one stripe through one VM chain.

        Chunks stream through every hop concurrently, so the stripe time
        is governed by the slowest hop (the overlay's whole point is
        raising that bottleneck)."""
        profile = self.cloud.fabric.profile
        intra_src = (profile.intra_mbps[self.src_bucket.region.provider]
                     * _VM_BANDWIDTH_MULT)
        intra_dst = (profile.intra_mbps[self.dst_bucket.region.provider]
                     * _VM_BANDWIDTH_MULT)
        download = nbytes * 8 / (intra_src * 1e6)
        upload = nbytes * 8 / (intra_dst * 1e6)
        if pair.uses_relay:
            hop1 = pair.src.wan_seconds(pair.relay.region, nbytes, upload=True)
            hop2 = pair.relay.wan_seconds(self.dst_bucket.region, nbytes,
                                          upload=True)
            return max(download, hop1, hop2, upload)
        wan = pair.src.wan_seconds(self.dst_bucket.region, nbytes, upload=True)
        return max(download, wan, upload)

    def _transfer(self, key: str, size: int, submit_time: float):
        yield from self._ensure_pairs()
        self._idle_since = None
        start = self.cloud.now
        blob, _version = self.src_bucket.get_object(key)
        # Stripe the object across the VM pairs; the transfer completes
        # when the slowest stripe lands.
        stripe = max(1, size // len(self._pairs))
        times = []
        for i, pair in enumerate(self._pairs):
            lo = i * stripe
            hi = size if i == len(self._pairs) - 1 else min(size, lo + stripe)
            if hi <= lo:
                continue
            times.append(self._stripe_seconds(pair, hi - lo))
        duration = max(times) + float(_TRANSFER_FIXED.sample(self._rng))
        self.last_breakdown["transfer_s"] = duration
        yield self.cloud.sim.sleep(duration)
        self.dst_bucket.put_object(key, blob, self.cloud.now, notify=False)
        self._charge(size)
        # Finalize/teardown bookkeeping before the next job.
        finalize = float(_FINALIZE.sample(self._rng))
        self.last_breakdown["finalize_s"] = finalize
        yield self.cloud.sim.sleep(finalize)
        record = TransferRecord(key, size, submit_time, start, self.cloud.now)
        self.records.append(record)
        self.stats["transfers"] += 1

    def _charge(self, size: int) -> None:
        prices = self.cloud.prices
        ledger = self.cloud.ledger
        now = self.cloud.now
        if self.overlay_region is not None:
            relay = self.cloud.region(self.overlay_region)
            egress = (prices.egress_cost(self.src_bucket.region, relay, size)
                      + prices.egress_cost(relay, self.dst_bucket.region, size))
        else:
            egress = prices.egress_cost(self.src_bucket.region,
                                        self.dst_bucket.region, size)
        if egress > 0:
            ledger.charge(now, CostCategory.EGRESS, egress, "skyplane")
        store_src = prices.store[self.src_bucket.region.provider]
        store_dst = prices.store[self.dst_bucket.region.provider]
        ledger.charge(now, CostCategory.STORAGE_REQUESTS,
                      store_src.get + store_dst.put, "skyplane")
