"""Analysis helpers: statistics, table formatting, and reports."""

from repro.analysis.stats import (
    percentile,
    size_histogram,
    summarize,
    throughput_per_minute,
    windowed_percentile,
)
from repro.analysis.tables import DelayCostCell, format_comparison_table
from repro.analysis.report import ExperimentResult, render_markdown

__all__ = [
    "percentile",
    "summarize",
    "windowed_percentile",
    "size_histogram",
    "throughput_per_minute",
    "DelayCostCell",
    "format_comparison_table",
    "ExperimentResult",
    "render_markdown",
]
