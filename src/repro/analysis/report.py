"""Experiment result records and markdown rendering.

Benchmarks emit :class:`ExperimentResult` rows; ``render_markdown``
turns a list of them into the per-experiment sections recorded in
EXPERIMENTS.md (paper value vs measured value, with notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["ExperimentResult", "render_markdown"]


@dataclass(frozen=True)
class ExperimentResult:
    """One measured quantity from one experiment."""

    experiment: str            # e.g. "Table 1", "Fig 16"
    metric: str                # e.g. "AReplica delay 1MB -> eu-west-1 (s)"
    measured: float
    paper: Optional[float] = None
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper


def render_markdown(results: Sequence[ExperimentResult]) -> str:
    """Group results by experiment and render a markdown report."""
    by_experiment: dict[str, list[ExperimentResult]] = {}
    for r in results:
        by_experiment.setdefault(r.experiment, []).append(r)
    lines: list[str] = []
    for experiment in sorted(by_experiment):
        lines.append(f"### {experiment}")
        lines.append("")
        lines.append("| metric | paper | measured | ratio | note |")
        lines.append("|---|---|---|---|---|")
        for r in by_experiment[experiment]:
            paper = f"{r.paper:g} {r.unit}" if r.paper is not None else "—"
            ratio = f"{r.ratio:.2f}x" if r.ratio is not None else "—"
            lines.append(
                f"| {r.metric} | {paper} | {r.measured:g} {r.unit} "
                f"| {ratio} | {r.note} |"
            )
        lines.append("")
    return "\n".join(lines)
