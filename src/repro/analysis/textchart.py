"""Plain-text chart rendering for benchmark outputs.

The benchmark suite regenerates the paper's *figures*, and a row of
numbers is a poor stand-in for a plot.  This module renders horizontal
bar charts, grouped bars, time-series strips, and histograms as
alignment-stable ASCII, so the ``results/*.txt`` artifacts read like
the figures they reproduce — with no plotting dependency.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "series_strip", "histogram"]

_FULL = "█"
_PARTIALS = " ▏▎▍▌▋▊▉"


def _bar(value: float, vmax: float, width: int) -> str:
    """A left-aligned bar of ``value``/``vmax`` scaled to ``width`` cells."""
    if vmax <= 0 or value <= 0:
        return ""
    cells = value / vmax * width
    full = int(cells)
    frac = cells - full
    partial = _PARTIALS[round(frac * (len(_PARTIALS) - 1))].strip()
    return _FULL * full + partial


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    vmax = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        lines.append(f"{label:>{label_w}} | "
                     f"{_bar(value, vmax, width):<{width}} "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Bars for several series per group (e.g. one bar per system)."""
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(f"series {name!r} length != number of groups")
    vmax = max((max(v) for v in series.values() if len(v)), default=1.0) or 1.0
    label_w = max([len(g) for g in groups]
                  + [len(n) + 2 for n in series], default=1)
    lines = [title] if title else []
    for i, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            lines.append(f"{('  ' + name):>{label_w}} | "
                         f"{_bar(values[i], vmax, width):<{width}} "
                         f"{values[i]:g}{unit}")
    return "\n".join(lines)


_STRIP_LEVELS = " ▁▂▃▄▅▆▇█"


def series_strip(
    values: Sequence[float],
    width: Optional[int] = None,
    vmax: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """A one-line sparkline strip of a time series.

    NaNs render as ``·``.  When ``width`` is smaller than the series,
    values are bucketed by max (peaks must stay visible).
    """
    xs = list(values)
    if not xs:
        return title or ""
    if width is not None and len(xs) > width:
        bucket = math.ceil(len(xs) / width)
        xs = [
            max((x for x in xs[i:i + bucket] if not math.isnan(x)),
                default=float("nan"))
            for i in range(0, len(xs), bucket)
        ]
    finite = [x for x in xs if not math.isnan(x)]
    top = vmax if vmax is not None else (max(finite) if finite else 1.0)
    top = top or 1.0
    cells = []
    for x in xs:
        if math.isnan(x):
            cells.append("·")
        else:
            level = min(len(_STRIP_LEVELS) - 1,
                        max(0, round(x / top * (len(_STRIP_LEVELS) - 1))))
            cells.append(_STRIP_LEVELS[level])
    strip = "".join(cells)
    prefix = f"{title} " if title else ""
    return f"{prefix}[{strip}] max={max(finite):g}" if finite else f"{prefix}[{strip}]"


def histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    title: Optional[str] = None,
    log_x: bool = False,
) -> str:
    """Counts-per-bin bar chart of a sample (optionally log-spaced bins)."""
    xs = [float(v) for v in values]
    if not xs:
        return title or ""
    lo, hi = min(xs), max(xs)
    if log_x:
        if lo <= 0:
            raise ValueError("log_x requires positive values")
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    if hi_t == lo_t:
        hi_t = lo_t + 1.0
    counts = [0] * bins
    edges = [lo_t + (hi_t - lo_t) * i / bins for i in range(bins + 1)]
    for x in xs:
        t = math.log10(x) if log_x else x
        idx = min(bins - 1, int((t - lo_t) / (hi_t - lo_t) * bins))
        counts[idx] += 1
    labels = []
    for i in range(bins):
        edge = 10 ** edges[i] if log_x else edges[i]
        labels.append(f"{_si(edge)}")
    return bar_chart(labels, counts, width=width, title=title)


def _si(value: float) -> str:
    """Short SI-ish rendering for bin edges (1.2K, 3.4M, …)."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.1f}"
