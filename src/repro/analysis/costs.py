"""Analytic replication cost estimators.

The simulator *meters* cost as a side effect of execution; this module
*predicts* it analytically, which is what a deployment-planning tool
needs ("what would replicating this workload cost per month on each
system?").  The estimators mirror the billing rules in
:mod:`repro.simcloud.pricing` and the systems' workflows, and the test
suite checks them against the metered ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.simcloud.pricing import GB, PriceBook
from repro.simcloud.regions import get_region

__all__ = ["CostEstimate", "ReplicationCostModel"]


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of replicating one object (USD)."""

    egress: float = 0.0
    compute: float = 0.0
    requests: float = 0.0
    kv: float = 0.0
    service_fee: float = 0.0
    storage: float = 0.0

    @property
    def total(self) -> float:
        return (self.egress + self.compute + self.requests + self.kv
                + self.service_fee + self.storage)

    def plus(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            self.egress + other.egress, self.compute + other.compute,
            self.requests + other.requests, self.kv + other.kv,
            self.service_fee + other.service_fee,
            self.storage + other.storage,
        )

    def scaled(self, k: float) -> "CostEstimate":
        return CostEstimate(self.egress * k, self.compute * k,
                            self.requests * k, self.kv * k,
                            self.service_fee * k, self.storage * k)


class ReplicationCostModel:
    """Per-object and per-workload cost prediction for each system."""

    def __init__(self, prices: Optional[PriceBook] = None,
                 part_size: int = 8 * 1024 * 1024):
        self.prices = prices or PriceBook()
        self.part_size = part_size

    # -- AReplica ---------------------------------------------------------

    def areplica(self, src_key: str, dst_key: str, size: int, n: int,
                 loc_key: str, transfer_seconds: float,
                 memory_mb: int = 1024, vcpus: float = 1.0) -> CostEstimate:
        """Cost of one AReplica task with ``n`` functions at ``loc_key``
        whose aggregate wall time is ``transfer_seconds`` per function."""
        src, dst = get_region(src_key), get_region(dst_key)
        loc = get_region(loc_key)
        prices = self.prices
        egress = prices.egress_cost(src, loc, size) + \
            prices.egress_cost(loc, dst, size)
        compute = n * prices.faas_compute_cost(loc.provider, memory_mb, vcpus,
                                               transfer_seconds)
        parts = max(1, math.ceil(size / self.part_size))
        store_src = prices.store[src.provider]
        store_dst = prices.store[dst.provider]
        if parts == 1:
            requests = store_src.get + store_dst.put
            kv_ops = 5  # lock, done marker, changelog lookup, unlock
        else:
            # Per-part GET/PUT plus the multipart completion PUT.
            requests = parts * (store_src.get + store_dst.put) + store_dst.put
            kv_ops = 2 * parts + 8  # Algorithm 1's two per part + control
        kv = kv_ops * prices.kv[loc.provider].write
        faas_reqs = (n + 1) * prices.faas[loc.provider].per_request
        return CostEstimate(egress=egress, compute=compute,
                            requests=requests + faas_reqs, kv=kv)

    # -- baselines -----------------------------------------------------------

    def skyplane(self, src_key: str, dst_key: str, size: int,
                 vm_pairs: int = 1, cold: bool = True,
                 wan_mbps: float = 1300.0) -> CostEstimate:
        """Cold Skyplane transfer: VM lifetime dominates."""
        src, dst = get_region(src_key), get_region(dst_key)
        prices = self.prices
        transfer_s = size * 8 / (wan_mbps * 1e6 * vm_pairs)
        lifetime = transfer_s + (20.0 if cold else 2.0)  # session + finalize
        compute = vm_pairs * (prices.vm_cost(src.provider, lifetime)
                              + prices.vm_cost(dst.provider, lifetime))
        egress = prices.egress_cost(src, dst, size)
        requests = (prices.store[src.provider].get
                    + prices.store[dst.provider].put)
        return CostEstimate(egress=egress, compute=compute, requests=requests)

    def s3rtc(self, src_key: str, dst_key: str, size: int) -> CostEstimate:
        src, dst = get_region(src_key), get_region(dst_key)
        if src.provider != "aws" or dst.provider != "aws":
            raise ValueError("S3 RTC is AWS-to-AWS only")
        prices = self.prices
        store = prices.store["aws"]
        return CostEstimate(
            egress=prices.egress_cost(src, dst, size),
            requests=store.get + store.put,
            service_fee=store.rtc_fee_per_gb * size / GB,
            storage=size / GB * 2 * store.gb_month / 30.0,
        )

    def azrep(self, src_key: str, dst_key: str, size: int) -> CostEstimate:
        src, dst = get_region(src_key), get_region(dst_key)
        if src.provider != "azure" or dst.provider != "azure":
            raise ValueError("Azure object replication is Azure-to-Azure only")
        prices = self.prices
        store = prices.store["azure"]
        return CostEstimate(
            egress=prices.egress_cost(src, dst, size),
            requests=store.get + store.put,
            storage=size / GB * 2 * store.gb_month / 30.0,
        )

    # -- workload projection -----------------------------------------------------

    def workload_monthly(self, src_key: str, dst_key: str,
                         sizes: Iterable[int], system: str = "areplica",
                         days_observed: float = 1.0, **kwargs) -> CostEstimate:
        """Extrapolate an observed batch of object sizes to a 30-day
        month on the chosen system."""
        total = CostEstimate()
        for size in sizes:
            if system == "areplica":
                n = max(1, min(64, math.ceil(size / (8 * self.part_size))))
                transfer = max(0.5, size * 8 / (300e6 * n))
                est = self.areplica(src_key, dst_key, size, n, src_key,
                                    transfer, **kwargs)
            elif system == "skyplane":
                est = self.skyplane(src_key, dst_key, size, **kwargs)
            elif system == "s3rtc":
                est = self.s3rtc(src_key, dst_key, size)
            elif system == "azrep":
                est = self.azrep(src_key, dst_key, size)
            else:
                raise ValueError(f"unknown system {system!r}")
            total = total.plus(est)
        return total.scaled(30.0 / days_observed)
