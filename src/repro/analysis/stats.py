"""Statistics helpers used across experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "percentile",
    "percentile_or",
    "latest_window_percentile",
    "Summary",
    "summarize",
    "windowed_percentile",
    "size_histogram",
    "throughput_per_minute",
    "SIZE_BUCKET_LABELS",
]


def percentile(values: Sequence[float], p: float) -> float:
    """The p-quantile (p in [0, 1]) of ``values``; NaN when empty.

    The NaN return is a documented sentinel for *rendering* paths
    (charts and tables print it as a gap).  Decision paths — anything
    that compares the result — must use :func:`percentile_or` instead:
    every comparison against NaN is False, so a leaked NaN silently
    takes whichever branch the author happened to write as the
    ``else`` (the hedge-deadline bug class).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.quantile(arr, p))


def percentile_or(values: Sequence[float], p: float,
                  default: float | None = None) -> float | None:
    """Like :func:`percentile` but with an explicit empty-sample
    sentinel instead of NaN.

    Returns ``default`` (None unless overridden) when ``values`` is
    empty or the quantile is non-finite, so callers can test
    ``is None`` — a branch NaN cannot silently fall through.
    """
    result = percentile(values, p)
    if not math.isfinite(result):
        return default
    return result


def latest_window_percentile(
    times: Sequence[float],
    values: Sequence[float],
    p: float,
    window_s: float,
    now: float,
) -> float | None:
    """The p-quantile of the samples in ``[now - window_s, now]``.

    The decision-path companion of :func:`windowed_percentile`: one
    trailing window, evaluated at ``now``, with an explicit ``None``
    sentinel when the window holds no samples (instead of the NaN the
    plotting variant stores per empty window).  The hedge-deadline
    path treats None as "never hedge".
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    starts, out = windowed_percentile(times, values, p, window_s=window_s,
                                      start=now - window_s, end=now)
    if out.size == 0 or not math.isfinite(out[-1]):
        return None
    return float(out[-1])


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        p50=float(np.quantile(arr, 0.5)),
        p90=float(np.quantile(arr, 0.9)),
        p99=float(np.quantile(arr, 0.99)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def windowed_percentile(
    times: Sequence[float],
    values: Sequence[float],
    p: float,
    window_s: float = 60.0,
    start: float | None = None,
    end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-window p-quantile series (Fig 23's per-minute p99.99 curve).

    Returns (window start times, quantile per window); windows with no
    samples get NaN.
    """
    t = np.asarray(list(times), dtype=float)
    v = np.asarray(list(values), dtype=float)
    if t.size == 0:
        return np.array([]), np.array([])
    lo = t.min() if start is None else start
    hi = t.max() if end is None else end
    edges = np.arange(lo, hi + window_s, window_s)
    starts = edges[:-1]
    out = np.full(starts.size, np.nan)
    idx = np.digitize(t, edges) - 1
    for i in range(starts.size):
        bucket = v[idx == i]
        if bucket.size:
            out[i] = np.quantile(bucket, p)
    return starts, out


#: Decade buckets matching Fig 2's x axis.
SIZE_BUCKET_LABELS = [
    "1B", "10B", "100B", "1KB", "10KB", "100KB",
    "1MB", "10MB", "100MB", "1GB", "10GB", "100GB", "1TB",
]


def size_histogram(sizes: Iterable[int]) -> dict[str, dict[str, float]]:
    """Fig 2: per-decade share of request *count* and of *capacity*.

    Bucket ``10^k`` holds sizes in ``[10^k, 10^(k+1))``; the 1B bucket
    also absorbs anything smaller.
    """
    arr = np.asarray(list(sizes), dtype=float)
    if arr.size == 0:
        return {label: {"count": 0.0, "capacity": 0.0} for label in SIZE_BUCKET_LABELS}
    decades = np.clip(np.floor(np.log10(np.maximum(arr, 1.0))).astype(int),
                      0, len(SIZE_BUCKET_LABELS) - 1)
    total_count = arr.size
    total_bytes = arr.sum()
    out = {}
    for i, label in enumerate(SIZE_BUCKET_LABELS):
        mask = decades == i
        out[label] = {
            "count": float(mask.sum()) / total_count,
            "capacity": float(arr[mask].sum()) / total_bytes,
        }
    return out


def throughput_per_minute(times: Sequence[float],
                          sizes: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """Fig 3: bytes written per minute over the trace."""
    t = np.asarray(list(times), dtype=float)
    s = np.asarray(list(sizes), dtype=float)
    if t.size == 0:
        return np.array([]), np.array([])
    minutes = np.floor(t / 60.0).astype(int)
    n = minutes.max() + 1
    out = np.zeros(n)
    np.add.at(out, minutes, s)
    return np.arange(n) * 60.0, out


def fraction_at_or_below(sizes: Iterable[int], threshold: int) -> float:
    """Share of samples ≤ threshold (the paper's \"~80 % ≤ 1 MB\")."""
    arr = np.asarray(list(sizes))
    if arr.size == 0:
        return math.nan
    return float((arr <= threshold).mean())
