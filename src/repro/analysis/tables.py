"""Formatting for the paper's comparison tables (Tables 1-3).

Each cell of those tables reports replication delay (seconds) and cost
(10^-4 $) per (system, destination region, object size), plus the delta
of AReplica against the best-performing baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["DelayCostCell", "delta_percent", "format_comparison_table"]


@dataclass(frozen=True)
class DelayCostCell:
    """One system's measurement for one (destination, size) cell."""

    system: str
    delay_s: float
    cost_usd: float

    @property
    def cost_1e4(self) -> float:
        """Cost in units of 10^-4 dollars, as the paper reports."""
        return self.cost_usd * 1e4


def delta_percent(ours: float, best_baseline: float) -> float:
    """The paper's Δ row: (ours - baseline) / baseline, in percent."""
    if best_baseline == 0:
        return float("inf") if ours > 0 else 0.0
    return (ours - best_baseline) / best_baseline * 100.0


def format_comparison_table(
    title: str,
    destinations: Sequence[str],
    sizes: Sequence[str],
    cells: dict[tuple[str, str, str], DelayCostCell],
    systems: Sequence[str],
    ours: str = "AReplica",
) -> str:
    """Render a Table 1/2/3-style text table.

    ``cells`` maps (size label, destination, system) to a cell; missing
    combinations render as N/A (e.g. S3 RTC outside AWS).
    """
    lines = [title, "=" * len(title)]
    col = max(14, max(len(d) for d in destinations) + 2)
    header = f"{'size':>8} {'metric':>14} {'system':>10} |" + "".join(
        f"{d:>{col}}" for d in destinations
    )
    lines.append(header)
    lines.append("-" * len(header))
    for size in sizes:
        for metric in ("delay(s)", "cost(1e-4$)"):
            for system in systems:
                row = f"{size:>8} {metric:>14} {system:>10} |"
                for dst in destinations:
                    cell = cells.get((size, dst, system))
                    if cell is None:
                        row += f"{'N/A':>{col}}"
                    else:
                        value = cell.delay_s if metric == "delay(s)" else cell.cost_1e4
                        row += f"{value:>{col}.1f}"
                lines.append(row)
            # Δ of ours vs the best baseline present in this cell.
            row = f"{size:>8} {metric:>14} {'Δ':>10} |"
            for dst in destinations:
                our_cell = cells.get((size, dst, ours))
                baselines = [cells[(size, dst, s)] for s in systems
                             if s != ours and (size, dst, s) in cells]
                if our_cell is None or not baselines:
                    row += f"{'N/A':>{col}}"
                    continue
                if metric == "delay(s)":
                    best = min(b.delay_s for b in baselines)
                    d = delta_percent(our_cell.delay_s, best)
                else:
                    best = min(b.cost_usd for b in baselines)
                    d = delta_percent(our_cell.cost_usd, best)
                row += f"{d:>{col - 1}.1f}%"
            lines.append(row)
        lines.append("-" * len(header))
    return "\n".join(lines)
