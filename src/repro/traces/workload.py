"""Parametric workloads for the ablation benchmarks.

These are the simple, controlled workloads §8.2 uses: fixed-size
objects replicated once (Tables 1-3, Fig 16-20), a hot object updated
at a fixed frequency (Fig 22), and derived-object streams for the
changelog experiment (Fig 21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.traces.ibm_cos import TraceRequest

__all__ = ["UpdateWorkload", "uniform_object_workload"]


@dataclass(frozen=True)
class UpdateWorkload:
    """A single hot object updated at a fixed frequency (Fig 22)."""

    key: str
    size: int
    updates_per_minute: float
    duration_s: float

    def requests(self) -> Iterator[TraceRequest]:
        if self.updates_per_minute <= 0:
            raise ValueError("updates_per_minute must be positive")
        interval = 60.0 / self.updates_per_minute
        t = 0.0
        while t < self.duration_s:
            yield TraceRequest(t, "PUT", self.key, self.size)
            t += interval

    @property
    def total_updates(self) -> int:
        return len(list(self.requests()))


def uniform_object_workload(count: int, size: int,
                            spacing_s: float = 0.0,
                            prefix: str = "obj") -> list[TraceRequest]:
    """``count`` distinct objects of identical ``size`` (Tables 1-3)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        TraceRequest(i * spacing_s, "PUT", f"{prefix}{i}", size)
        for i in range(count)
    ]
