"""Loader for the real IBM COS traces (SNIA IOTTA archive).

The paper's dataset — "IBM Object Store traces", ~1.6 billion requests
over one week — is distributed by SNIA under a license that does not
permit redistribution, so this repository ships a calibrated synthetic
generator instead (:mod:`repro.traces.ibm_cos`).  Users who have
obtained the real traces can load them here and replay them through
exactly the same :class:`~repro.traces.replay.TraceReplayer`.

The IBM COS trace format is one request per line::

    <timestamp_ms> <REQUEST> <object_id> [<size> [<range_start> <range_end>]]

with ``REQUEST`` one of ``REST.PUT.OBJECT``, ``REST.GET.OBJECT``,
``REST.HEAD.OBJECT``, ``REST.DELETE.OBJECT``, etc.  Replication only
reacts to PUTs and DELETEs, so the loader keeps those (the paper
likewise removes "non-replicating GET and HEAD operations" in §8.3).
"""

from __future__ import annotations

import gzip
import pathlib
from typing import Iterable, Iterator, Optional, TextIO, Union

from repro.traces.ibm_cos import TraceRequest

__all__ = ["load_snia_trace", "parse_snia_lines", "SniaFormatError"]

_PUT_OPS = {"REST.PUT.OBJECT", "REST.POST.OBJECT", "REST.COPY.OBJECT"}
_DELETE_OPS = {"REST.DELETE.OBJECT"}


class SniaFormatError(ValueError):
    """A line did not match the IBM COS trace format."""


def parse_snia_lines(lines: Iterable[str],
                     keep_unsized_puts: bool = False,
                     strict: bool = False) -> Iterator[TraceRequest]:
    """Parse IBM COS trace lines into replication-relevant requests.

    Timestamps are re-based so the first kept request is at t=0 (the
    replayer schedules relative to trace start).  PUTs without a size
    field are dropped unless ``keep_unsized_puts`` (then size 0).
    Malformed lines are skipped, or raised when ``strict``.
    """
    origin: Optional[float] = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 3:
            if strict:
                raise SniaFormatError(f"line {lineno}: too few fields: {line!r}")
            continue
        try:
            timestamp_ms = float(fields[0])
        except ValueError:
            if strict:
                raise SniaFormatError(f"line {lineno}: bad timestamp: {line!r}")
            continue
        op, key = fields[1], fields[2]
        if op in _DELETE_OPS:
            kind, size = "DELETE", 0
        elif op in _PUT_OPS:
            kind = "PUT"
            if len(fields) >= 4:
                try:
                    size = int(fields[3])
                except ValueError:
                    if strict:
                        raise SniaFormatError(
                            f"line {lineno}: bad size: {line!r}")
                    continue
            elif keep_unsized_puts:
                size = 0
            else:
                continue
        else:
            continue  # GET/HEAD etc. — non-replicating
        if origin is None:
            origin = timestamp_ms
        yield TraceRequest((timestamp_ms - origin) / 1000.0, kind, key, size)


def load_snia_trace(path: Union[str, pathlib.Path, TextIO],
                    limit: Optional[int] = None,
                    **kwargs) -> list[TraceRequest]:
    """Load a SNIA IBM COS trace file (plain text or ``.gz``).

    ``limit`` caps the number of kept requests (the full weekly files
    are hundreds of millions of lines).
    """
    if hasattr(path, "read"):
        return _take(parse_snia_lines(path, **kwargs), limit)
    path = pathlib.Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt") as handle:  # type: ignore[operator]
        return _take(parse_snia_lines(handle, **kwargs), limit)


def _take(it: Iterator[TraceRequest], limit: Optional[int]) -> list[TraceRequest]:
    if limit is None:
        return list(it)
    out = []
    for req in it:
        out.append(req)
        if len(out) >= limit:
            break
    return out
