"""Workload traces: the synthetic IBM-COS-like generator and replayer.

The paper evaluates on the IBM Cloud Object Storage traces (SNIA,
~1.6 billion requests over one week).  Those traces are licensed and
not redistributable, so :mod:`repro.traces.ibm_cos` generates synthetic
traces calibrated to the statistics the paper publishes: ~80 % of PUT
requests at or below 1 MB with >99.99 % below 1 GB (Fig 2), sharply
fluctuating per-minute write throughput (Fig 3), and a busy one-hour
segment with ~0.99 M PUT/DELETE requests used for the end-to-end replay
(Fig 23).
"""

from repro.traces.ibm_cos import IbmCosTraceGenerator, TraceRequest
from repro.traces.replay import TraceReplayer
from repro.traces.snia import load_snia_trace, parse_snia_lines
from repro.traces.workload import UpdateWorkload, uniform_object_workload

__all__ = [
    "IbmCosTraceGenerator",
    "TraceRequest",
    "TraceReplayer",
    "UpdateWorkload",
    "uniform_object_workload",
    "load_snia_trace",
    "parse_snia_lines",
]
