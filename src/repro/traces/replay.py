"""Trace replay against a source bucket.

The replayer writes a trace's PUT/DELETE operations into a bucket at
their trace timestamps (optionally time-scaled); whatever replication
system is wired to that bucket — AReplica, Skyplane, S3 RTC, AZ Rep —
reacts through its normal notification path.  This mirrors the paper's
§8.3 methodology of replaying the IBM COS trace with parallel client
drivers against the source bucket.

Traces arrive either as :class:`TraceRequest` rows or, faster, as the
generator's column-form :class:`TraceBatch` minutes (``replay_batches``
/ ``replay_all_batches``) — the batch path reads the raw columns and
never touches per-request attribute access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.simcloud.cloud import Cloud
from repro.simcloud.sim import SleepRequest
from repro.simcloud.objectstore import Blob, Bucket
from repro.traces.ibm_cos import OP_PUT, TraceBatch, TraceRequest

__all__ = ["ReplayStats", "TraceReplayer"]


@dataclass
class ReplayStats:
    """Counters from one replay run."""

    puts: int = 0
    deletes: int = 0
    skipped_deletes: int = 0
    bytes_written: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    @property
    def requests(self) -> int:
        return self.puts + self.deletes


class TraceReplayer:
    """Feeds trace requests into a bucket on the simulated clock."""

    def __init__(self, cloud: Cloud, bucket: Bucket,
                 time_scale: float = 1.0):
        """``time_scale`` < 1 compresses the trace (replay "at a high
        rate", as the paper does with 32×16 parallel clients)."""
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.cloud = cloud
        self.bucket = bucket
        self.time_scale = time_scale
        self.stats = ReplayStats()

    def replay(self, requests: Iterable[TraceRequest]):
        """Process: apply every request at its (scaled) timestamp."""
        origin = self.cloud.now
        for req in requests:
            if req.op not in ("PUT", "DELETE"):
                raise ValueError(f"unknown trace op {req.op!r}")
            target = origin + req.time * self.time_scale
            if target > self.cloud.now:
                yield SleepRequest(target - self.cloud.now)
            self._apply(req.op == "PUT", req.key, req.size)
        self.stats.last_time = self.cloud.now

    def replay_batches(self, batches: Iterable[TraceBatch]):
        """Process: column-form replay (no per-request objects)."""
        origin = self.cloud.now
        sim = self.cloud.sim
        scale = self.time_scale
        stats = self.stats
        for batch in batches:
            times = batch.times.tolist()
            ops = batch.ops.tolist()
            sizes = batch.sizes.tolist()
            keys = batch.keys
            for i in range(len(keys)):
                target = origin + times[i] * scale
                if target > sim.now:
                    yield SleepRequest(target - sim.now)
                self._apply(ops[i] == OP_PUT, keys[i], sizes[i])
        stats.last_time = self.cloud.now

    def replay_all(self, requests: Iterable[TraceRequest]) -> ReplayStats:
        """Spawn the replay process and drain the simulation."""
        self.cloud.sim.run_process(self.replay(requests), name="trace-replay")
        self.cloud.run()
        return self.stats

    def replay_all_batches(self, batches: Iterable[TraceBatch]) -> ReplayStats:
        """Spawn the batch replay process and drain the simulation."""
        self.cloud.sim.run_process(self.replay_batches(batches),
                                   name="trace-replay")
        self.cloud.run()
        return self.stats

    def _apply(self, is_put: bool, key: str, size: int) -> None:
        if self.stats.first_time is None:
            self.stats.first_time = self.cloud.now
        if is_put:
            self.bucket.put_object(key, Blob.fresh(size), self.cloud.now)
            self.stats.puts += 1
            self.stats.bytes_written += size
        else:
            if key in self.bucket:
                self.bucket.delete_object(key, self.cloud.now)
                self.stats.deletes += 1
            else:
                self.stats.skipped_deletes += 1
