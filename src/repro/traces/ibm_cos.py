"""Synthetic IBM COS trace generator.

Calibrated to the published characteristics of the IBM Cloud Object
Storage traces the paper analyzes (§2):

* **Size distribution (Fig 2)** — a five-component lognormal mixture:
  small objects dominate request *count* (~80 % of PUTs ≤ 1 MB,
  >99.99 % < 1 GB) while rare large objects dominate *capacity*.
* **Arrival process (Fig 3)** — a modulated Poisson process: a diurnal
  baseline multiplied by an AR(1) lognormal per-minute factor plus
  occasional short burst spikes, so per-minute throughput "can change
  sharply from minute to minute".
* **Operations** — PUTs dominate; a small fraction of DELETEs target
  existing keys.  Keys are drawn Zipf-style per tenant so hot objects
  receive repeated updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["TraceRequest", "SizeModel", "IbmCosTraceGenerator"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class TraceRequest:
    """One trace record: an operation against the source bucket."""

    time: float          # seconds from trace start
    op: str              # "PUT" | "DELETE"
    key: str
    size: int            # bytes (0 for DELETE)


class SizeModel:
    """The PUT-size lognormal mixture behind Fig 2."""

    #: (weight, median bytes, sigma of ln-size)
    COMPONENTS = (
        (0.34, 2 * KB, 1.6),
        (0.45, 96 * KB, 1.3),
        (0.1962, 6 * MB, 1.0),
        (0.01375, 120 * MB, 0.75),
        (0.00005, 1280 * MB, 0.6),
    )

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._weights = np.array([w for w, _, _ in self.COMPONENTS])
        self._weights = self._weights / self._weights.sum()
        self._mus = np.array([math.log(m) for _, m, _ in self.COMPONENTS])
        self._sigmas = np.array([s for _, _, s in self.COMPONENTS])

    def sample(self, count: int = 1) -> np.ndarray:
        comp = self._rng.choice(len(self._weights), size=count, p=self._weights)
        sizes = self._rng.lognormal(self._mus[comp], self._sigmas[comp])
        return np.maximum(1, sizes).astype(np.int64)


class IbmCosTraceGenerator:
    """Seeded synthetic trace factory."""

    def __init__(
        self,
        seed: int = 0,
        mean_rps: float = 20.0,
        tenants: int = 8,
        keys_per_tenant: int = 4000,
        delete_fraction: float = 0.04,
        update_fraction: float = 0.35,
        burst_rate_per_hour: float = 6.0,
        burst_multiplier: float = 8.0,
        minute_sigma: float = 0.55,
        minute_rho: float = 0.7,
        diurnal_amplitude: float = 0.45,
    ):
        """``update_fraction`` of PUTs overwrite an existing hot key
        (Zipf-selected); the rest create fresh keys."""
        self.seed = seed
        self.mean_rps = mean_rps
        self.tenants = tenants
        self.keys_per_tenant = keys_per_tenant
        self.delete_fraction = delete_fraction
        self.update_fraction = update_fraction
        self.burst_rate_per_hour = burst_rate_per_hour
        self.burst_multiplier = burst_multiplier
        self.minute_sigma = minute_sigma
        self.minute_rho = minute_rho
        self.diurnal_amplitude = diurnal_amplitude
        self._rng = np.random.default_rng(seed)
        self.sizes = SizeModel(np.random.default_rng(seed + 1))

    # -- arrival-rate machinery ------------------------------------------------

    def minute_rates(self, duration_s: float,
                     start_s: float = 0.0) -> np.ndarray:
        """Mean request rate (per second) for each minute of the trace."""
        minutes = int(math.ceil(duration_s / 60.0))
        rates = np.empty(minutes)
        drift = 0.0
        innov_scale = self.minute_sigma * math.sqrt(1 - self.minute_rho**2)
        for i in range(minutes):
            t = start_s + i * 60.0
            diurnal = 1.0 + self.diurnal_amplitude * math.sin(
                2 * math.pi * t / 86400.0
            )
            drift = self.minute_rho * drift + self._rng.normal(0.0, innov_scale)
            factor = math.exp(drift - self.minute_sigma**2 / 2)
            rate = self.mean_rps * diurnal * factor
            if self._rng.random() < self.burst_rate_per_hour / 60.0:
                rate *= 1.0 + self._rng.exponential(self.burst_multiplier - 1.0)
            rates[i] = rate
        return rates

    # -- trace generation ----------------------------------------------------------

    def generate(self, duration_s: float,
                 start_s: float = 0.0) -> list[TraceRequest]:
        """Materialize a trace segment of ``duration_s`` seconds."""
        return list(self.iter_requests(duration_s, start_s))

    def iter_requests(self, duration_s: float,
                      start_s: float = 0.0) -> Iterator[TraceRequest]:
        rates = self.minute_rates(duration_s, start_s)
        live_keys: list[str] = []
        key_seq = 0
        zipf_cache: dict[int, np.ndarray] = {}
        for minute, rate in enumerate(rates):
            window = min(60.0, duration_s - minute * 60.0)
            count = self._rng.poisson(rate * window)
            if count == 0:
                continue
            times = np.sort(self._rng.uniform(0.0, window, count)) + minute * 60.0
            sizes = self.sizes.sample(count)
            ops = self._rng.random(count)
            for t, size, op_draw in zip(times, sizes, ops):
                if op_draw < self.delete_fraction and live_keys:
                    idx = self._rng.integers(0, len(live_keys))
                    key = live_keys.pop(int(idx))
                    yield TraceRequest(float(t), "DELETE", key, 0)
                    continue
                reuse = (self._rng.random() < self.update_fraction
                         and len(live_keys) >= 16)
                if reuse:
                    # Zipf-ish: overwhelmingly prefer recent/hot keys.
                    rank = int(self._rng.zipf(1.4))
                    key = live_keys[-min(rank, len(live_keys))]
                else:
                    tenant = int(self._rng.integers(0, self.tenants))
                    key = f"t{tenant}/obj{key_seq}"
                    key_seq += 1
                    live_keys.append(key)
                    if len(live_keys) > self.tenants * self.keys_per_tenant:
                        live_keys.pop(0)
                yield TraceRequest(float(t), "PUT", key, int(size))
        del zipf_cache

    def busy_hour(self, total_requests: int = 50_000,
                  seed_offset: int = 7) -> list[TraceRequest]:
        """A busy 60-minute segment with approximately the requested
        number of PUT/DELETE requests (the paper replays ~0.99 M; scale
        ``total_requests`` to your simulation budget)."""
        gen = IbmCosTraceGenerator(
            seed=self.seed + seed_offset,
            mean_rps=total_requests / 3600.0,
            tenants=self.tenants,
            keys_per_tenant=self.keys_per_tenant,
            delete_fraction=self.delete_fraction,
            update_fraction=self.update_fraction,
            burst_rate_per_hour=self.burst_rate_per_hour,
            burst_multiplier=self.burst_multiplier,
            minute_sigma=self.minute_sigma,
            minute_rho=self.minute_rho,
        )
        return gen.generate(3600.0)
