"""Synthetic IBM COS trace generator.

Calibrated to the published characteristics of the IBM Cloud Object
Storage traces the paper analyzes (§2):

* **Size distribution (Fig 2)** — a five-component lognormal mixture:
  small objects dominate request *count* (~80 % of PUTs ≤ 1 MB,
  >99.99 % < 1 GB) while rare large objects dominate *capacity*.
* **Arrival process (Fig 3)** — a modulated Poisson process: a diurnal
  baseline multiplied by an AR(1) lognormal per-minute factor plus
  occasional short burst spikes, so per-minute throughput "can change
  sharply from minute to minute".
* **Operations** — PUTs dominate; a small fraction of DELETEs target
  existing keys.  Keys are drawn Zipf-style per tenant so hot objects
  receive repeated updates.

Generation is batched per minute: every random quantity a minute needs
(arrival times, sizes, op/reuse coin flips, Zipf ranks, tenant picks,
delete positions) is drawn as one NumPy vector, and requests are
emitted as struct-of-arrays :class:`TraceBatch` columns.  The live-key
set uses a head pointer (O(1) oldest-key eviction) and swap-with-head
removal (O(1) random deletes).  ``iter_requests``/``generate`` remain
as per-request views over the same batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["TraceRequest", "TraceBatch", "SizeModel", "IbmCosTraceGenerator"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

OP_PUT = 0
OP_DELETE = 1

_OP_NAMES = ("PUT", "DELETE")


@dataclass(frozen=True)
class TraceRequest:
    """One trace record: an operation against the source bucket."""

    time: float          # seconds from trace start
    op: str              # "PUT" | "DELETE"
    key: str
    size: int            # bytes (0 for DELETE)


@dataclass(frozen=True)
class TraceBatch:
    """One minute of trace requests in column form.

    ``ops`` holds :data:`OP_PUT`/:data:`OP_DELETE` codes; ``sizes`` is
    0 for deletes.  Replayers iterate the columns directly instead of
    materializing a :class:`TraceRequest` per row.
    """

    times: np.ndarray    # float64, ascending within the batch
    ops: np.ndarray      # uint8 op codes
    keys: list[str]
    sizes: np.ndarray    # int64 bytes

    def __len__(self) -> int:
        return len(self.keys)

    def requests(self) -> Iterator[TraceRequest]:
        """Row view (compat with per-request consumers)."""
        for t, op, key, size in zip(self.times.tolist(), self.ops.tolist(),
                                    self.keys, self.sizes.tolist()):
            yield TraceRequest(t, _OP_NAMES[op], key, size)


class SizeModel:
    """The PUT-size lognormal mixture behind Fig 2."""

    #: (weight, median bytes, sigma of ln-size)
    COMPONENTS = (
        (0.34, 2 * KB, 1.6),
        (0.45, 96 * KB, 1.3),
        (0.1962, 6 * MB, 1.0),
        (0.01375, 120 * MB, 0.75),
        (0.00005, 1280 * MB, 0.6),
    )

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._weights = np.array([w for w, _, _ in self.COMPONENTS])
        self._weights = self._weights / self._weights.sum()
        self._mus = np.array([math.log(m) for _, m, _ in self.COMPONENTS])
        self._sigmas = np.array([s for _, _, s in self.COMPONENTS])

    def sample(self, count: int = 1) -> np.ndarray:
        comp = self._rng.choice(len(self._weights), size=count, p=self._weights)
        sizes = self._rng.lognormal(self._mus[comp], self._sigmas[comp])
        return np.maximum(1, sizes).astype(np.int64)


class _LiveKeys:
    """Append-ordered key set with O(1) evict-oldest and random removal.

    Keys live in ``self._keys[self._head:]`` in (approximate) insertion
    order.  Evicting the oldest advances the head pointer; removing a
    random key swaps the head key into its slot first, so only the
    oldest key's position is perturbed — Zipf reuse reads from the
    *recent* end, which stays exact.
    """

    __slots__ = ("_keys", "_head")

    def __init__(self) -> None:
        self._keys: list[str] = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._keys) - self._head

    def append(self, key: str) -> None:
        self._keys.append(key)

    def evict_oldest(self) -> None:
        self._head += 1
        if self._head > 4096 and self._head * 2 > len(self._keys):
            del self._keys[:self._head]
            self._head = 0

    def from_recent(self, rank: int) -> str:
        """The ``rank``-th most recent key (clamped to the oldest)."""
        n = len(self._keys) - self._head
        return self._keys[-rank if rank < n else self._head]

    def remove_at(self, frac: float) -> str:
        """Remove and return the key at relative position ``frac`` ∈ [0, 1)."""
        keys, head = self._keys, self._head
        idx = head + int(frac * (len(keys) - head))
        key = keys[idx]
        keys[idx] = keys[head]
        self._head = head + 1
        if head > 4096 and head * 2 > len(keys):
            del keys[: self._head]
            self._head = 0
        return key


class IbmCosTraceGenerator:
    """Seeded synthetic trace factory."""

    def __init__(
        self,
        seed: int = 0,
        mean_rps: float = 20.0,
        tenants: int = 8,
        keys_per_tenant: int = 4000,
        delete_fraction: float = 0.04,
        update_fraction: float = 0.35,
        burst_rate_per_hour: float = 6.0,
        burst_multiplier: float = 8.0,
        minute_sigma: float = 0.55,
        minute_rho: float = 0.7,
        diurnal_amplitude: float = 0.45,
    ):
        """``update_fraction`` of PUTs overwrite an existing hot key
        (Zipf-selected); the rest create fresh keys."""
        self.seed = seed
        self.mean_rps = mean_rps
        self.tenants = tenants
        self.keys_per_tenant = keys_per_tenant
        self.delete_fraction = delete_fraction
        self.update_fraction = update_fraction
        self.burst_rate_per_hour = burst_rate_per_hour
        self.burst_multiplier = burst_multiplier
        self.minute_sigma = minute_sigma
        self.minute_rho = minute_rho
        self.diurnal_amplitude = diurnal_amplitude
        self._rng = np.random.default_rng(seed)
        self.sizes = SizeModel(np.random.default_rng(seed + 1))

    # -- arrival-rate machinery ------------------------------------------------

    def minute_rates(self, duration_s: float,
                     start_s: float = 0.0) -> np.ndarray:
        """Mean request rate (per second) for each minute of the trace."""
        minutes = int(math.ceil(duration_s / 60.0))
        rates = np.empty(minutes)
        drift = 0.0
        innov_scale = self.minute_sigma * math.sqrt(1 - self.minute_rho**2)
        for i in range(minutes):
            t = start_s + i * 60.0
            diurnal = 1.0 + self.diurnal_amplitude * math.sin(
                2 * math.pi * t / 86400.0
            )
            drift = self.minute_rho * drift + self._rng.normal(0.0, innov_scale)
            factor = math.exp(drift - self.minute_sigma**2 / 2)
            rate = self.mean_rps * diurnal * factor
            if self._rng.random() < self.burst_rate_per_hour / 60.0:
                rate *= 1.0 + self._rng.exponential(self.burst_multiplier - 1.0)
            rates[i] = rate
        return rates

    # -- trace generation ----------------------------------------------------------

    def iter_batches(self, duration_s: float,
                     start_s: float = 0.0) -> Iterator[TraceBatch]:
        """Yield one :class:`TraceBatch` per non-empty trace minute."""
        rng = self._rng
        rates = self.minute_rates(duration_s, start_s)
        live = _LiveKeys()
        n_live = 0
        key_seq = 0
        cap = self.tenants * self.keys_per_tenant
        delete_fraction = self.delete_fraction
        update_fraction = self.update_fraction
        for minute, rate in enumerate(rates):
            window = min(60.0, duration_s - minute * 60.0)
            count = int(rng.poisson(rate * window))
            if count == 0:
                continue
            # Every random quantity this minute needs, in bulk; the
            # selection loop below then runs RNG-free over plain lists
            # (scalar indexing into NumPy arrays is ~10× slower).
            times = np.sort(rng.uniform(0.0, window, count)) + minute * 60.0
            sizes = self.sizes.sample(count)
            op_draws = rng.random(count).tolist()
            reuse_draws = rng.random(count).tolist()
            del_positions = rng.random(count).tolist()
            ranks = rng.zipf(1.4, count).tolist()
            tenant_draws = rng.integers(0, self.tenants, count).tolist()
            delete_rows: list[int] = []
            keys: list[str] = []
            append_key = keys.append
            for i in range(count):
                if op_draws[i] < delete_fraction and n_live:
                    delete_rows.append(i)
                    append_key(live.remove_at(del_positions[i]))
                    n_live -= 1
                    continue
                if reuse_draws[i] < update_fraction and n_live >= 16:
                    # Zipf-ish: overwhelmingly prefer recent/hot keys.
                    append_key(live.from_recent(ranks[i]))
                else:
                    key = f"t{tenant_draws[i]}/obj{key_seq}"
                    key_seq += 1
                    live.append(key)
                    append_key(key)
                    if n_live >= cap:
                        live.evict_oldest()
                    else:
                        n_live += 1
            ops = np.zeros(count, dtype=np.uint8)
            if delete_rows:
                ops[delete_rows] = OP_DELETE
                sizes[delete_rows] = 0
            yield TraceBatch(times=times, ops=ops, keys=keys, sizes=sizes)

    def generate_batches(self, duration_s: float,
                         start_s: float = 0.0) -> list[TraceBatch]:
        return list(self.iter_batches(duration_s, start_s))

    def iter_requests(self, duration_s: float,
                      start_s: float = 0.0) -> Iterator[TraceRequest]:
        for batch in self.iter_batches(duration_s, start_s):
            yield from batch.requests()

    def generate(self, duration_s: float,
                 start_s: float = 0.0) -> list[TraceRequest]:
        """Materialize a trace segment of ``duration_s`` seconds."""
        return list(self.iter_requests(duration_s, start_s))

    def _scaled_to(self, total_requests: int, seed_offset: int,
                   duration_s: float) -> "IbmCosTraceGenerator":
        return IbmCosTraceGenerator(
            seed=self.seed + seed_offset,
            mean_rps=total_requests / duration_s,
            tenants=self.tenants,
            keys_per_tenant=self.keys_per_tenant,
            delete_fraction=self.delete_fraction,
            update_fraction=self.update_fraction,
            burst_rate_per_hour=self.burst_rate_per_hour,
            burst_multiplier=self.burst_multiplier,
            minute_sigma=self.minute_sigma,
            minute_rho=self.minute_rho,
        )

    def busy_hour(self, total_requests: int = 50_000,
                  seed_offset: int = 7) -> list[TraceRequest]:
        """A busy 60-minute segment with approximately the requested
        number of PUT/DELETE requests (the paper replays ~0.99 M; scale
        ``total_requests`` to your simulation budget)."""
        gen = self._scaled_to(total_requests, seed_offset, 3600.0)
        return gen.generate(3600.0)

    def busy_hour_batches(self, total_requests: int = 50_000,
                          seed_offset: int = 7) -> list[TraceBatch]:
        """Column-form :meth:`busy_hour` (no per-request objects)."""
        gen = self._scaled_to(total_requests, seed_offset, 3600.0)
        return gen.generate_batches(3600.0)
