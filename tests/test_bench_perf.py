"""Units for the bench-perf regression gate (repro.bench.perf).

These cover the comparison machinery only — the wall-clock benchmarks
themselves are tier-2 (``-m perf``).
"""

import json

import pytest

from repro.bench import perf
from repro.cli import main


def _reference(scale=1.0, **metrics):
    current = {"kernel_events_per_s": 1_000_000.0}
    current.update(metrics)
    return {"schema": 1, "meta": {"scale": scale}, "current": current}


class TestCheckRegressionScale:
    def test_mismatched_scale_refused(self):
        with pytest.raises(ValueError, match="scale mismatch"):
            perf.check_regression({}, _reference(scale=1.0), scale=0.05)

    def test_matching_scale_compares(self):
        warnings = perf.check_regression(
            {"kernel_events_per_s": 990_000.0}, _reference(scale=0.25),
            scale=0.25)
        assert warnings == []

    def test_regression_still_detected_at_matching_scale(self):
        warnings = perf.check_regression(
            {"kernel_events_per_s": 100_000.0}, _reference(scale=1.0),
            tolerance=0.30, scale=1.0)
        assert any("kernel_events_per_s" in w for w in warnings)

    def test_unstated_scales_skip_the_guard(self):
        # Old reference files predate meta.scale; callers that never
        # pass ``scale`` keep the historical behaviour.
        no_meta = {"current": {"kernel_events_per_s": 1.0}}
        assert perf.check_regression({"kernel_events_per_s": 2.0},
                                     no_meta, scale=1.0) == []
        assert perf.check_regression({"kernel_events_per_s": 2_000_000.0},
                                     _reference(scale=1.0)) == []


class TestCliScaleGuard:
    def test_check_refuses_scale_mismatch_before_benchmarking(
            self, tmp_path, capsys):
        ref = tmp_path / "BENCH_REF.json"
        ref.write_text(json.dumps(_reference(scale=1.0)))
        # A mismatched --scale must exit nonzero *without* running the
        # (minutes-long) benchmarks — hence no work-size floor tweaks.
        rc = main(["bench-perf", "--check", "--baseline", str(ref),
                   "--scale", "0.01"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "scale mismatch" in err
        assert "--scale 1" in err
