"""Randomized fault-injection soaks: convergence under any seeded storm.

Property: for ANY seeded schedule of function crashes, notification
drops/duplicates/reorders, KV throttling/admission delays and WAN
stalls, once the storm passes and retries drain, the destination
converges to the source — zero leaked locks, zero orphaned uploads,
zero pending measurements (the convergence auditor runs green).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import ReplicationAuditor
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.chaos import ChaosConfig
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob

pytestmark = pytest.mark.chaos

KB = 1024
MB = 1024 * 1024

STORM = ChaosConfig(
    crash_prob=0.08,
    notif_drop_prob=0.08, notif_dup_prob=0.08, notif_reorder_prob=0.08,
    notif_redelivery_s=20.0,
    kv_reject_prob=0.08, kv_delay_prob=0.08,
    wan_stall_prob=0.03,
)


def soak(seed: int, chaos: ChaosConfig = STORM):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=4, mc_samples=300)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    rule = svc.add_rule(src, dst)
    # The storm starts after onboarding, then rages for the whole
    # workload: every notification, KV op, transfer and invocation below
    # runs under fault injection.
    cloud.apply_chaos(chaos)

    rng = cloud.rngs.stream("chaos-workload")
    keys = [f"obj{i}" for i in range(6)]
    t = 1.0
    for _ in range(25):
        t += float(rng.exponential(2.0))
        key = keys[int(rng.integers(len(keys)))]
        if rng.random() < 0.2:
            cloud.sim.call_later(t, lambda k=key: (
                k in src and src.delete_object(k, cloud.sim.now)))
        else:
            size = int(rng.integers(1, 64)) * KB
            cloud.sim.call_later(t, lambda k=key, s=size: src.put_object(
                k, Blob.fresh(s), cloud.sim.now))
    # One large multipart transfer so the part pool, finalize fencing
    # and upload-abort paths also run under the storm.
    cloud.sim.call_later(t / 2, lambda: src.put_object(
        "obj-big", Blob.fresh(48 * MB), cloud.sim.now))
    cloud.run()

    # The storm passes; what it broke must now self-heal.
    cloud.apply_chaos(None)
    svc.run_to_convergence()
    return cloud, svc, src, dst, rule


@given(seed=st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_any_seeded_storm_converges(seed):
    cloud, svc, src, dst, rule = soak(seed)
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.clean, f"seed {seed}:\n{report.render()}"
    assert svc.pending_count() == 0
    for key in src.keys():
        assert dst.head(key).etag == src.head(key).etag


def test_fixed_seed_storm_smoke():
    """Deterministic tier-1 smoke: a fixed seed that demonstrably
    exercises every injected fault class and still converges."""
    cloud, svc, src, dst, rule = soak(1234)
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.clean, report.render()
    assert svc.pending_count() == 0
    injected = cloud.chaos_stats()
    assert injected["notifications_dropped"] > 0
    assert injected["notifications_duplicated"] > 0
    assert injected["kv_rejected"] > 0
    assert injected["kv_delayed"] > 0
    # The engine absorbed the throttling through its retry policy.
    assert rule.engine.stats["kv_retries"] > 0


def test_storm_of_pure_crashes_converges():
    """Crash-only storm (the pre-existing fault class, now under the
    unified config): platform retries plus DLQ redrive recover all."""
    # A short mean delay makes the crash land while the function body is
    # still running (a timer outliving the body is a no-op).
    cloud, svc, src, dst, rule = soak(
        77, ChaosConfig(crash_prob=0.3, crash_mean_delay_s=0.1))
    report = ReplicationAuditor(svc).audit(quiescent=True)
    assert report.clean, report.render()
    assert cloud.chaos_stats()["faas_crashes"] > 0
