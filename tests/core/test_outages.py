"""Region-outage tests: the §1 motivation exercised end to end.

A region-wide storage outage makes every bucket operation fail with
ServiceUnavailable.  Short outages ride through the platforms' retry
backoff; long outages exhaust retries into the dead-letter queue, and
an operator redrive converges the system afterwards — exactly §6's
fault-tolerance story plus the operational step real deployments need.
"""

import pytest

from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.objectstore import Blob, ServiceUnavailable

MB = 1024 * 1024


def build(seed, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=5, mc_samples=300, **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("azure:eastus", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


class TestOutageMechanics:
    def test_operations_fail_during_outage(self):
        cloud = build_default_cloud(seed=701)
        bucket = cloud.bucket("aws:us-east-1", "b")
        bucket.put_object("k", Blob.fresh(10), cloud.now)
        cloud.inject_outage("aws:us-east-1", 60.0)
        with pytest.raises(ServiceUnavailable):
            bucket.head("k")
        with pytest.raises(ServiceUnavailable):
            bucket.put_object("k2", Blob.fresh(10), cloud.now)

    def test_outage_ends_on_schedule(self):
        cloud = build_default_cloud(seed=702)
        bucket = cloud.bucket("aws:us-east-1", "b")
        bucket.put_object("k", Blob.fresh(10), cloud.now)
        cloud.inject_outage("aws:us-east-1", 60.0)
        cloud.run(until=61.0)
        assert bucket.head("k").size == 10

    def test_other_regions_unaffected(self):
        cloud = build_default_cloud(seed=703)
        a = cloud.bucket("aws:us-east-1", "a")
        b = cloud.bucket("azure:eastus", "b")
        cloud.inject_outage("aws:us-east-1", 60.0)
        b.put_object("k", Blob.fresh(10), cloud.now)  # must not raise
        assert a.in_outage and not b.in_outage


class TestReplicationThroughOutages:
    def test_short_destination_blip_rides_on_retries(self):
        """An outage shorter than the retry backoff window is invisible
        except for added delay."""
        cloud, svc, src, dst, rule = build(seed=704)
        src.put_object("k", Blob.fresh(4 * MB), cloud.now)

        def blip():
            yield cloud.sim.sleep(0.6)  # mid-replication
            cloud.inject_outage("azure:eastus", 1.5)

        cloud.sim.spawn(blip())
        cloud.run()
        assert dst.head("k").etag == src.head("k").etag
        assert svc.pending_count() == 0

    def test_long_outage_dead_letters_then_redrive_converges(self):
        # Health-tracked routing would park these tasks instead (see
        # test_outage_degradation.py); pin it off to keep the legacy
        # retry -> DLQ -> redrive ladder covered.
        cloud, svc, src, dst, rule = build(seed=705, health_enabled=False)
        blobs = {}
        for i in range(5):
            blobs[f"k{i}"] = Blob.fresh((i + 1) * MB)
            src.put_object(f"k{i}", blobs[f"k{i}"], cloud.now)
        cloud.inject_outage("azure:eastus", 120.0)
        cloud.run()
        # The outage outlasted every retry: events parked in the DLQ.
        dlq = sum(len(cloud.faas(r).dead_letters)
                  for r in ("aws:us-east-1", "azure:eastus"))
        assert dlq >= 1
        assert cloud.now > 120.0  # outage over
        redriven = svc.redrive_dead_letters()
        assert redriven == dlq
        cloud.run()
        for key, blob in blobs.items():
            assert dst.head(key).etag == blob.etag
        assert svc.pending_count() == 0

    def test_source_outage_after_put_recovers(self):
        """The source region fails right after accepting writes; the
        notification already escaped, so replication retries until the
        region returns (or redrives)."""
        cloud, svc, src, dst, rule = build(seed=706)
        blob = Blob.fresh(8 * MB)
        src.put_object("k", blob, cloud.now)
        cloud.inject_outage("aws:us-east-1", 90.0)
        cloud.run()
        svc.redrive_dead_letters()
        cloud.run()
        assert dst.head("k").etag == blob.etag
        assert svc.pending_count() == 0

    def test_redrive_with_empty_dlq_is_noop(self):
        cloud, svc, src, dst, rule = build(seed=707)
        assert svc.redrive_dead_letters() == 0

    def test_disaster_recovery_reads_served_from_replica(self):
        """The end-to-end §1 story: after the source region dies, the
        replica still serves every object."""
        cloud, svc, src, dst, rule = build(seed=708)
        blobs = {}
        for i in range(8):
            blobs[f"doc/{i}"] = Blob.fresh(2 * MB)
            src.put_object(f"doc/{i}", blobs[f"doc/{i}"], cloud.now)
        cloud.run()  # fully replicated
        cloud.inject_outage("aws:us-east-1", 3600.0)
        with pytest.raises(ServiceUnavailable):
            src.head("doc/0")
        for key, blob in blobs.items():
            assert dst.head(key).etag == blob.etag
