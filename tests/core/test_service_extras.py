"""Tests for service summary, quota clamping, and the cost CLI."""

import math

import pytest

from repro.cli import main
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.faas import FaasProfile
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


class TestServiceSummary:
    def test_summary_after_work(self):
        cloud = build_default_cloud(seed=801)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:us-east-2", "dst")
        svc.add_rule(src, dst)
        for i in range(4):
            src.put_object(f"k{i}", Blob.fresh(MB), cloud.now)
        cloud.run()
        s = svc.summary()
        assert s["rules"] == 1
        assert s["replicated_events"] == 4
        assert s["pending_events"] == 0
        assert s["delay_p50_s"] > 0
        assert s["delay_max_s"] >= s["delay_p99_s"] >= s["delay_p50_s"]
        assert s["total_cost_usd"] > 0
        assert "egress" in s["cost_breakdown"]

    def test_summary_empty(self):
        cloud = build_default_cloud(seed=802)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                                   mc_samples=300))
        s = svc.summary()
        assert s["replicated_events"] == 0
        assert math.isnan(s["delay_p50_s"])


class TestQuotaClamping:
    def test_distributed_task_clamped_to_remaining_quota(self):
        cloud = build_default_cloud(seed=803)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        rule = svc.add_rule(src, dst)
        # Shrink the source platform's concurrency quota drastically.
        faas = cloud.faas("aws:us-east-1")
        faas.profile = FaasProfile(max_concurrency=6)
        blob = Blob.fresh(1024 * MB)  # would normally use 32-64 workers
        src.put_object("big", blob, cloud.now)
        cloud.run()
        assert dst.head("big").etag == blob.etag
        assert rule.engine.stats.get("quota_clamped", 0) >= 1
        workers = {w for (t, w) in rule.engine.worker_parts}
        assert len(workers) <= 6

    def test_no_clamp_with_ample_quota(self):
        cloud = build_default_cloud(seed=804)
        svc = AReplicaService(cloud, ReplicaConfig(profile_samples=5,
                                                   mc_samples=300))
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("azure:eastus", "dst")
        rule = svc.add_rule(src, dst)
        src.put_object("big", Blob.fresh(512 * MB), cloud.now)
        cloud.run()
        assert rule.engine.stats.get("quota_clamped", 0) == 0


class TestCostCli:
    def test_cost_command_aws(self, capsys):
        rc = main(["cost", "--src", "aws:us-east-1", "--dst", "aws:us-east-2",
                   "--requests-per-day", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "areplica" in out and "skyplane" in out and "s3rtc" in out

    def test_cost_command_cross_cloud_omits_proprietary(self, capsys):
        rc = main(["cost", "--src", "aws:us-east-1", "--dst", "gcp:us-east1",
                   "--requests-per-day", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "s3rtc" not in out and "azrep" not in out

    def test_cost_command_azure_includes_azrep(self, capsys):
        rc = main(["cost", "--src", "azure:eastus", "--dst", "azure:uksouth",
                   "--requests-per-day", "1000"])
        assert rc == 0
        assert "azrep" in capsys.readouterr().out


class TestRegionsCli:
    def test_regions_listing(self, capsys):
        rc = main(["regions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aws:us-east-1" in out and "regions:" in out

    def test_regions_egress_matrix(self, capsys):
        rc = main(["regions", "--egress"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "egress $/GB" in out
        assert "0.090" in out  # AWS internet rate appears somewhere


class TestAuditCli:
    def test_audit_command_clean_exit(self, capsys):
        rc = main(["audit", "--dst", "aws:us-east-2", "--requests", "200",
                   "--profile-samples", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out and "auditing" in out
