"""Tests for changelog propagation (§5.4)."""

import pytest

from repro.core.changelog import ChangelogEntry, ChangelogOp, ChangelogStore
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob

MB = 1024 * 1024


def build(seed=41, **cfg):
    cloud = build_default_cloud(seed=seed)
    config = ReplicaConfig(profile_samples=6, mc_samples=500, **cfg)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    rule = svc.add_rule(src, dst)
    return cloud, svc, src, dst, rule


def replicate_seed_object(cloud, src, dst, key="base", size=100 * MB):
    blob = Blob.fresh(size)
    src.put_object(key, blob, cloud.now)
    cloud.run()
    assert dst.head(key).etag == blob.etag
    return blob


class TestChangelogStore:
    def test_record_and_lookup_roundtrip(self):
        cloud, svc, src, dst, rule = build()
        store = rule.changelog

        def flow():
            yield from store.record_copy("a", "etag-a", "b", "etag-b")
            entry = yield from store.lookup("b", "etag-b")
            return entry

        entry = cloud.sim.run_process(flow())
        assert entry.op == ChangelogOp.COPY
        assert entry.sources == (("a", "etag-a"),)

    def test_lookup_wrong_etag_returns_none(self):
        cloud, svc, src, dst, rule = build()
        store = rule.changelog

        def flow():
            yield from store.record_copy("a", "e1", "b", "e2")
            return (yield from store.lookup("b", "other"))

        assert cloud.sim.run_process(flow()) is None

    def test_fresh_bytes_only_for_patch_ops(self):
        copy = ChangelogEntry(ChangelogOp.COPY, "k", "e", (("a", "ea"),))
        append = ChangelogEntry(ChangelogOp.APPEND, "k", "e", (("k", "ea"),),
                                data_offset=100, data_length=50)
        assert copy.fresh_bytes == 0
        assert append.fresh_bytes == 50


class TestCopyPropagation:
    def test_copy_applied_without_wan_transfer(self):
        """Fig 15/21: a COPY changelog replicates with near-zero egress."""
        cloud, svc, src, dst, rule = build()
        replicate_seed_object(cloud, src, dst, "orig")
        egress_before = cloud.ledger.total(CostCategory.EGRESS)

        def user_program():
            version = src.copy_object("orig", "copy", cloud.now, notify=False)
            yield from rule.changelog.record_copy(
                "orig", src.head("orig").etag, "copy", version.etag
            )
            # Re-announce the object now that the hint exists (the real
            # client library records the hint before the PUT lands).
            src.delete_object("copy", cloud.now, notify=False)
            src.copy_object("orig", "copy", cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("copy").etag == src.head("copy").etag
        assert rule.engine.stats["changelog_applied"] == 1
        egress_added = cloud.ledger.total(CostCategory.EGRESS) - egress_before
        assert egress_added == 0.0

    def test_copy_falls_back_when_source_missing_at_dst(self):
        cloud, svc, src, dst, rule = build(seed=43)
        # "orig" exists only at the source; the hint cannot apply.
        blob = Blob.fresh(50 * MB)
        src.put_object("orig", blob, cloud.now, notify=False)

        def user_program():
            version = src.copy_object("orig", "copy", cloud.now, notify=False)
            yield from rule.changelog.record_copy(
                "orig", blob.etag, "copy", version.etag
            )
            src.delete_object("copy", cloud.now, notify=False)
            src.copy_object("orig", "copy", cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("copy").etag == src.head("copy").etag
        assert rule.engine.stats["changelog_fallback"] == 1
        assert rule.engine.stats["changelog_applied"] == 0

    def test_copy_falls_back_on_stale_source_version(self):
        """The §5.4 caveat: a newer version of the source may already be
        at the destination; the ETag guard must catch it."""
        cloud, svc, src, dst, rule = build(seed=47)
        old = replicate_seed_object(cloud, src, dst, "orig")

        def user_program():
            version = src.copy_object("orig", "copy", cloud.now, notify=False)
            yield from rule.changelog.record_copy(
                "orig", old.etag, "copy", version.etag
            )
            # The source object moves on before the copy replicates, and
            # the new version reaches the destination first.
            src.put_object("orig", Blob.fresh(100 * MB), cloud.now)
            yield cloud.sim.sleep(30.0)
            src.delete_object("copy", cloud.now, notify=False)
            version2 = src.put_object("copy", old, cloud.now)
            del version2

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("copy").etag == src.head("copy").etag
        assert dst.head("orig").etag == src.head("orig").etag


class TestConcatAppendPatch:
    def test_concat_composes_locally(self):
        cloud, svc, src, dst, rule = build(seed=53)
        a = replicate_seed_object(cloud, src, dst, "a", 40 * MB)
        b = replicate_seed_object(cloud, src, dst, "b", 24 * MB)
        egress_before = cloud.ledger.total(CostCategory.EGRESS)

        def user_program():
            blob = Blob.concat([a, b])
            yield from rule.changelog.record_concat(
                [("a", a.etag), ("b", b.etag)], "ab", blob.etag
            )
            src.put_object("ab", blob, cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("ab").etag == src.head("ab").etag
        assert rule.engine.stats["changelog_applied"] == 1
        assert cloud.ledger.total(CostCategory.EGRESS) == egress_before

    def test_append_transfers_only_tail(self):
        cloud, svc, src, dst, rule = build(seed=59)
        base = replicate_seed_object(cloud, src, dst, "log", 100 * MB)
        before = cloud.ledger.snapshot()

        def user_program():
            tail = Blob.fresh(1 * MB)
            blob = Blob.concat([base, tail])
            yield from rule.changelog.record_append(
                "log", base.etag, blob.etag, base.size, blob.size
            )
            src.put_object("log", blob, cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("log").etag == src.head("log").etag
        delta = before.delta(cloud.ledger.snapshot())
        # Only ~1 MB crossed the WAN instead of 101 MB.
        assert delta.totals.get("egress", 0.0) < 0.02 * 101 * MB / 1e9

    def test_patch_rewrites_byte_range(self):
        cloud, svc, src, dst, rule = build(seed=61)
        base = replicate_seed_object(cloud, src, dst, "blockdev", 64 * MB)

        def user_program():
            patch = Blob.fresh(2 * MB)
            offset = 10 * MB
            blob = Blob.concat([
                base.slice(0, offset), patch,
                base.slice(offset + patch.size, base.size - offset - patch.size),
            ])
            yield from rule.changelog.record_patch(
                "blockdev", base.etag, blob.etag, offset, patch.size
            )
            src.put_object("blockdev", blob, cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("blockdev").etag == src.head("blockdev").etag
        assert rule.engine.stats["changelog_applied"] == 1

    def test_changelog_disabled_by_config(self):
        cloud = build_default_cloud(seed=67)
        config = ReplicaConfig(profile_samples=6, mc_samples=500,
                               enable_changelog=False)
        svc = AReplicaService(cloud, config)
        src = cloud.bucket("aws:us-east-1", "src")
        dst = cloud.bucket("aws:us-east-2", "dst")
        rule = svc.add_rule(src, dst)
        blob = replicate_seed_object(cloud, src, dst, "orig", 50 * MB)

        def user_program():
            version = src.copy_object("orig", "copy", cloud.now, notify=False)
            yield from rule.changelog.record_copy("orig", blob.etag, "copy",
                                                  version.etag)
            src.delete_object("copy", cloud.now, notify=False)
            src.copy_object("orig", "copy", cloud.now)

        cloud.sim.run_process(user_program())
        cloud.run()
        assert dst.head("copy").etag == src.head("copy").etag
        assert rule.engine.stats["changelog_applied"] == 0
