"""Tests for the user-side client library with automatic changelog
hints, plus the versioning lifecycle machinery it motivates."""

import pytest

from repro.core.client import ReplicatedBucketClient
from repro.core.config import ReplicaConfig
from repro.core.service import AReplicaService
from repro.simcloud.cloud import build_default_cloud
from repro.simcloud.cost import CostCategory
from repro.simcloud.objectstore import Blob, Bucket

MB = 1024 * 1024


@pytest.fixture
def env():
    cloud = build_default_cloud(seed=401)
    config = ReplicaConfig(profile_samples=5, mc_samples=300)
    svc = AReplicaService(cloud, config)
    src = cloud.bucket("aws:us-east-1", "src")
    dst = cloud.bucket("aws:us-east-2", "dst")
    rule = svc.add_rule(src, dst)
    client = ReplicatedBucketClient(cloud, src, rule.changelog)
    return cloud, svc, src, dst, rule, client


class TestClientOperations:
    def test_put_and_get(self, env):
        cloud, svc, src, dst, rule, client = env
        blob = Blob.fresh(MB)
        client.run(client.put("k", blob))
        assert client.get("k").etag == blob.etag
        cloud.run()
        assert dst.head("k").etag == blob.etag

    def test_copy_replicates_via_changelog(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("orig", Blob.fresh(50 * MB)))
        cloud.run()
        egress_before = cloud.ledger.total(CostCategory.EGRESS)
        client.run(client.copy("orig", "copy"))
        cloud.run()
        assert dst.head("copy").etag == src.head("copy").etag
        assert rule.engine.stats["changelog_applied"] == 1
        assert cloud.ledger.total(CostCategory.EGRESS) == egress_before

    def test_concat_replicates_via_changelog(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("a", Blob.fresh(30 * MB)))
        client.run(client.put("b", Blob.fresh(20 * MB)))
        cloud.run()
        client.run(client.concat(["a", "b"], "ab"))
        cloud.run()
        assert dst.head("ab").etag == src.head("ab").etag
        assert rule.engine.stats["changelog_applied"] == 1

    def test_concat_empty_sources_rejected(self, env):
        _, _, _, _, _, client = env
        with pytest.raises(ValueError):
            client.run(client.concat([], "x"))

    def test_append_moves_only_tail_bytes(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("log", Blob.fresh(100 * MB)))
        cloud.run()
        before = cloud.ledger.snapshot()
        client.run(client.append("log", Blob.fresh(2 * MB)))
        cloud.run()
        assert dst.head("log").etag == src.head("log").etag
        delta = before.delta(cloud.ledger.snapshot())
        # Tail-only egress: ~2 MB at $0.02/GB, far below the full 102 MB.
        assert delta.totals.get(CostCategory.EGRESS, 0.0) < \
            0.02 * 10 * MB / 1e9

    def test_patch_rewrites_range(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("dev", Blob.fresh(64 * MB)))
        cloud.run()
        client.run(client.patch("dev", 8 * MB, Blob.fresh(1 * MB)))
        cloud.run()
        assert dst.head("dev").etag == src.head("dev").etag
        assert rule.engine.stats["changelog_applied"] == 1

    def test_patch_bounds_checked(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("dev", Blob.fresh(MB)))
        with pytest.raises(ValueError):
            client.run(client.patch("dev", MB - 10, Blob.fresh(100)))

    def test_delete_propagates(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("k", Blob.fresh(MB)))
        cloud.run()
        client.run(client.delete("k"))
        cloud.run()
        assert "k" not in dst

    def test_truncate_then_append_falls_back_to_full(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("log", Blob.fresh(10 * MB)))
        cloud.run()
        applied_before = rule.engine.stats["changelog_applied"]
        client.run(client.truncate_then_append("log", 5 * MB,
                                               Blob.fresh(1 * MB)))
        cloud.run()
        assert dst.head("log").etag == src.head("log").etag
        assert rule.engine.stats["changelog_applied"] == applied_before

    def test_stats_track_operations(self, env):
        cloud, svc, src, dst, rule, client = env
        client.run(client.put("a", Blob.fresh(MB)))
        client.run(client.copy("a", "b"))
        client.run(client.append("a", Blob.fresh(1024)))
        assert client.stats["puts"] == 1
        assert client.stats["copies"] == 1
        assert client.stats["appends"] == 1


class TestVersioningLifecycle:
    def make_bucket(self):
        from repro.simcloud.regions import get_region

        return Bucket("b", get_region("aws:us-east-1"), versioning=True)

    def test_expire_noncurrent_respects_age(self):
        b = self.make_bucket()
        b.put_object("k", Blob.fresh(100), time=0.0)
        b.put_object("k", Blob.fresh(100), time=10.0)   # v1 superseded @10
        b.put_object("k", Blob.fresh(100), time=500.0)  # v2 superseded @500
        reclaimed = b.expire_noncurrent(now=600.0, older_than_s=200.0)
        assert reclaimed == 100                          # only v1 expired
        assert len(b.noncurrent_versions("k")) == 1

    def test_current_version_never_expired(self):
        b = self.make_bucket()
        b.put_object("k", Blob.fresh(100), time=0.0)
        b.expire_noncurrent(now=10_000.0, older_than_s=1.0)
        assert "k" in b

    def test_noncurrent_bytes(self):
        b = self.make_bucket()
        b.put_object("k", Blob.fresh(100), time=0.0)
        b.put_object("k", Blob.fresh(50), time=1.0)
        assert b.noncurrent_bytes() == 100

    def test_deleted_key_versions_expirable(self):
        b = self.make_bucket()
        b.put_object("k", Blob.fresh(100), time=0.0)
        b.delete_object("k", time=1.0)
        reclaimed = b.expire_noncurrent(now=1_000.0, older_than_s=10.0)
        assert reclaimed == 100
        assert b.noncurrent_bytes() == 0

    def test_daily_update_with_day_lifecycle_doubles_storage(self):
        """§5.2's claim: with day-granularity lifecycle rules, an object
        updated once a day at least doubles its storage footprint."""
        b = self.make_bucket()
        day = 86_400.0
        size = 100
        samples = []
        for d in range(30):
            b.put_object("k", Blob.fresh(size), time=d * day)
            b.expire_noncurrent(now=d * day, older_than_s=day)
            samples.append(b.total_bytes(include_noncurrent=True))
        steady = samples[5:]
        assert min(steady) >= 2 * size
